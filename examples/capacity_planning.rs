//! Capacity planning (the paper's Example 1): a customer wants to move a
//! YCSB-style workload to a bigger SKU while keeping their SLA, so the
//! provider predicts the workload's latency on every candidate SKU from
//! reference workloads' scaling behaviour — before migrating anything.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use wp_predict::predictor::{scaling_data_from_simulation, ScalingPredictor};
use wp_predict::ModelStrategy;
use wp_workloads::{benchmarks, Simulator, Sku};

fn main() {
    let sim = Simulator::new(7);
    let terminals = 8;
    let sla_latency_ms = 3.0;

    // the customer's current SKU and the upgrade candidates
    let current = Sku::new("cpu2", 2, 64.0);
    let candidates = vec![
        Sku::new("cpu4", 4, 64.0),
        Sku::new("cpu8", 8, 64.0),
        Sku::new("cpu16", 16, 64.0),
    ];
    // hourly price per SKU (synthetic price book)
    let price = |sku: &Sku| 0.05 * sku.cpus as f64 + 0.002 * sku.memory_gb;

    // the provider's reference workload on all SKUs: TPC-C (the most
    // similar reference per the similarity stage — see the quickstart)
    let reference = benchmarks::tpcc();
    let mut all_skus = vec![current.clone()];
    all_skus.extend(candidates.iter().cloned());
    let data = scaling_data_from_simulation(&sim, &reference, &all_skus, terminals, 3, 10);
    let predictor = ScalingPredictor::fit("TPC-C", ModelStrategy::Svm, &data);

    // the customer's observation on the current SKU
    let ycsb = benchmarks::ycsb();
    let observed_runs: Vec<f64> = (0..3)
        .map(|r| {
            sim.simulate(&ycsb, &current, terminals, r, r % 3)
                .throughput
        })
        .collect();
    let observed = wp_linalg::stats::mean(&observed_runs);

    println!("capacity planning for a YCSB-style workload (SLA: {sla_latency_ms} ms)\n");
    println!(
        "{:>7} {:>10} {:>14} {:>13} {:>8}",
        "SKU", "$/hour", "pred. req/s", "pred. ms", "SLA ok?"
    );
    println!("{}", "-".repeat(58));
    let mut cheapest: Option<(&Sku, f64)> = None;
    for sku in &candidates {
        let thr = predictor
            .predict(current.cpus as f64, sku.cpus as f64, observed)
            .expect("pair model exists");
        let latency_ms = terminals as f64 / thr * 1000.0;
        let ok = latency_ms <= sla_latency_ms;
        println!(
            "{:>7} {:>10.3} {:>14.0} {:>13.2} {:>8}",
            sku.name,
            price(sku),
            thr,
            latency_ms,
            if ok { "yes" } else { "no" }
        );
        if ok && cheapest.is_none_or(|(_, p)| price(sku) < p) {
            cheapest = Some((sku, price(sku)));
        }
    }
    match cheapest {
        Some((sku, p)) => println!(
            "\nrecommendation: {} at ${p:.3}/hour — the cheapest SKU predicted to meet the SLA",
            sku.name
        ),
        None => println!("\nno candidate SKU is predicted to meet the SLA"),
    }
}

//! Quickstart: run the complete three-stage pipeline on simulated
//! telemetry in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wp_core::{Pipeline, PipelineConfig};
use wp_workloads::{benchmarks, Sku};

fn main() {
    // A pipeline = feature selection + workload similarity + scaling
    // prediction over a deterministic telemetry simulator.
    let mut pipeline = Pipeline::new(42);
    pipeline.config = PipelineConfig {
        // fANOVA keeps the quickstart fast; the paper's default is
        // RFE-LogReg (see `PipelineConfig::default()`)
        selection: wp_featsel::Strategy::FAnova,
        ..PipelineConfig::default()
    };

    // Reference workloads the provider has observed on both SKUs.
    let references = vec![
        benchmarks::tpcc(),
        benchmarks::tpch(),
        benchmarks::twitter(),
    ];

    // The customer's workload, observed on the small SKU only.
    let target = benchmarks::ycsb();
    let from = Sku::new("cpu2", 2, 64.0);
    let to = Sku::new("cpu8", 8, 64.0);

    let outcome = pipeline.run(&references, &target, &from, &to, 8);

    println!("selected features:");
    for f in &outcome.selected_features {
        println!("  - {}", f.name());
    }
    println!("\nsimilarity (normalized distance, ascending):");
    for v in &outcome.similarity {
        println!("  {:<8} {:.3}", v.workload, v.distance);
    }
    println!("\nmost similar reference: {}", outcome.most_similar);
    println!(
        "throughput: observed {:.0} req/s @2 CPUs -> predicted {:.0} req/s @8 CPUs \
         (actual {:.0}, error {:.1}%)",
        outcome.observed_throughput,
        outcome.predicted_throughput,
        outcome.actual_throughput,
        outcome.mape * 100.0
    );
}

//! Bring your own telemetry: feed *external* measurements (CSV resource
//! counters + JSON run records) through the similarity stage — the
//! adoption path for deployments that collect the Table 2 counters from a
//! real DBMS instead of the simulator.
//!
//! ```sh
//! cargo run --release --example bring_your_own_telemetry
//! ```

use wp_similarity::histfp::histfp;
use wp_similarity::measure::{normalize_distances, try_distance_matrix, Measure, Norm};
use wp_similarity::repr::extract;
use wp_telemetry::io::{resource_series_from_csv, runs_from_json, runs_to_json};
use wp_telemetry::{ExperimentRun, FeatureId, PlanStats, RunKey};
use wp_workloads::{benchmarks, Simulator, Sku};

fn main() {
    // ---- 1. a resource series arrives as CSV (e.g. from perf + cron) ----
    let csv = "\
CPU_UTILIZATION,CPU_EFFECTIVE,MEM_UTILIZATION,IOPS_TOTAL,READ_WRITE_RATIO,LOCK_REQ_ABS,LOCK_WAIT_ABS
0.62,0.55,0.48,2450,1.5,41000,900
0.65,0.57,0.49,2510,1.6,42400,2400
0.61,0.54,0.47,2380,1.4,40100,600
0.66,0.59,0.50,2590,1.5,43000,5200
0.63,0.56,0.48,2460,1.5,41800,1100
";
    let resources = resource_series_from_csv(csv, 10.0).expect("valid CSV");
    println!("parsed {} resource samples from CSV", resources.len());

    // ---- 2. plan statistics arrive however the collector emits them;
    //         here we build the container directly ----
    let mut plan_rows = Vec::new();
    for (est_rows, avg_row, cached) in [(12.0, 280.0, 150.0), (4.0, 215.0, 95.0)] {
        let mut row = vec![1.0; 22];
        row[wp_telemetry::PlanFeature::StatementEstRows.index()] = est_rows;
        row[wp_telemetry::PlanFeature::AvgRowSize.index()] = avg_row;
        row[wp_telemetry::PlanFeature::CachedPlanSize.index()] = cached;
        row[wp_telemetry::PlanFeature::TableCardinality.index()] = 2.5e7;
        row[wp_telemetry::PlanFeature::MaxCompileMemory.index()] = 800.0;
        plan_rows.push(row);
    }
    let plans = PlanStats::new(
        wp_linalg::Matrix::from_rows(&plan_rows),
        vec!["OrderEntry".into(), "PaymentPost".into()],
    );

    let customer_run = ExperimentRun {
        key: RunKey {
            workload: "customer-oltp".into(),
            sku: "cpu8".into(),
            terminals: 8,
            run_index: 0,
            data_group: 0,
        },
        resources,
        plans,
        throughput: 830.0,
        latency_ms: 9.6,
        per_query_latency_ms: vec![11.2, 7.4],
    };

    // ---- 3. the record round-trips through the JSON interchange ----
    let json = runs_to_json(&[customer_run]);
    println!("serialized run to {} bytes of JSON", json.len());
    let customer_runs = runs_from_json(&json).expect("round-trip");

    // ---- 4. compare against reference telemetry (simulated here) ----
    let sim = Simulator::new(77);
    let sku = Sku::new("cpu8", 8, 64.0);
    let references = [
        benchmarks::tpcc(),
        benchmarks::tpch(),
        benchmarks::twitter(),
    ];
    let mut all_runs: Vec<ExperimentRun> = customer_runs;
    let mut spans = Vec::new();
    for spec in &references {
        let terminals = if spec.name == "TPC-H" { 1 } else { 8 };
        let start = all_runs.len();
        for r in 0..3 {
            all_runs.push(sim.simulate(spec, &sku, terminals, r, r % 3));
        }
        spans.push((spec.name.clone(), start..all_runs.len()));
    }

    let features = FeatureId::all();
    let data: Vec<_> = all_runs.iter().map(|r| extract(r, &features)).collect();
    let fps = histfp(&data, 10);
    let d = normalize_distances(
        &try_distance_matrix(&fps, Measure::Norm(Norm::L21)).expect("fingerprints share a shape"),
    );

    println!("\ncustomer workload vs references (normalized L2,1 on Hist-FP):");
    let mut verdicts: Vec<(String, f64)> = spans
        .iter()
        .map(|(name, span)| {
            let mean = span.clone().map(|j| d[(0, j)]).sum::<f64>() / span.len() as f64;
            (name.clone(), mean)
        })
        .collect();
    verdicts.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, dist) in &verdicts {
        println!("  {name:<8} {dist:.3}");
    }
    println!(
        "\nthe customer's point-lookup OLTP telemetry lands closest to {} —\n\
         from here the pipeline proceeds exactly as in the quickstart",
        verdicts[0].0
    );
}

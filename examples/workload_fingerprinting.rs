//! Workload fingerprinting: characterize an *unknown* production workload
//! by comparing its telemetry fingerprint with reference benchmarks —
//! the paper's §5.2.3 study, where the production workload PW turns out
//! to behave like TPC-H.
//!
//! ```sh
//! cargo run --release --example workload_fingerprinting
//! ```

use wp_similarity::histfp::histfp;
use wp_similarity::measure::{normalize_distances, try_distance_matrix, Measure, Norm};
use wp_similarity::repr::extract;
use wp_telemetry::{FeatureSet, PlanFeature};
use wp_workloads::{benchmarks, Simulator, Sku};

fn main() {
    let sim = Simulator::new(99);
    let sku = Sku::vcore80();

    // The "unknown" workload — here PW, but any ExperimentRun works.
    let unknown = benchmarks::pw();
    let references = [
        benchmarks::tpcc(),
        benchmarks::tpch(),
        benchmarks::tpcds(),
        benchmarks::twitter(),
    ];

    // Only plan features are available for the unknown workload (no
    // resource tracking on its host), so fingerprint on those.
    let features = FeatureSet::PlanOnly.features();

    // simulate three runs of everything
    let unknown_runs: Vec<_> = (0..3)
        .map(|r| sim.simulate(&unknown, &sku, 16, r, r % 3))
        .collect();
    let mut all_runs: Vec<&wp_telemetry::ExperimentRun> = unknown_runs.iter().collect();
    let ref_runs: Vec<(String, Vec<_>)> = references
        .iter()
        .map(|spec| {
            let terminals = if spec.name == "TPC-H" || spec.name == "TPC-DS" {
                1
            } else {
                16
            };
            let runs: Vec<_> = (0..3)
                .map(|r| sim.simulate(spec, &sku, terminals, r, r % 3))
                .collect();
            (spec.name.clone(), runs)
        })
        .collect();
    let mut spans = Vec::new();
    for (_, runs) in &ref_runs {
        let start = all_runs.len();
        all_runs.extend(runs.iter());
        spans.push(start..all_runs.len());
    }

    // Hist-FP + Canberra norm (the paper's Figure 7 setup)
    let data: Vec<_> = all_runs.iter().map(|r| extract(r, &features)).collect();
    let fps = histfp(&data, 10);
    let d = normalize_distances(
        &try_distance_matrix(&fps, Measure::Norm(Norm::Canberra))
            .expect("fingerprints share a shape"),
    );

    println!("fingerprinting an unknown workload against reference benchmarks\n");
    let mut verdicts: Vec<(String, f64)> = ref_runs
        .iter()
        .zip(&spans)
        .map(|((name, _), span)| {
            let mut total = 0.0;
            let mut n = 0;
            for u in 0..unknown_runs.len() {
                for r in span.clone() {
                    total += d[(u, r)];
                    n += 1;
                }
            }
            (name.clone(), total / n as f64)
        })
        .collect();
    verdicts.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, dist) in &verdicts {
        let bar = "#".repeat((dist * 40.0) as usize);
        println!("  {name:<8} {dist:.3}  {bar}");
    }
    println!(
        "\nthe unknown workload behaves like {} — simple analytical queries",
        verdicts[0].0
    );

    // peek at the plan statistics driving the verdict
    println!("\nmean plan statistics (unknown vs best match):");
    let best_runs = &ref_runs
        .iter()
        .find(|(n, _)| *n == verdicts[0].0)
        .unwrap()
        .1;
    for f in [
        PlanFeature::StatementEstRows,
        PlanFeature::EstimateIo,
        PlanFeature::AvgRowSize,
        PlanFeature::SerialDesiredMemory,
    ] {
        let mean_of = |runs: &[wp_telemetry::ExperimentRun]| {
            let vals: Vec<f64> = runs.iter().flat_map(|r| r.plans.feature(f)).collect();
            wp_linalg::stats::mean(&vals)
        };
        println!(
            "  {:<24} {:>14.1} {:>14.1}",
            f.name(),
            mean_of(&unknown_runs),
            mean_of(best_runs)
        );
    }
}

//! Feature-selection study: rank the 29 telemetry features with several
//! strategies, compare their top-k subsets by workload-identification
//! accuracy, and visualize a Lasso path — a miniature of the paper's §4.
//!
//! ```sh
//! cargo run --release --example feature_selection_study
//! ```

use wp_featsel::evaluate::subset_accuracy;
use wp_featsel::lasso_path::LassoPath;
use wp_featsel::wrapper::WrapperConfig;
use wp_featsel::Strategy;
use wp_telemetry::FeatureId;
use wp_workloads::dataset::LabeledDataset;
use wp_workloads::{benchmarks, Simulator, Sku};

fn main() {
    let sim = Simulator::new(1234);
    let sku = Sku::new("cpu16", 16, 64.0);
    let specs = [
        benchmarks::tpcc(),
        benchmarks::tpch(),
        benchmarks::twitter(),
    ];

    // labeled observation dataset + identification corpus
    let mut sets = Vec::new();
    let mut runs = Vec::new();
    let mut labels = Vec::new();
    for (li, spec) in specs.iter().enumerate() {
        let terminals = if spec.name == "TPC-H" { 1 } else { 8 };
        for r in 0..3 {
            sets.push(sim.observations(spec, &sku, terminals, r, r % 3, 10));
            runs.push(sim.simulate(spec, &sku, terminals, r, r % 3));
            labels.push(li);
        }
    }
    let ds = LabeledDataset::from_observation_sets(&sets);
    let universe = FeatureId::all();
    let config = WrapperConfig::default();

    println!(
        "feature-selection strategies on {} observations:\n",
        ds.len()
    );
    println!(
        "{:<16} {:>8} {:>8}  top-3 features",
        "strategy", "top-3", "top-7"
    );
    println!("{}", "-".repeat(90));
    for strategy in [
        Strategy::Variance,
        Strategy::Pearson,
        Strategy::FAnova,
        Strategy::MiGain,
        Strategy::Lasso,
        Strategy::RandomForest,
    ] {
        let ranking = strategy.rank(&ds.features, &ds.labels, &universe, &config);
        let acc3 = subset_accuracy(&runs, &labels, &ranking.top_k(3));
        let acc7 = subset_accuracy(&runs, &labels, &ranking.top_k(7));
        let names: Vec<&str> = ranking.top_k(3).iter().map(|f| f.name()).collect();
        println!(
            "{:<16} {acc3:>8.3} {acc7:>8.3}  {}",
            strategy.label(),
            names.join(", ")
        );
    }

    // Lasso path of a single TPC-C experiment (Figure 3 style)
    println!("\nLasso path for one TPC-C experiment (top-5 by peak |coefficient|):");
    let obs = sim.observations(&benchmarks::tpcc(), &sku, 8, 0, 0, 30);
    let path = LassoPath::compute(&obs.features, &obs.throughput, &universe, 30, 1e-3);
    for f in path.top_k(5) {
        let traj = path.trajectory(f).unwrap();
        let spark: String = traj
            .iter()
            .step_by(3)
            .map(|c| {
                let mag = (c.abs() * 2.0) as usize;
                char::from_u32(0x2581 + mag.min(7) as u32).unwrap()
            })
            .collect();
        println!("  {:<38} {spark}", f.name());
    }
    println!("\n(bars show |coefficient| growth as regularization relaxes)");
}

//! Property tests for the scaling-model contexts, on seeded `Rng64`
//! grids: the pairwise transfer must be the identity on same-level
//! pairs, compose to (approximately) the identity on round trips, and
//! the single-context model must stay finite and monotone on data that
//! scales monotonically.

use wp_linalg::Rng64;
use wp_predict::context::{PairwiseScalingModel, SingleScalingModel};
use wp_predict::strategies::ModelStrategy;

/// Aligned observations at `levels`, scaled by a known per-level factor
/// with multiplicative noise of amplitude `noise`.
fn seeded_grid(seed: u64, levels: &[f64], n: usize, noise: f64) -> Vec<Vec<f64>> {
    let mut rng = Rng64::new(seed);
    let base: Vec<f64> = (0..n).map(|_| rng.range(80.0, 120.0)).collect();
    levels
        .iter()
        .map(|&l| {
            // sub-linear scaling factor, USL-flavored
            let factor = l / (1.0 + 0.08 * (l - 1.0));
            base.iter()
                .map(|b| b * factor * (1.0 + noise * (rng.unit() - 0.5)))
                .collect()
        })
        .collect()
}

#[test]
fn transfer_is_identity_when_from_equals_to() {
    let levels = [2.0, 4.0, 8.0, 16.0];
    for seed in 1..=8u64 {
        let values = seeded_grid(seed, &levels, 10, 0.04);
        let m = PairwiseScalingModel::fit(ModelStrategy::Regression, &levels, &values, None);
        let mut rng = Rng64::new(seed ^ 0xABCD);
        for &l in &levels {
            let v = rng.range(1.0, 5000.0);
            assert_eq!(
                m.predict_transfer(l, l, v),
                Some(v),
                "seed {seed}: transfer {l} -> {l} is not the identity"
            );
        }
        // The identity holds even for a level no pair model covers:
        // scaling to the same hardware never needs a model.
        assert_eq!(m.predict_transfer(5.0, 5.0, 123.0), Some(123.0));
        // ...but an uncovered cross-level pair still has no answer.
        assert_eq!(m.predict_transfer(5.0, 8.0, 123.0), None);
    }
}

#[test]
fn round_trip_transfer_composes_to_near_identity() {
    let levels = [2.0, 4.0, 8.0, 16.0];
    for seed in 1..=8u64 {
        let values = seeded_grid(seed, &levels, 12, 0.02);
        let m = PairwiseScalingModel::fit(ModelStrategy::Regression, &levels, &values, None);
        let mut rng = Rng64::new(seed.wrapping_mul(0x9E37_79B9));
        for &a in &levels {
            for &b in &levels {
                let v = rng.range(50.0, 2000.0);
                let there = m.predict_transfer(a, b, v).expect("covered pair");
                let back = m.predict_transfer(b, a, there).expect("covered pair");
                let rel = (back / v - 1.0).abs();
                assert!(
                    rel < 0.05,
                    "seed {seed}: {a} -> {b} -> {a} drifted by {:.2}% ({v} -> {back})",
                    rel * 100.0
                );
            }
        }
    }
}

#[test]
fn single_model_predictions_are_finite_and_monotone_on_scaling_grids() {
    for seed in 1..=8u64 {
        let levels = [2.0, 4.0, 8.0, 16.0];
        let values = seeded_grid(seed, &levels, 10, 0.04);
        let mut cpus = Vec::new();
        let mut obs = Vec::new();
        for (li, &l) in levels.iter().enumerate() {
            for &v in &values[li] {
                cpus.push(l);
                obs.push(v);
            }
        }
        let m = SingleScalingModel::fit(ModelStrategy::Regression, &cpus, &obs, None);
        // Finite everywhere on a dense sweep, and monotone non-decreasing:
        // the generating process scales up with CPUs, and a linear fit of
        // monotone data must carry a non-negative slope.
        let mut last = f64::NEG_INFINITY;
        for step in 0..=56 {
            let c = 2.0 + 0.25 * step as f64; // 2.0 ..= 16.0
            let p = m.predict(c);
            assert!(p.is_finite(), "seed {seed}: prediction at {c} not finite");
            assert!(
                p >= last,
                "seed {seed}: prediction dropped at {c} CPUs ({p} < {last})"
            );
            last = p;
        }
        // The fit tracks the grid's scale: the 16-CPU prediction lands
        // within the observed 16-CPU spread, widened by the noise band.
        let hi = values[3].iter().cloned().fold(f64::MIN, f64::max);
        let lo = values[3].iter().cloned().fold(f64::MAX, f64::min);
        let p16 = m.predict(16.0);
        assert!(
            p16 > lo * 0.8 && p16 < hi * 1.2,
            "seed {seed}: 16-CPU prediction {p16} outside [{lo}, {hi}] band"
        );
    }
}

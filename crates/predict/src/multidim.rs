//! Multi-dimensional SKU scaling models — the §7 future-work direction
//! ("we posit that these observations will amplify if we modify the SKUs
//! not only along one dimension (CPUs) but multiple (memory, network,
//! storage etc.)").
//!
//! A [`MultiDimScalingModel`] treats the SKU as a feature vector
//! `(cpus, memory_gb)` rather than a scalar CPU count, so one model can
//! interpolate across a two-dimensional SKU grid. For workloads whose
//! working set pressures memory (TPC-H under a small-memory roofline),
//! this captures what the CPU-only single model cannot.

use wp_linalg::Matrix;
use wp_workloads::sku::Sku;

use crate::strategies::{FittedModel, ModelStrategy};

/// SKU → feature-vector encoding shared by training and prediction.
fn sku_features(sku: &Sku) -> Vec<f64> {
    vec![sku.cpus as f64, sku.memory_gb]
}

/// A scaling model over the (CPUs, memory) SKU plane.
#[derive(Debug, Clone)]
pub struct MultiDimScalingModel {
    /// The strategy behind the fitted model.
    pub strategy: ModelStrategy,
    model: FittedModel,
}

impl MultiDimScalingModel {
    /// Fits on per-observation `(sku, value)` pairs with optional data
    /// groups.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn fit(
        strategy: ModelStrategy,
        skus: &[Sku],
        values: &[f64],
        groups: Option<&[usize]>,
    ) -> Self {
        assert_eq!(skus.len(), values.len(), "one value per SKU observation");
        assert!(!skus.is_empty(), "need training data");
        let rows: Vec<Vec<f64>> = skus.iter().map(sku_features).collect();
        let x = Matrix::from_rows(&rows);
        let model = strategy.fit(&x, values, groups);
        Self { strategy, model }
    }

    /// Predicts the performance on an arbitrary SKU.
    pub fn predict(&self, sku: &Sku) -> f64 {
        let x = Matrix::from_rows(&[sku_features(sku)]);
        self.model.predict(&x)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_workloads::benchmarks;
    use wp_workloads::engine::Simulator;

    /// A 3×3 (cpus × memory) SKU grid with a held-out corner.
    fn grid() -> Vec<Sku> {
        let mut skus = Vec::new();
        for &c in &[2usize, 4, 8] {
            for &m in &[4.0, 8.0, 16.0] {
                skus.push(Sku::new(format!("c{c}m{m}"), c, m));
            }
        }
        skus
    }

    fn observations(sim: &Simulator, skus: &[Sku]) -> (Vec<Sku>, Vec<f64>, Vec<usize>) {
        let spec = benchmarks::tpch(); // memory-sensitive under 4-16 GiB
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut gs = Vec::new();
        for sku in skus {
            for r in 0..3 {
                xs.push(sku.clone());
                ys.push(sim.simulate(&spec, sku, 1, r, r % 3).throughput);
                gs.push(r % 3);
            }
        }
        (xs, ys, gs)
    }

    #[test]
    fn interpolates_a_held_out_sku() {
        let mut sim = Simulator::new(31);
        sim.config.samples = 40;
        let all = grid();
        // hold out the center cell
        let held_out = Sku::new("c4m8", 4, 8.0);
        let train: Vec<Sku> = all
            .iter()
            .filter(|s| !(s.cpus == 4 && s.memory_gb == 8.0))
            .cloned()
            .collect();
        let (xs, ys, gs) = observations(&sim, &train);
        let model = MultiDimScalingModel::fit(ModelStrategy::GradientBoosting, &xs, &ys, Some(&gs));
        let predicted = model.predict(&held_out);
        let actual = sim
            .simulate(&benchmarks::tpch(), &held_out, 1, 0, 0)
            .throughput;
        let err = (predicted - actual).abs() / actual;
        assert!(err < 0.5, "predicted {predicted} vs actual {actual}");
    }

    #[test]
    fn memory_dimension_carries_signal() {
        // at fixed CPUs, more memory must predict more TPC-H throughput
        // (the memory roofline binds at 4 GiB)
        let mut sim = Simulator::new(31);
        sim.config.samples = 40;
        let (xs, ys, gs) = observations(&sim, &grid());
        let model = MultiDimScalingModel::fit(ModelStrategy::GradientBoosting, &xs, &ys, Some(&gs));
        let small = model.predict(&Sku::new("c8m4", 8, 4.0));
        let big = model.predict(&Sku::new("c8m16", 8, 16.0));
        assert!(big > small, "memory should matter: {small} vs {big}");
    }

    #[test]
    fn beats_cpu_only_model_when_memory_binds() {
        use crate::context::SingleScalingModel;
        let mut sim = Simulator::new(31);
        sim.config.samples = 40;
        let (xs, ys, gs) = observations(&sim, &grid());
        let multi = MultiDimScalingModel::fit(ModelStrategy::GradientBoosting, &xs, &ys, Some(&gs));
        let cpus: Vec<f64> = xs.iter().map(|s| s.cpus as f64).collect();
        let cpu_only =
            SingleScalingModel::fit(ModelStrategy::GradientBoosting, &cpus, &ys, Some(&gs));

        // evaluate on the grid's ground truth
        let mut multi_err = 0.0;
        let mut cpu_err = 0.0;
        for sku in grid() {
            let actual = sim.simulate(&benchmarks::tpch(), &sku, 1, 1, 1).throughput;
            multi_err += ((multi.predict(&sku) - actual) / actual).abs();
            cpu_err += ((cpu_only.predict(sku.cpus as f64) - actual) / actual).abs();
        }
        assert!(
            multi_err < cpu_err,
            "multi-dim ({multi_err:.3}) should beat CPU-only ({cpu_err:.3})"
        );
    }

    #[test]
    #[should_panic(expected = "need training data")]
    fn empty_training_rejected() {
        let _ = MultiDimScalingModel::fit(ModelStrategy::Regression, &[], &[], None);
    }
}

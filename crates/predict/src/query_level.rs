//! Query-level scaling prediction — the prior-work comparator of
//! Figure 1 / §3.
//!
//! Query-level predictors ([32, 93, 97, 105] in the paper) model each
//! query's performance in isolation: the latency scaling factor between
//! two SKUs is derived from the query's own resource composition, without
//! the closed-loop interaction of the concurrent workload. The paper's
//! Example 1 shows this transfers poorly; the module exists so that the
//! comparison is a first-class, tested code path rather than a one-off
//! experiment script.

use wp_telemetry::ExperimentRun;
use wp_workloads::scaling::isolated_transaction_latency_ms;
use wp_workloads::sku::Sku;
use wp_workloads::spec::WorkloadSpec;

/// Knowledge extracted from one reference workload: per-transaction plan
/// vectors and isolated scaling factors for a `(from, to)` SKU pair, plus
/// the measured workload-level factor.
#[derive(Debug, Clone)]
pub struct ReferenceScaling {
    /// Reference workload name.
    pub workload: String,
    /// Transaction names (parallel to `plan_rows` / `isolated_factor`).
    pub transaction_names: Vec<String>,
    /// Per-transaction plan-feature vectors (22-dim) on the source SKU.
    pub plan_rows: Vec<Vec<f64>>,
    /// Isolated latency factor `lat(to) / lat(from)` per transaction.
    pub isolated_factor: Vec<f64>,
    /// Measured workload-level latency factor.
    pub workload_factor: f64,
}

impl ReferenceScaling {
    /// Builds the reference knowledge from a workload spec, its runs on
    /// the source SKU, and the measured latency factor between the SKUs.
    ///
    /// `measured_runs` supplies the plan rows (first run) and the
    /// workload factor (mean of per-run `to/from` latency ratios).
    pub fn build(
        spec: &WorkloadSpec,
        from: &Sku,
        to: &Sku,
        measured_runs: &[(ExperimentRun, ExperimentRun)],
    ) -> Self {
        assert!(!measured_runs.is_empty(), "need at least one run pair");
        let isolated_factor = (0..spec.transactions.len())
            .map(|qi| {
                isolated_transaction_latency_ms(spec, qi, to)
                    / isolated_transaction_latency_ms(spec, qi, from)
            })
            .collect();
        let factors: Vec<f64> = measured_runs
            .iter()
            .map(|(f, t)| t.latency_ms / f.latency_ms)
            .collect();
        let first = &measured_runs[0].0;
        ReferenceScaling {
            workload: spec.name.clone(),
            transaction_names: first.plans.query_names.clone(),
            plan_rows: (0..first.plans.len())
                .map(|i| first.plans.data.row(i).to_vec())
                .collect(),
            isolated_factor,
            workload_factor: wp_linalg::stats::mean(&factors),
        }
    }
}

/// Log-scale Euclidean distance between plan-feature vectors — the
/// matching metric for "similar queries".
pub fn plan_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "plan vectors must have equal length");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (1.0 + x.max(0.0)).ln() - (1.0 + y.max(0.0)).ln();
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// A query-level predictor over a pool of reference workloads.
#[derive(Debug, Clone)]
pub struct QueryLevelPredictor {
    references: Vec<ReferenceScaling>,
}

impl QueryLevelPredictor {
    /// Builds the predictor from reference knowledge.
    pub fn new(references: Vec<ReferenceScaling>) -> Self {
        assert!(!references.is_empty(), "need at least one reference");
        Self { references }
    }

    /// The nearest reference transaction to a plan vector: returns
    /// `(reference workload, transaction name, isolated factor)`.
    pub fn match_transaction(&self, plan_row: &[f64]) -> (&str, &str, f64) {
        let mut best: Option<(usize, usize, f64)> = None;
        for (ri, r) in self.references.iter().enumerate() {
            for (qi, row) in r.plan_rows.iter().enumerate() {
                let d = plan_distance(plan_row, row);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((ri, qi, d));
                }
            }
        }
        let (ri, qi, _) = best.unwrap();
        let r = &self.references[ri];
        (&r.workload, &r.transaction_names[qi], r.isolated_factor[qi])
    }

    /// Predicts a query's latency on the destination SKU from its
    /// observed latency on the source SKU (isolated-model transfer).
    pub fn predict_query_latency(&self, plan_row: &[f64], observed_latency_ms: f64) -> f64 {
        let (_, _, factor) = self.match_transaction(plan_row);
        observed_latency_ms * factor
    }

    /// Workload-level prediction: transfers the named reference's
    /// *measured* aggregate factor (`None` = mean over all references).
    pub fn predict_workload_latency(
        &self,
        reference: Option<&str>,
        observed_latency_ms: f64,
    ) -> f64 {
        let factor = match reference {
            Some(name) => {
                self.references
                    .iter()
                    .find(|r| r.workload == name)
                    .unwrap_or_else(|| panic!("unknown reference '{name}'"))
                    .workload_factor
            }
            None => wp_linalg::stats::mean(
                &self
                    .references
                    .iter()
                    .map(|r| r.workload_factor)
                    .collect::<Vec<_>>(),
            ),
        };
        observed_latency_ms * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_workloads::benchmarks;
    use wp_workloads::engine::Simulator;

    fn setup() -> (Simulator, Sku, Sku) {
        let mut sim = Simulator::new(17);
        sim.config.samples = 40;
        (sim, Sku::new("cpu2", 2, 64.0), Sku::new("cpu4", 4, 64.0))
    }

    fn reference(
        sim: &Simulator,
        spec: &WorkloadSpec,
        from: &Sku,
        to: &Sku,
        terminals: usize,
    ) -> ReferenceScaling {
        let pairs: Vec<_> = (0..2)
            .map(|r| {
                (
                    sim.simulate(spec, from, terminals, r, r % 3),
                    sim.simulate(spec, to, terminals, r, r % 3),
                )
            })
            .collect();
        ReferenceScaling::build(spec, from, to, &pairs)
    }

    #[test]
    fn isolated_factors_are_sublinear_improvements() {
        let (sim, from, to) = setup();
        let r = reference(&sim, &benchmarks::tpcc(), &from, &to, 8);
        for &f in &r.isolated_factor {
            // doubling CPUs: latency shrinks, but not by half (I/O floor)
            assert!(f < 1.0 && f > 0.3, "factor {f}");
        }
        assert!(r.workload_factor < 1.0);
    }

    #[test]
    fn plan_distance_identity_and_scale() {
        let a = vec![100.0, 5.0, 0.0];
        assert_eq!(plan_distance(&a, &a), 0.0);
        let near = vec![110.0, 5.0, 0.0];
        let far = vec![10000.0, 5.0, 0.0];
        assert!(plan_distance(&a, &near) < plan_distance(&a, &far));
    }

    #[test]
    fn matching_finds_the_same_transaction_type() {
        let (sim, from, to) = setup();
        let ycsb_b = benchmarks::ycsb_mix("YCSB-B", [45.0, 10.0, 15.0, 10.0, 5.0, 15.0]);
        let predictor = QueryLevelPredictor::new(vec![
            reference(&sim, &benchmarks::tpcc(), &from, &to, 8),
            reference(&sim, &ycsb_b, &from, &to, 8),
        ]);
        // a YCSB customer's Scan transaction matches YCSB-B's Scan
        let customer = sim.simulate(&benchmarks::ycsb(), &from, 8, 0, 0);
        let scan_idx = customer
            .plans
            .query_names
            .iter()
            .position(|n| n == "Scan")
            .unwrap();
        let (wl, txn, _) = predictor.match_transaction(customer.plans.data.row(scan_idx));
        assert_eq!(wl, "YCSB-B");
        assert_eq!(txn, "Scan");
    }

    #[test]
    fn workload_level_beats_query_level_on_the_mix() {
        // the Figure 1 headline as a library-level test
        let (sim, from, to) = setup();
        let ycsb = benchmarks::ycsb();
        let ycsb_b = benchmarks::ycsb_mix("YCSB-B", [45.0, 10.0, 15.0, 10.0, 5.0, 15.0]);
        let predictor = QueryLevelPredictor::new(vec![
            reference(&sim, &benchmarks::tpcc(), &from, &to, 8),
            reference(&sim, &ycsb_b, &from, &to, 8),
        ]);

        let mut q_err = 0.0;
        let mut w_err = 0.0;
        let n_runs = 6;
        for r in 0..n_runs {
            let obs = sim.simulate(&ycsb, &from, 8, r, r % 3);
            let actual = sim.simulate(&ycsb, &to, 8, r, r % 3);
            // aggregated query-level
            let total_w = ycsb.total_weight();
            let pred_q: f64 = ycsb
                .transactions
                .iter()
                .enumerate()
                .map(|(qi, t)| {
                    t.weight / total_w
                        * predictor.predict_query_latency(
                            obs.plans.data.row(qi),
                            obs.per_query_latency_ms[qi],
                        )
                })
                .sum();
            let actual_q: f64 = ycsb
                .transactions
                .iter()
                .zip(&actual.per_query_latency_ms)
                .map(|(t, l)| t.weight / total_w * l)
                .sum();
            q_err += ((actual_q - pred_q) / actual_q).abs();
            // workload-level via the similar reference
            let pred_w = predictor.predict_workload_latency(Some("YCSB-B"), obs.latency_ms);
            w_err += ((actual.latency_ms - pred_w) / actual.latency_ms).abs();
        }
        assert!(
            w_err < q_err,
            "workload-level ({:.3}) should beat query-level ({:.3})",
            w_err / n_runs as f64,
            q_err / n_runs as f64
        );
    }

    #[test]
    #[should_panic(expected = "unknown reference")]
    fn unknown_reference_panics() {
        let (sim, from, to) = setup();
        let p = QueryLevelPredictor::new(vec![reference(&sim, &benchmarks::tpcc(), &from, &to, 8)]);
        let _ = p.predict_workload_latency(Some("Nope"), 1.0);
    }
}

//! The six Table 6 modeling strategies behind one enum.
//!
//! The paper's models consume tiny datasets (≈ 24 training points per CV
//! fold), so the default hyper-parameters here are sized for that regime
//! — and the NNet strategy deliberately keeps the oversized 6-hidden-layer
//! architecture §6.1.2 describes, because its poor small-data behaviour
//! is itself one of the paper's findings (Insight 6).

use wp_linalg::Matrix;
use wp_ml::gbm::{GradientBoostingConfig, GradientBoostingRegressor};
use wp_ml::linreg::LinearRegression;
use wp_ml::lmm::LinearMixedModel;
use wp_ml::mars::Mars;
use wp_ml::mlp::{MlpConfig, MlpRegressor};
use wp_ml::svm::SupportVectorRegressor;
use wp_ml::traits::Regressor;

/// One of the paper's modeling strategies (§6.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelStrategy {
    /// Ordinary linear regression.
    Regression,
    /// ε-SVR with an RBF kernel.
    Svm,
    /// Linear mixed-effects model (random effects per data group).
    Lmm,
    /// Gradient-boosted regression trees.
    GradientBoosting,
    /// Multivariate adaptive regression splines.
    Mars,
    /// Multi-layer perceptron (6 hidden layers).
    NNet,
}

impl ModelStrategy {
    /// All strategies in Table 6 order.
    pub const ALL: [ModelStrategy; 6] = [
        ModelStrategy::Regression,
        ModelStrategy::Svm,
        ModelStrategy::Lmm,
        ModelStrategy::GradientBoosting,
        ModelStrategy::Mars,
        ModelStrategy::NNet,
    ];

    /// Display label matching Table 6.
    pub fn label(self) -> &'static str {
        match self {
            ModelStrategy::Regression => "Regression",
            ModelStrategy::Svm => "SVM",
            ModelStrategy::Lmm => "LMM",
            ModelStrategy::GradientBoosting => "GB",
            ModelStrategy::Mars => "MARS",
            ModelStrategy::NNet => "NNet",
        }
    }

    /// Fits the strategy; `groups` (the time-of-day data groups) is used
    /// by the LMM and ignored by the other strategies.
    pub fn fit(self, x: &Matrix, y: &[f64], groups: Option<&[usize]>) -> FittedModel {
        match self {
            ModelStrategy::Regression => {
                let mut m = LinearRegression::new();
                m.fit(x, y);
                FittedModel::Regression(m)
            }
            ModelStrategy::Svm => {
                // a wider ε-tube regularizes against observation noise on
                // the ~24-point training folds
                let mut m = SupportVectorRegressor::new(wp_ml::svm::SvrConfig {
                    epsilon: 0.2,
                    c: 5.0,
                    ..wp_ml::svm::SvrConfig::default()
                });
                m.fit(x, y);
                FittedModel::Svm(m)
            }
            ModelStrategy::Lmm => {
                let mut m = LinearMixedModel::new();
                match groups {
                    Some(g) => m.fit_grouped(x, y, g),
                    None => m.fit(x, y),
                }
                FittedModel::Lmm(m)
            }
            ModelStrategy::GradientBoosting => {
                // shallow stumps with a low learning rate: deeper trees
                // memorize the tiny scaling datasets and lose the CV
                let mut m = GradientBoostingRegressor::with_config(GradientBoostingConfig {
                    n_estimators: 80,
                    learning_rate: 0.08,
                    tree: wp_ml::tree::TreeConfig {
                        max_depth: 2,
                        min_samples_leaf: 4,
                        ..wp_ml::tree::TreeConfig::default()
                    },
                    ..GradientBoostingConfig::default()
                });
                m.fit(x, y);
                FittedModel::GradientBoosting(m)
            }
            ModelStrategy::Mars => {
                let mut m = Mars::new();
                m.fit(x, y);
                FittedModel::Mars(m)
            }
            ModelStrategy::NNet => {
                // mirror scikit-learn's MLPRegressor: no target scaling,
                // bounded iterations — the configuration whose poor
                // small-data behaviour Table 6 reports
                let mut m = MlpRegressor::new(MlpConfig {
                    epochs: 200,
                    standardize_target: false,
                    ..MlpConfig::default()
                });
                m.fit(x, y);
                FittedModel::NNet(m)
            }
        }
    }
}

/// A fitted Table 6 model, dispatching `predict` to the concrete type.
#[derive(Debug, Clone)]
pub enum FittedModel {
    /// Fitted linear regression.
    Regression(LinearRegression),
    /// Fitted SVR.
    Svm(SupportVectorRegressor),
    /// Fitted linear mixed model.
    Lmm(LinearMixedModel),
    /// Fitted boosting ensemble.
    GradientBoosting(GradientBoostingRegressor),
    /// Fitted MARS model.
    Mars(Mars),
    /// Fitted MLP.
    NNet(MlpRegressor),
}

impl FittedModel {
    /// Predicts one target per row of `x`, population-level for the LMM.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        match self {
            FittedModel::Regression(m) => m.predict(x),
            FittedModel::Svm(m) => m.predict(x),
            FittedModel::Lmm(m) => m.predict_group(x, None),
            FittedModel::GradientBoosting(m) => m.predict(x),
            FittedModel::Mars(m) => m.predict(x),
            FittedModel::NNet(m) => m.predict(x),
        }
    }

    /// Group-aware prediction; only the LMM distinguishes groups.
    pub fn predict_group(&self, x: &Matrix, group: Option<usize>) -> Vec<f64> {
        match self {
            FittedModel::Lmm(m) => m.predict_group(x, group),
            other => other.predict(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_ml::metrics::nrmse;

    /// A mildly noisy sub-linear scaling curve, like throughput vs CPUs.
    fn scaling_data() -> (Matrix, Vec<f64>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for (gi, gf) in [0.97, 1.0, 1.04].iter().enumerate() {
            for rep in 0..5 {
                for cpus in [2.0, 4.0, 8.0, 16.0] {
                    rows.push(vec![cpus]);
                    let base = 100.0 * cpus / (1.0 + 0.08 * (cpus - 1.0));
                    y.push(base * gf * (1.0 + 0.01 * rep as f64));
                    groups.push(gi);
                }
            }
        }
        (Matrix::from_rows(&rows), y, groups)
    }

    #[test]
    fn all_strategies_fit_and_predict_finite() {
        let (x, y, groups) = scaling_data();
        for s in ModelStrategy::ALL {
            let m = s.fit(&x, &y, Some(&groups));
            let pred = m.predict(&x);
            assert!(
                pred.iter().all(|p| p.is_finite()),
                "{} produced non-finite predictions",
                s.label()
            );
        }
    }

    #[test]
    fn simple_strategies_fit_scaling_curve_well() {
        let (x, y, groups) = scaling_data();
        for s in [
            ModelStrategy::Svm,
            ModelStrategy::GradientBoosting,
            ModelStrategy::Mars,
        ] {
            let m = s.fit(&x, &y, Some(&groups));
            let e = nrmse(&y, &m.predict(&x));
            assert!(e < 0.15, "{}: nrmse {e}", s.label());
        }
    }

    #[test]
    fn lmm_uses_group_information() {
        let (x, y, groups) = scaling_data();
        let m = ModelStrategy::Lmm.fit(&x, &y, Some(&groups));
        // group-aware predictions beat population-level on grouped data
        let pop = nrmse(&y, &m.predict(&x));
        let grouped: Vec<f64> = x
            .iter_rows()
            .zip(&groups)
            .map(|(row, &g)| m.predict_group(&Matrix::from_rows(&[row.to_vec()]), Some(g))[0])
            .collect();
        let grp = nrmse(&y, &grouped);
        assert!(grp <= pop + 1e-9, "grouped {grp} vs population {pop}");
    }

    #[test]
    fn labels_match_table6() {
        let labels: Vec<&str> = ModelStrategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Regression", "SVM", "LMM", "GB", "MARS", "NNet"]
        );
    }
}

//! End-to-end scaling predictor (§6.2.3): build pairwise scaling models
//! from a *reference* workload's observations across SKUs, then transfer
//! the learned scaling factor to a new workload that has only been
//! observed on a single SKU.

use wp_workloads::engine::Simulator;
use wp_workloads::sku::Sku;
use wp_workloads::spec::WorkloadSpec;

use crate::context::PairwiseScalingModel;
use crate::evaluation::ScalingData;
use crate::strategies::ModelStrategy;

/// Builds aligned [`ScalingData`] for one workload setting by simulating
/// `runs` repetitions on every SKU and splitting each run into `n_sub`
/// sub-experiments (the paper's 3 runs × 10 sub-samples = 30 observation
/// slots).
pub fn scaling_data_from_simulation(
    sim: &Simulator,
    spec: &WorkloadSpec,
    skus: &[Sku],
    terminals: usize,
    runs: usize,
    n_sub: usize,
) -> ScalingData {
    assert!(skus.len() >= 2, "need at least two SKUs");
    let mut levels: Vec<f64> = skus.iter().map(|s| s.cpus as f64).collect();
    let mut order: Vec<usize> = (0..skus.len()).collect();
    order.sort_by(|&a, &b| levels[a].partial_cmp(&levels[b]).unwrap());
    levels.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut values = Vec::with_capacity(skus.len());
    let mut groups = Vec::new();
    for (oi, &si) in order.iter().enumerate() {
        let mut level_values = Vec::with_capacity(runs * n_sub);
        for r in 0..runs {
            let obs = sim.observations(spec, &skus[si], terminals, r, r % 3, n_sub);
            for (s, &t) in obs.throughput.iter().enumerate() {
                level_values.push(t);
                if oi == 0 {
                    let _ = s;
                    groups.push(r % 3);
                }
            }
        }
        values.push(level_values);
    }
    let data = ScalingData {
        levels,
        values,
        groups,
    };
    data.validate();
    data
}

/// A fitted end-to-end scaling predictor built from a reference workload.
#[derive(Debug, Clone)]
pub struct ScalingPredictor {
    /// The reference workload whose scaling behaviour is transferred.
    pub reference_workload: String,
    /// The modeling strategy behind the pair models.
    pub strategy: ModelStrategy,
    model: PairwiseScalingModel,
}

impl ScalingPredictor {
    /// Fits pairwise models on the reference workload's scaling data.
    pub fn fit(
        reference_workload: impl Into<String>,
        strategy: ModelStrategy,
        data: &ScalingData,
    ) -> Self {
        data.validate();
        let model =
            PairwiseScalingModel::fit(strategy, &data.levels, &data.values, Some(&data.groups));
        Self {
            reference_workload: reference_workload.into(),
            strategy,
            model,
        }
    }

    /// Predicts a target workload's performance on `to_cpus` from its
    /// observed performance `observed` on `from_cpus`, using scale-free
    /// transfer of the reference workload's pair model.
    pub fn predict(&self, from_cpus: f64, to_cpus: f64, observed: f64) -> Option<f64> {
        self.model.predict_transfer(from_cpus, to_cpus, observed)
    }

    /// Direct (non-transfer) prediction for the reference workload itself.
    pub fn predict_reference(&self, from_cpus: f64, to_cpus: f64, observed: f64) -> Option<f64> {
        self.model.predict_value(from_cpus, to_cpus, observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_workloads::benchmarks;

    fn sim() -> Simulator {
        let mut s = Simulator::new(21);
        s.config.samples = 60;
        s
    }

    fn grid() -> Vec<Sku> {
        vec![
            Sku::new("cpu2", 2, 64.0),
            Sku::new("cpu4", 4, 64.0),
            Sku::new("cpu8", 8, 64.0),
        ]
    }

    #[test]
    fn scaling_data_is_aligned_and_plausible() {
        let sim = sim();
        let data = scaling_data_from_simulation(&sim, &benchmarks::tpcc(), &grid(), 8, 3, 10);
        assert_eq!(data.levels, vec![2.0, 4.0, 8.0]);
        assert_eq!(data.n_observations(), 30);
        // throughput grows with CPU level
        let means: Vec<f64> = data
            .values
            .iter()
            .map(|v| wp_linalg::stats::mean(v))
            .collect();
        assert!(means[1] > means[0] && means[2] > means[1], "{means:?}");
    }

    #[test]
    fn predictor_transfers_scaling_to_other_workload() {
        let sim = sim();
        let ref_data = scaling_data_from_simulation(&sim, &benchmarks::tpcc(), &grid(), 8, 3, 10);
        let predictor = ScalingPredictor::fit("TPC-C", ModelStrategy::Svm, &ref_data);

        // target: YCSB, observed at 2 CPUs, predicted at 8
        let ycsb = benchmarks::ycsb();
        let obs2 = sim.observations(&ycsb, &grid()[0], 8, 0, 0, 10);
        let observed = wp_linalg::stats::mean(&obs2.throughput);
        let predicted = predictor.predict(2.0, 8.0, observed).unwrap();

        let actual = sim.observations(&ycsb, &grid()[2], 8, 0, 0, 10);
        let actual_mean = wp_linalg::stats::mean(&actual.throughput);
        let err = (predicted - actual_mean).abs() / actual_mean;
        assert!(err < 0.6, "prediction {predicted} vs actual {actual_mean}");
        assert!(
            predicted > observed,
            "scaling up should increase throughput"
        );
    }

    #[test]
    fn reference_prediction_close_to_truth() {
        let sim = sim();
        let data = scaling_data_from_simulation(&sim, &benchmarks::twitter(), &grid(), 8, 3, 10);
        let predictor = ScalingPredictor::fit("Twitter", ModelStrategy::Regression, &data);
        let from_mean = wp_linalg::stats::mean(&data.values[0]);
        let to_mean = wp_linalg::stats::mean(&data.values[2]);
        let pred = predictor.predict_reference(2.0, 8.0, from_mean).unwrap();
        let err = (pred - to_mean).abs() / to_mean;
        assert!(err < 0.2, "pred {pred} vs mean {to_mean}");
    }

    #[test]
    fn unknown_pair_yields_none() {
        let sim = sim();
        let data = scaling_data_from_simulation(&sim, &benchmarks::tpcc(), &grid(), 8, 2, 5);
        let p = ScalingPredictor::fit("TPC-C", ModelStrategy::Regression, &data);
        assert!(p.predict(2.0, 16.0, 100.0).is_none());
    }
}

//! Modeling contexts (§6.1.1): single vs pairwise scaling models.
//!
//! A **single** model fits one curve `performance = f(#CPUs)` across the
//! whole SKU range. A **pairwise** model fits, for every ordered SKU pair
//! `(a, b)`, a map from performance observed on `a` to performance on `b`
//! — the paper's preferred context (Insight 5), because the transition
//! between *specific* hardware configurations deviates from any single
//! smooth curve.

use std::collections::HashMap;

use wp_linalg::Matrix;

use crate::strategies::{FittedModel, ModelStrategy};

/// Which modeling context to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelContext {
    /// One model over all SKUs.
    Single,
    /// One model per ordered SKU pair.
    Pairwise,
}

impl ModelContext {
    /// Display label matching Table 6.
    pub fn label(self) -> &'static str {
        match self {
            ModelContext::Single => "Single",
            ModelContext::Pairwise => "Pairwise",
        }
    }
}

/// A single scaling model: `performance = f(cpus)`.
#[derive(Debug, Clone)]
pub struct SingleScalingModel {
    /// The strategy that produced `model`.
    pub strategy: ModelStrategy,
    model: FittedModel,
}

impl SingleScalingModel {
    /// Fits on `(cpus, value)` observations with optional data groups.
    pub fn fit(
        strategy: ModelStrategy,
        cpus: &[f64],
        values: &[f64],
        groups: Option<&[usize]>,
    ) -> Self {
        assert_eq!(cpus.len(), values.len(), "one value per cpu observation");
        assert!(!cpus.is_empty(), "need training data");
        let x = Matrix::column_vector(cpus);
        let model = strategy.fit(&x, values, groups);
        Self { strategy, model }
    }

    /// Predicts the performance at a CPU count.
    pub fn predict(&self, cpus: f64) -> f64 {
        self.model.predict(&Matrix::column_vector(&[cpus]))[0]
    }

    /// Group-aware prediction (LMM only differs).
    pub fn predict_for_group(&self, cpus: f64, group: Option<usize>) -> f64 {
        self.model
            .predict_group(&Matrix::column_vector(&[cpus]), group)[0]
    }
}

/// Integer key for a CPU level (levels are small integers in practice).
fn level_key(cpus: f64) -> u32 {
    cpus.round() as u32
}

/// A set of pairwise scaling models, one per ordered `(from, to)` pair of
/// CPU levels.
#[derive(Debug, Clone)]
pub struct PairwiseScalingModel {
    /// The strategy behind every pair model.
    pub strategy: ModelStrategy,
    models: HashMap<(u32, u32), FittedModel>,
    /// Mean training input per pair, used for scale-free transfer.
    train_means: HashMap<(u32, u32), f64>,
}

impl PairwiseScalingModel {
    /// Fits pair models from aligned per-level observations.
    ///
    /// `levels[i]` is a CPU count and `values[i]` its observation vector;
    /// all vectors must be aligned (observation `j` of every level stems
    /// from the same run/sub-sample) and equally long. A model is fit for
    /// every ordered pair with `from != to`.
    pub fn fit(
        strategy: ModelStrategy,
        levels: &[f64],
        values: &[Vec<f64>],
        groups: Option<&[usize]>,
    ) -> Self {
        assert_eq!(levels.len(), values.len(), "one value vector per level");
        assert!(levels.len() >= 2, "pairwise context needs >= 2 levels");
        let n = values[0].len();
        assert!(n > 0, "need observations");
        for v in values {
            assert_eq!(v.len(), n, "observation vectors must be aligned");
        }
        if let Some(g) = groups {
            assert_eq!(g.len(), n, "one group per observation");
        }

        let mut models = HashMap::new();
        let mut train_means = HashMap::new();
        for (i, &from) in levels.iter().enumerate() {
            for (j, &to) in levels.iter().enumerate() {
                if i == j {
                    continue;
                }
                let x = Matrix::column_vector(&values[i]);
                let fitted = strategy.fit(&x, &values[j], groups);
                let key = (level_key(from), level_key(to));
                models.insert(key, fitted);
                train_means.insert(key, wp_linalg::stats::mean(&values[i]));
            }
        }
        Self {
            strategy,
            models,
            train_means,
        }
    }

    /// The ordered pairs with fitted models.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut p: Vec<(u32, u32)> = self.models.keys().copied().collect();
        p.sort_unstable();
        p
    }

    /// Direct regression prediction: performance on `to` given the
    /// observed performance `value` on `from`. `None` when the pair has no
    /// model.
    pub fn predict_value(&self, from: f64, to: f64, value: f64) -> Option<f64> {
        let m = self.models.get(&(level_key(from), level_key(to)))?;
        Some(m.predict(&Matrix::column_vector(&[value]))[0])
    }

    /// Scale-free transfer (§6.2.3): evaluates the pair model's scaling
    /// *factor* at its training regime and applies that factor to `value`.
    ///
    /// This is what makes a pairwise model trained on workload A (e.g.
    /// TPC-C) usable for workload B (e.g. YCSB) whose absolute throughput
    /// is different: the model contributes the ratio, the new workload
    /// contributes the level.
    ///
    /// A same-level transfer (`from == to` after rounding) is the
    /// identity: no pair model exists (fitting skips `i == j`), and the
    /// only consistent scaling factor is 1.
    pub fn predict_transfer(&self, from: f64, to: f64, value: f64) -> Option<f64> {
        if level_key(from) == level_key(to) {
            return Some(value);
        }
        let key = (level_key(from), level_key(to));
        let m = self.models.get(&key)?;
        let x_ref = self.train_means[&key];
        if x_ref == 0.0 {
            return None;
        }
        let y_ref = m.predict(&Matrix::column_vector(&[x_ref]))[0];
        Some(value * (y_ref / x_ref))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Aligned observations at levels 2/4/8 with a known 1.5× per-step
    /// scaling factor and small observation spread.
    fn data() -> (Vec<f64>, Vec<Vec<f64>>, Vec<usize>) {
        let levels = vec![2.0, 4.0, 8.0];
        let base: Vec<f64> = (0..12).map(|i| 100.0 + i as f64).collect();
        let values = vec![
            base.clone(),
            base.iter().map(|v| v * 1.5).collect(),
            base.iter().map(|v| v * 2.25).collect(),
        ];
        let groups: Vec<usize> = (0..12).map(|i| i % 3).collect();
        (levels, values, groups)
    }

    #[test]
    fn single_model_tracks_curve() {
        let cpus: Vec<f64> = vec![2.0, 4.0, 8.0, 2.0, 4.0, 8.0];
        let vals = vec![100.0, 150.0, 225.0, 102.0, 148.0, 223.0];
        let m = SingleScalingModel::fit(ModelStrategy::Regression, &cpus, &vals, None);
        let p4 = m.predict(4.0);
        assert!((p4 - 150.0).abs() < 20.0, "p4 = {p4}");
    }

    #[test]
    fn pairwise_fits_all_ordered_pairs() {
        let (levels, values, groups) = data();
        let m =
            PairwiseScalingModel::fit(ModelStrategy::Regression, &levels, &values, Some(&groups));
        assert_eq!(m.pairs().len(), 6);
        assert!(m.pairs().contains(&(2, 8)));
        assert!(m.pairs().contains(&(8, 2)));
    }

    #[test]
    fn pairwise_predicts_known_ratio() {
        let (levels, values, groups) = data();
        let m =
            PairwiseScalingModel::fit(ModelStrategy::Regression, &levels, &values, Some(&groups));
        let p = m.predict_value(2.0, 8.0, 105.0).unwrap();
        assert!((p - 105.0 * 2.25).abs() < 2.0, "p = {p}");
    }

    #[test]
    fn transfer_is_scale_free() {
        let (levels, values, groups) = data();
        let m = PairwiseScalingModel::fit(ModelStrategy::Svm, &levels, &values, Some(&groups));
        // apply the 2→8 factor (2.25×) to a workload with 10× the volume
        let p = m.predict_transfer(2.0, 8.0, 1000.0).unwrap();
        assert!((p - 2250.0).abs() < 200.0, "p = {p}");
    }

    #[test]
    fn unknown_pair_returns_none() {
        let (levels, values, _) = data();
        let m = PairwiseScalingModel::fit(ModelStrategy::Regression, &levels, &values, None);
        assert!(m.predict_value(2.0, 16.0, 100.0).is_none());
        assert!(m.predict_transfer(3.0, 8.0, 100.0).is_none());
    }

    #[test]
    fn context_labels() {
        assert_eq!(ModelContext::Single.label(), "Single");
        assert_eq!(ModelContext::Pairwise.label(), "Pairwise");
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_observations_rejected() {
        let levels = vec![2.0, 4.0];
        let values = vec![vec![1.0, 2.0], vec![1.0]];
        let _ = PairwiseScalingModel::fit(ModelStrategy::Regression, &levels, &values, None);
    }
}

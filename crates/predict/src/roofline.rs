//! Roofline-augmented prediction (Appendix B / Figure 12).
//!
//! A plain linear model extrapolates past the hardware's performance
//! ceiling; the Roofline model clips the prediction at the ceiling,
//! producing the piecewise-linear "blue line" of Figure 12: throughput
//! grows with CPUs while the workload is compute-bound and flattens once
//! memory becomes the bottleneck.

use wp_linalg::Matrix;
use wp_ml::linreg::LinearRegression;
use wp_ml::traits::Regressor;

/// A linear scaling model clipped at a performance ceiling.
#[derive(Debug, Clone)]
pub struct RooflineModel {
    /// The unclipped linear component.
    pub linear: LinearRegression,
    /// The performance ceiling (e.g. the memory-bound throughput).
    pub ceiling: f64,
}

impl RooflineModel {
    /// Fits the linear component on `(cpus, value)` points and installs
    /// the given ceiling.
    pub fn fit(cpus: &[f64], values: &[f64], ceiling: f64) -> Self {
        assert!(ceiling > 0.0, "ceiling must be positive");
        assert_eq!(cpus.len(), values.len(), "one value per cpu point");
        let x = Matrix::column_vector(cpus);
        let mut linear = LinearRegression::new();
        linear.fit(&x, values);
        Self { linear, ceiling }
    }

    /// Unclipped linear prediction.
    pub fn predict_linear(&self, cpus: f64) -> f64 {
        self.linear.predict(&Matrix::column_vector(&[cpus]))[0]
    }

    /// Roofline prediction: the linear component clipped at the ceiling.
    pub fn predict(&self, cpus: f64) -> f64 {
        self.predict_linear(cpus).min(self.ceiling)
    }

    /// The CPU count where the linear component meets the ceiling — the
    /// compute-bound → memory-bound crossover (the Figure 12 "knee").
    pub fn knee(&self) -> Option<f64> {
        let slope = *self.linear.coefficients.first()?;
        if slope <= 0.0 {
            return None;
        }
        Some((self.ceiling - self.linear.intercept) / slope)
    }
}

/// A memory-bound throughput ceiling for a workload with per-transaction
/// working set `mem_mb_per_txn` and per-transaction latency
/// `latency_s` on a machine with `memory_gb` of memory: at most
/// `memory/working-set` transactions can be in flight, each holding its
/// memory for `latency_s`.
pub fn memory_ceiling_tps(memory_gb: f64, mem_mb_per_txn: f64, latency_s: f64) -> f64 {
    assert!(memory_gb > 0.0 && mem_mb_per_txn > 0.0 && latency_s > 0.0);
    let slots = memory_gb * 1024.0 * 0.7 / mem_mb_per_txn;
    slots / latency_s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RooflineModel {
        // throughput = 50·cpus measured on 1..3 CPUs, ceiling at 150
        RooflineModel::fit(&[1.0, 2.0, 3.0], &[50.0, 100.0, 150.0], 150.0)
    }

    #[test]
    fn below_knee_is_linear() {
        let m = model();
        assert!((m.predict(2.0) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn above_knee_is_clipped() {
        let m = model();
        // Figure 12's point: 4 CPUs predicts the same as 3 CPUs
        assert!((m.predict(4.0) - 150.0).abs() < 1e-6);
        assert!((m.predict(4.0) - m.predict(3.0)).abs() < 1e-6);
        // the unclipped line keeps growing (and would be wrong)
        assert!(m.predict_linear(4.0) > 190.0);
    }

    #[test]
    fn knee_location() {
        let m = model();
        let k = m.knee().unwrap();
        assert!((k - 3.0).abs() < 1e-6, "knee at {k}");
    }

    #[test]
    fn flat_line_has_no_knee() {
        let m = RooflineModel::fit(&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0], 200.0);
        assert!(m.knee().is_none());
    }

    #[test]
    fn memory_ceiling_formula() {
        // 10 GiB, 70 % usable = 7168 MiB; 100 MiB/txn → ~71.68 slots;
        // 0.5 s latency → ~143 tps
        let c = memory_ceiling_tps(10.0, 100.0, 0.5);
        assert!((c - 143.36).abs() < 0.1, "ceiling {c}");
    }

    #[test]
    #[should_panic(expected = "ceiling must be positive")]
    fn invalid_ceiling_rejected() {
        let _ = RooflineModel::fit(&[1.0], &[1.0], 0.0);
    }
}

//! Workload resource (scaling) prediction (§6).
//!
//! * [`strategies`] — the six modeling strategies of Table 6 (Regression,
//!   SVM, LMM, Gradient Boosting, MARS, NNet) behind one enum.
//! * [`context`] — the two modeling contexts (§6.1.1): one *single*
//!   model over the whole SKU range vs *pairwise* models per SKU pair.
//! * [`baseline`] — the naive inverse-linear scaling baseline.
//! * [`roofline`] — Appendix B's Roofline-augmented piecewise-linear
//!   predictor (Figure 12).
//! * [`evaluation`] — the 5-fold cross-validated NRMSE harness behind
//!   Table 6.
//! * [`multidim`] — §7's multi-dimensional SKU extension (CPU + memory
//!   as a joint feature plane).
//! * [`query_level`] — the isolated per-query comparator of Figure 1.
//! * [`predictor`] — the end-to-end scaling predictor used by `wp-core`
//!   (§6.2.3): transfer a similar workload's pairwise scaling behaviour
//!   to a new workload observed on one SKU only.

#![warn(missing_docs)]

pub mod baseline;
pub mod context;
pub mod evaluation;
pub mod multidim;
pub mod predictor;
pub mod query_level;
pub mod roofline;
pub mod strategies;

pub use context::{ModelContext, PairwiseScalingModel, SingleScalingModel};
pub use evaluation::ScalingData;
pub use strategies::{FittedModel, ModelStrategy};

//! The naive scaling baseline of Table 6: "assumes inverse linear scaling
//! relationship between CPU and latency, i.e. if number of CPU increase
//! from 2 to 4, the latency reduce by half" — equivalently, throughput
//! scales proportionally with the CPU count.

/// Baseline throughput prediction: `value · to_cpus / from_cpus`.
pub fn linear_scaling_throughput(from_cpus: f64, to_cpus: f64, value: f64) -> f64 {
    assert!(
        from_cpus > 0.0 && to_cpus > 0.0,
        "CPU counts must be positive"
    );
    value * to_cpus / from_cpus
}

/// Baseline latency prediction: `value · from_cpus / to_cpus`.
pub fn linear_scaling_latency(from_cpus: f64, to_cpus: f64, value: f64) -> f64 {
    assert!(
        from_cpus > 0.0 && to_cpus > 0.0,
        "CPU counts must be positive"
    );
    value * from_cpus / to_cpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_cpus_doubles_throughput() {
        assert_eq!(linear_scaling_throughput(2.0, 4.0, 100.0), 200.0);
    }

    #[test]
    fn doubling_cpus_halves_latency() {
        assert_eq!(linear_scaling_latency(2.0, 4.0, 10.0), 5.0);
    }

    #[test]
    fn downscaling_works_symmetrically() {
        assert_eq!(linear_scaling_throughput(8.0, 2.0, 400.0), 100.0);
        assert_eq!(linear_scaling_latency(8.0, 2.0, 1.0), 4.0);
    }

    #[test]
    fn identity_for_same_sku() {
        assert_eq!(linear_scaling_throughput(4.0, 4.0, 123.0), 123.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cpus_rejected() {
        let _ = linear_scaling_throughput(0.0, 4.0, 1.0);
    }
}

//! The Table 6 evaluation harness: 5-fold cross-validated NRMSE of every
//! (context × strategy) combination, averaged over all upward scaling
//! pairs, plus the inverse-linear baseline.

use wp_linalg::Matrix;
use wp_ml::cv::KFold;
use wp_ml::metrics::nrmse;

use crate::baseline::linear_scaling_throughput;
use crate::context::ModelContext;
use crate::strategies::ModelStrategy;

/// Aligned scaling observations for one workload setting: for each CPU
/// level, the same number of throughput observations, where observation
/// `j` at every level stems from the same (run, sub-sample) slot.
#[derive(Debug, Clone)]
pub struct ScalingData {
    /// The CPU levels, ascending (e.g. 2, 4, 8, 16).
    pub levels: Vec<f64>,
    /// Per level: the observation vector (aligned across levels).
    pub values: Vec<Vec<f64>>,
    /// Data group of each observation slot.
    pub groups: Vec<usize>,
}

impl ScalingData {
    /// Validates alignment invariants.
    pub fn validate(&self) {
        assert_eq!(self.levels.len(), self.values.len(), "levels/values");
        assert!(self.levels.len() >= 2, "need at least two levels");
        let n = self.groups.len();
        assert!(n > 0, "need observations");
        for v in &self.values {
            assert_eq!(v.len(), n, "observation vectors must be aligned");
        }
        for w in self.levels.windows(2) {
            assert!(w[1] > w[0], "levels must be strictly ascending");
        }
    }

    /// Number of observation slots per level.
    pub fn n_observations(&self) -> usize {
        self.groups.len()
    }

    /// All upward pairs `(i, j)` with `levels[i] < levels[j]` — the six
    /// combinations for a 4-level grid.
    pub fn upward_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.levels.len() {
            for j in i + 1..self.levels.len() {
                out.push((i, j));
            }
        }
        out
    }
}

/// Result of evaluating one (context, strategy) cell of Table 6.
#[derive(Debug, Clone, Copy)]
pub struct CellResult {
    /// Mean test NRMSE over folds (and pairs, for the pairwise context).
    pub nrmse: f64,
    /// Wall-clock seconds spent in model training.
    pub train_seconds: f64,
}

/// 5-fold CV NRMSE of the **pairwise** context: one model per upward
/// pair, trained on `(value_from → value_to)` observation pairs, averaged
/// over pairs.
pub fn pairwise_cv_nrmse(
    data: &ScalingData,
    strategy: ModelStrategy,
    folds: usize,
    seed: u64,
) -> CellResult {
    data.validate();
    let kf = KFold::new(folds, seed);
    let mut pair_scores = Vec::new();
    let mut train_seconds = 0.0;
    for (i, j) in data.upward_pairs() {
        let xs = &data.values[i];
        let ys = &data.values[j];
        let mut fold_scores = Vec::new();
        for (train, test) in kf.split(xs.len()) {
            let xtr: Vec<f64> = train.iter().map(|&k| xs[k]).collect();
            let ytr: Vec<f64> = train.iter().map(|&k| ys[k]).collect();
            let gtr: Vec<usize> = train.iter().map(|&k| data.groups[k]).collect();
            let xte: Vec<f64> = test.iter().map(|&k| xs[k]).collect();
            let yte: Vec<f64> = test.iter().map(|&k| ys[k]).collect();
            let t0 = std::time::Instant::now();
            let model = strategy.fit(&Matrix::column_vector(&xtr), &ytr, Some(&gtr));
            train_seconds += t0.elapsed().as_secs_f64();
            let pred = model.predict(&Matrix::column_vector(&xte));
            fold_scores.push(nrmse(&yte, &pred));
        }
        pair_scores.push(wp_linalg::stats::mean(&fold_scores));
    }
    CellResult {
        nrmse: wp_linalg::stats::mean(&pair_scores),
        train_seconds,
    }
}

/// 5-fold CV NRMSE of the **single** context: one model `value = f(cpus)`
/// over all levels; NRMSE is computed per upward pair on the test-fold
/// observations of the pair's upper level, then averaged (so the metric
/// is comparable with the pairwise context).
pub fn single_cv_nrmse(
    data: &ScalingData,
    strategy: ModelStrategy,
    folds: usize,
    seed: u64,
) -> CellResult {
    data.validate();
    let n = data.n_observations();
    let kf = KFold::new(folds, seed);
    let mut fold_scores = Vec::new();
    let mut train_seconds = 0.0;
    // folds split observation slots, keeping levels aligned
    for (train, test) in kf.split(n) {
        let mut xtr = Vec::new();
        let mut ytr = Vec::new();
        let mut gtr = Vec::new();
        for (li, &level) in data.levels.iter().enumerate() {
            for &k in &train {
                xtr.push(level);
                ytr.push(data.values[li][k]);
                gtr.push(data.groups[k]);
            }
        }
        let t0 = std::time::Instant::now();
        let model = strategy.fit(&Matrix::column_vector(&xtr), &ytr, Some(&gtr));
        train_seconds += t0.elapsed().as_secs_f64();
        // per-upper-level NRMSE over pairs
        let mut pair_scores = Vec::new();
        for (_, j) in data.upward_pairs() {
            let xte = vec![data.levels[j]; test.len()];
            let yte: Vec<f64> = test.iter().map(|&k| data.values[j][k]).collect();
            let pred = model.predict(&Matrix::column_vector(&xte));
            pair_scores.push(nrmse(&yte, &pred));
        }
        fold_scores.push(wp_linalg::stats::mean(&pair_scores));
    }
    CellResult {
        nrmse: wp_linalg::stats::mean(&fold_scores),
        train_seconds,
    }
}

/// Dispatches on the context.
pub fn cv_nrmse(
    data: &ScalingData,
    context: ModelContext,
    strategy: ModelStrategy,
    folds: usize,
    seed: u64,
) -> CellResult {
    match context {
        ModelContext::Pairwise => pairwise_cv_nrmse(data, strategy, folds, seed),
        ModelContext::Single => single_cv_nrmse(data, strategy, folds, seed),
    }
}

/// NRMSE of the inverse-linear baseline, averaged over upward pairs.
pub fn baseline_nrmse(data: &ScalingData) -> f64 {
    data.validate();
    let mut pair_scores = Vec::new();
    for (i, j) in data.upward_pairs() {
        let pred: Vec<f64> = data.values[i]
            .iter()
            .map(|&v| linear_scaling_throughput(data.levels[i], data.levels[j], v))
            .collect();
        pair_scores.push(nrmse(&data.values[j], &pred));
    }
    wp_linalg::stats::mean(&pair_scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sub-linear scaling (USL-like) with noise and 3 data groups.
    fn data() -> ScalingData {
        let levels = vec![2.0, 4.0, 8.0, 16.0];
        let n = 30;
        let jitter =
            |i: usize, l: usize| (((i * 31 + l * 17) * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        let groups: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let values: Vec<Vec<f64>> = levels
            .iter()
            .enumerate()
            .map(|(li, &l)| {
                (0..n)
                    .map(|i| {
                        let base = 100.0 * l / (1.0 + 0.1 * (l - 1.0));
                        let group_f = 0.97 + 0.03 * (i % 3) as f64;
                        base * group_f * (1.0 + 0.05 * jitter(i, li))
                    })
                    .collect()
            })
            .collect();
        ScalingData {
            levels,
            values,
            groups,
        }
    }

    #[test]
    fn upward_pairs_of_four_levels_is_six() {
        assert_eq!(data().upward_pairs().len(), 6);
    }

    #[test]
    fn pairwise_regression_beats_baseline() {
        let d = data();
        let cell = pairwise_cv_nrmse(&d, ModelStrategy::Regression, 5, 1);
        let base = baseline_nrmse(&d);
        assert!(cell.nrmse < base, "model {} vs baseline {base}", cell.nrmse);
        assert!(base > 1.0, "baseline should be far off: {base}");
    }

    #[test]
    fn single_regression_beats_baseline() {
        let d = data();
        let cell = single_cv_nrmse(&d, ModelStrategy::Regression, 5, 1);
        let base = baseline_nrmse(&d);
        assert!(cell.nrmse < base);
    }

    #[test]
    fn nrmse_in_plausible_range_for_good_strategies() {
        let d = data();
        for s in [ModelStrategy::Svm, ModelStrategy::GradientBoosting] {
            let cell = pairwise_cv_nrmse(&d, s, 5, 2);
            assert!(cell.nrmse < 1.5, "{}: nrmse {}", s.label(), cell.nrmse);
            assert!(cell.train_seconds >= 0.0);
        }
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let d = data();
        let a = cv_nrmse(&d, ModelContext::Pairwise, ModelStrategy::Regression, 5, 3);
        let b = pairwise_cv_nrmse(&d, ModelStrategy::Regression, 5, 3);
        assert!((a.nrmse - b.nrmse).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_levels_rejected() {
        let mut d = data();
        d.levels.swap(0, 1);
        d.validate();
    }
}

//! Property-based tests for the telemetry containers and samplers.

use proptest::prelude::*;
use wp_linalg::Matrix;
use wp_telemetry::sampling::{
    random_indices_without_replacement, systematic_indices,
};
use wp_telemetry::{FeatureId, ResourceSeries, N_FEATURES};

proptest! {
    #[test]
    fn systematic_indices_partition(n in 1usize..500, k in 1usize..20) {
        let subs = systematic_indices(n, k);
        prop_assert_eq!(subs.len(), k);
        let mut seen = vec![false; n];
        for sub in &subs {
            for &i in sub {
                prop_assert!(!seen[i], "index {i} duplicated");
                seen[i] = true;
            }
            // strictly increasing within a sub-experiment
            for w in sub.windows(2) {
                prop_assert!(w[1] > w[0]);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // balanced: sizes differ by at most one
        let sizes: Vec<usize> = subs.iter().map(Vec::len).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn random_draw_is_sorted_unique_subset(
        n in 1usize..300,
        frac in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let m = ((n as f64) * frac) as usize;
        let idx = random_indices_without_replacement(n, m, seed);
        prop_assert_eq!(idx.len(), m);
        for w in idx.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        if let Some(&last) = idx.last() {
            prop_assert!(last < n);
        }
    }

    #[test]
    fn feature_id_roundtrip_total(idx in 0usize..N_FEATURES) {
        let f = FeatureId::from_global_index(idx);
        prop_assert_eq!(f.global_index(), idx);
        prop_assert_eq!(FeatureId::by_name(f.name()), Some(f));
        prop_assert!(f.is_plan() != f.is_resource());
    }

    #[test]
    fn resource_series_select_preserves_values(
        n in 1usize..50,
        pick in proptest::collection::vec(0usize..50, 1..20),
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..7).map(|c| (i * 7 + c) as f64).collect())
            .collect();
        let s = ResourceSeries::new(Matrix::from_rows(&rows), 10.0);
        let idx: Vec<usize> = pick.into_iter().filter(|&i| i < n).collect();
        prop_assume!(!idx.is_empty());
        let sub = s.select_samples(&idx);
        prop_assert_eq!(sub.len(), idx.len());
        for (row, &src) in idx.iter().enumerate().map(|(r, s)| (r, s)) {
            prop_assert_eq!(sub.data.row(row), s.data.row(src));
        }
    }
}

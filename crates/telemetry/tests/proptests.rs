//! Randomized property tests for the telemetry containers and samplers.
//!
//! Seeded [`Rng64`] case loops replace the former external
//! property-testing dependency; every case is reproducible from the
//! fixed seeds below.

use wp_linalg::{Matrix, Rng64};
use wp_telemetry::sampling::{random_indices_without_replacement, systematic_indices};
use wp_telemetry::{FeatureId, ResourceSeries, N_FEATURES};

const CASES: usize = 64;

#[test]
fn systematic_indices_partition() {
    let mut rng = Rng64::new(0x21);
    for _ in 0..CASES {
        let n = 1 + rng.below(499);
        let k = 1 + rng.below(19);
        let subs = systematic_indices(n, k);
        assert_eq!(subs.len(), k);
        let mut seen = vec![false; n];
        for sub in &subs {
            for &i in sub {
                assert!(!seen[i], "index {i} duplicated");
                seen[i] = true;
            }
            // strictly increasing within a sub-experiment
            for w in sub.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
        assert!(seen.iter().all(|&s| s));
        // balanced: sizes differ by at most one
        let sizes: Vec<usize> = subs.iter().map(Vec::len).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }
}

#[test]
fn random_draw_is_sorted_unique_subset() {
    let mut rng = Rng64::new(0x22);
    for _ in 0..CASES {
        let n = 1 + rng.below(299);
        let m = ((n as f64) * rng.unit()) as usize;
        let seed = rng.next_u64() % 1000;
        let idx = random_indices_without_replacement(n, m, seed);
        assert_eq!(idx.len(), m);
        for w in idx.windows(2) {
            assert!(w[1] > w[0]);
        }
        if let Some(&last) = idx.last() {
            assert!(last < n);
        }
    }
}

#[test]
fn feature_id_roundtrip_total() {
    for idx in 0..N_FEATURES {
        let f = FeatureId::from_global_index(idx);
        assert_eq!(f.global_index(), idx);
        assert_eq!(FeatureId::by_name(f.name()), Some(f));
        assert!(f.is_plan() != f.is_resource());
    }
}

#[test]
fn resource_series_select_preserves_values() {
    let mut rng = Rng64::new(0x23);
    for _ in 0..CASES {
        let n = 1 + rng.below(49);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..7).map(|c| (i * 7 + c) as f64).collect())
            .collect();
        let s = ResourceSeries::new(Matrix::from_rows(&rows), 10.0);
        let picks = 1 + rng.below(19);
        let idx: Vec<usize> = (0..picks)
            .map(|_| rng.below(50))
            .filter(|&i| i < n)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let sub = s.select_samples(&idx);
        assert_eq!(sub.len(), idx.len());
        for (row, &src) in idx.iter().enumerate() {
            assert_eq!(sub.data.row(row), s.data.row(src));
        }
    }
}

//! Feature catalog, telemetry containers, and sampling utilities.
//!
//! The paper collects two kinds of telemetry from every experiment
//! (Table 2): seven **resource-utilization** features sampled as a
//! time-series during execution, and twenty-two **query-plan statistics**
//! captured once per query. This crate defines the typed catalog of those
//! 29 features, the containers that hold observations
//! ([`ResourceSeries`], [`PlanStats`], [`ExperimentRun`]), and the
//! systematic/random sampling used to turn one experiment into ten
//! sub-experiments (§2.1, §6.2). [`io`] is the interchange seam where
//! real (non-simulated) telemetry enters the pipeline (JSON and CSV).

#![warn(missing_docs)]

pub mod features;
pub mod io;
pub mod run;
pub mod sampling;

pub use features::{FeatureId, FeatureSet, PlanFeature, ResourceFeature, N_FEATURES};
pub use run::{ExperimentRun, PlanStats, ResourceSeries, RunKey};
pub use sampling::{random_downsample, systematic_subsample};

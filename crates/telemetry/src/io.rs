//! Telemetry interchange: JSON export/import of [`ExperimentRun`]s and a
//! CSV loader for resource-utilization series.
//!
//! The simulator is a stand-in for real collection infrastructure; this
//! module is the seam where real telemetry enters the pipeline. A
//! deployment that logs the Table 2 counters can serialize them in either
//! format and run the identical feature-selection / similarity /
//! prediction code paths.

use crate::features::ResourceFeature;
use crate::run::{ExperimentRun, PlanStats, ResourceSeries, RunKey};
use wp_json::{obj, Json};
use wp_linalg::Matrix;

/// Serializes runs to pretty-printed JSON.
pub fn runs_to_json(runs: &[ExperimentRun]) -> String {
    Json::Arr(runs.iter().map(run_to_json).collect()).pretty()
}

/// Parses runs from JSON produced by [`runs_to_json`] (or by any external
/// collector emitting the same schema).
pub fn runs_from_json(json: &str) -> Result<Vec<ExperimentRun>, String> {
    let doc = Json::parse(json).map_err(|e| format!("invalid telemetry JSON: {e}"))?;
    let runs = doc
        .as_arr()
        .ok_or("invalid telemetry JSON: top level must be an array")?;
    runs.iter()
        .enumerate()
        .map(|(i, r)| run_from_json(r).map_err(|e| format!("invalid telemetry JSON: run {i}: {e}")))
        .collect()
}

fn matrix_to_json(m: &Matrix) -> Json {
    obj! {
        "rows" => m.rows(),
        "cols" => m.cols(),
        "data" => m.as_slice().to_vec(),
    }
}

/// Serializes one run as a [`Json`] value in the interchange schema.
///
/// Building block for embedding runs inside larger documents (the
/// `wp-server` request/response bodies and corpus files); [`runs_to_json`]
/// is the plain-array convenience over it.
pub fn run_to_json(run: &ExperimentRun) -> Json {
    obj! {
        "key" => obj! {
            "workload" => run.key.workload.clone(),
            "sku" => run.key.sku.clone(),
            "terminals" => run.key.terminals,
            "run_index" => run.key.run_index,
            "data_group" => run.key.data_group,
        },
        "resources" => obj! {
            "data" => matrix_to_json(&run.resources.data),
            "sample_interval_secs" => run.resources.sample_interval_secs,
        },
        "plans" => obj! {
            "data" => matrix_to_json(&run.plans.data),
            "query_names" => run.plans.query_names.clone(),
        },
        "throughput" => run.throughput,
        "latency_ms" => run.latency_ms,
        "per_query_latency_ms" => run.per_query_latency_ms.clone(),
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn num_field(v: &Json, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' must be a number"))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| format!("field '{key}' must be a non-negative integer"))
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' must be a string"))?
        .to_string())
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field '{key}' must be an array"))
}

fn f64_array(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    arr_field(v, key)?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("field '{key}' must contain numbers"))
        })
        .collect()
}

fn string_array(v: &Json, key: &str) -> Result<Vec<String>, String> {
    arr_field(v, key)?
        .iter()
        .map(|x| {
            x.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field '{key}' must contain strings"))
        })
        .collect()
}

fn matrix_from_json(v: &Json) -> Result<Matrix, String> {
    Matrix::try_from_vec(
        usize_field(v, "rows")?,
        usize_field(v, "cols")?,
        f64_array(v, "data")?,
    )
}

/// Parses one run from its [`Json`] interchange form (inverse of
/// [`run_to_json`]).
pub fn run_from_json(v: &Json) -> Result<ExperimentRun, String> {
    let key = field(v, "key")?;
    let resources = field(v, "resources")?;
    let plans = field(v, "plans")?;
    Ok(ExperimentRun {
        key: RunKey {
            workload: str_field(key, "workload")?,
            sku: str_field(key, "sku")?,
            terminals: usize_field(key, "terminals")?,
            run_index: usize_field(key, "run_index")?,
            data_group: usize_field(key, "data_group")?,
        },
        resources: ResourceSeries {
            data: matrix_from_json(field(resources, "data")?)?,
            sample_interval_secs: num_field(resources, "sample_interval_secs")?,
        },
        plans: PlanStats {
            data: matrix_from_json(field(plans, "data")?)?,
            query_names: string_array(plans, "query_names")?,
        },
        throughput: num_field(v, "throughput")?,
        latency_ms: num_field(v, "latency_ms")?,
        per_query_latency_ms: f64_array(v, "per_query_latency_ms")?,
    })
}

/// Parses a resource-utilization CSV into a [`ResourceSeries`].
///
/// Expected layout: a header row naming the resource features (any order,
/// Table 2 names), then one row per sample. Additional columns are
/// ignored; all seven resource features must be present. Example:
///
/// ```csv
/// CPU_UTILIZATION,CPU_EFFECTIVE,MEM_UTILIZATION,IOPS_TOTAL,READ_WRITE_RATIO,LOCK_REQ_ABS,LOCK_WAIT_ABS
/// 0.52,0.47,0.61,1520,1.4,3300,120
/// ```
pub fn resource_series_from_csv(
    csv: &str,
    sample_interval_secs: f64,
) -> Result<ResourceSeries, String> {
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty CSV")?;
    let columns: Vec<&str> = header.split(',').map(str::trim).collect();

    // map each catalog feature to its CSV column
    let mut positions = Vec::with_capacity(ResourceFeature::ALL.len());
    for f in ResourceFeature::ALL {
        let pos = columns
            .iter()
            .position(|c| *c == f.name())
            .ok_or_else(|| format!("missing column '{}'", f.name()))?;
        positions.push(pos);
    }

    let mut rows = Vec::new();
    for (line_no, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        let mut row = Vec::with_capacity(positions.len());
        for (&pos, f) in positions.iter().zip(ResourceFeature::ALL.iter()) {
            let cell = cells
                .get(pos)
                .ok_or_else(|| format!("line {}: too few cells for '{}'", line_no + 2, f.name()))?;
            let v: f64 = cell.parse().map_err(|_| {
                format!(
                    "line {}: cannot parse '{}' for '{}'",
                    line_no + 2,
                    cell,
                    f.name()
                )
            })?;
            row.push(v);
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("CSV has a header but no samples".into());
    }
    Ok(ResourceSeries::new(
        Matrix::from_rows(&rows),
        sample_interval_secs,
    ))
}

/// Renders a resource series back to the CSV layout accepted by
/// [`resource_series_from_csv`].
pub fn resource_series_to_csv(series: &ResourceSeries) -> String {
    let mut out = String::new();
    let names: Vec<&str> = ResourceFeature::ALL.iter().map(|f| f.name()).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for r in 0..series.len() {
        let row: Vec<String> = series.data.row(r).iter().map(|v| v.to_string()).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{PlanStats, RunKey};

    fn sample_run() -> ExperimentRun {
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..7).map(|c| (i * 7 + c) as f64 * 0.5).collect())
            .collect();
        ExperimentRun {
            key: RunKey {
                workload: "TPC-C".into(),
                sku: "cpu8".into(),
                terminals: 8,
                run_index: 1,
                data_group: 1,
            },
            resources: ResourceSeries::new(Matrix::from_rows(&rows), 10.0),
            plans: PlanStats::new(
                Matrix::from_rows(&[vec![1.5; 22], vec![2.5; 22]]),
                vec!["NewOrder".into(), "Payment".into()],
            ),
            throughput: 812.5,
            latency_ms: 9.8,
            per_query_latency_ms: vec![11.0, 7.0],
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let runs = vec![sample_run(), sample_run()];
        let json = runs_to_json(&runs);
        let back = runs_from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].key, runs[0].key);
        assert_eq!(back[0].resources, runs[0].resources);
        assert_eq!(back[0].plans, runs[0].plans);
        assert_eq!(back[0].throughput, runs[0].throughput);
        assert_eq!(back[0].per_query_latency_ms, runs[0].per_query_latency_ms);
    }

    #[test]
    fn corrupt_json_is_an_error() {
        assert!(runs_from_json("not json").is_err());
        // valid JSON with a broken matrix invariant must also fail
        let bad = r#"[{"key":{"workload":"w","sku":"s","terminals":1,"run_index":0,
            "data_group":0},
            "resources":{"data":{"rows":2,"cols":7,"data":[1.0]},
                         "sample_interval_secs":10.0},
            "plans":{"data":{"rows":0,"cols":22,"data":[]},"query_names":[]},
            "throughput":1.0,"latency_ms":1.0,"per_query_latency_ms":[]}]"#;
        let err = runs_from_json(bad).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn csv_roundtrip() {
        let series = sample_run().resources;
        let csv = resource_series_to_csv(&series);
        let back = resource_series_from_csv(&csv, 10.0).unwrap();
        assert_eq!(back, series);
    }

    #[test]
    fn csv_accepts_permuted_and_extra_columns() {
        let csv = "timestamp,LOCK_WAIT_ABS,LOCK_REQ_ABS,READ_WRITE_RATIO,IOPS_TOTAL,\
                   MEM_UTILIZATION,CPU_EFFECTIVE,CPU_UTILIZATION\n\
                   0,6,5,4,3,2,1,0.5\n\
                   10,60,50,40,30,20,10,5\n";
        let series = resource_series_from_csv(csv, 10.0).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(
            series.feature(ResourceFeature::CpuUtilization),
            vec![0.5, 5.0]
        );
        assert_eq!(
            series.feature(ResourceFeature::LockWaitAbs),
            vec![6.0, 60.0]
        );
    }

    #[test]
    fn csv_missing_column_is_an_error() {
        let csv = "CPU_UTILIZATION\n0.5\n";
        let err = resource_series_from_csv(csv, 10.0).unwrap_err();
        assert!(err.contains("missing column"), "{err}");
    }

    #[test]
    fn csv_bad_cell_reports_location() {
        let csv = "CPU_UTILIZATION,CPU_EFFECTIVE,MEM_UTILIZATION,IOPS_TOTAL,\
                   READ_WRITE_RATIO,LOCK_REQ_ABS,LOCK_WAIT_ABS\n\
                   0.5,abc,0.6,100,1,2,3\n";
        let err = resource_series_from_csv(csv, 10.0).unwrap_err();
        assert!(
            err.contains("line 2") && err.contains("CPU_EFFECTIVE"),
            "{err}"
        );
    }

    #[test]
    fn empty_csv_rejected() {
        assert!(resource_series_from_csv("", 10.0).is_err());
        assert!(resource_series_from_csv(
            "CPU_UTILIZATION,CPU_EFFECTIVE,MEM_UTILIZATION,IOPS_TOTAL,READ_WRITE_RATIO,LOCK_REQ_ABS,LOCK_WAIT_ABS\n",
            10.0
        )
        .is_err());
    }
}

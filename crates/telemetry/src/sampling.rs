//! Sub-experiment sampling.
//!
//! §2.1: "we use systematic sampling to generate ten sub-experiments from
//! one single experiment". §6.2 additionally uses "random sampling without
//! replacement to down-sample a time-series to ten smaller-sized series"
//! as data augmentation. Both samplers operate on sample-index lists so
//! they can be applied to [`crate::ResourceSeries`] via
//! [`crate::ResourceSeries::select_samples`].

use crate::run::ResourceSeries;

/// Systematic sampling: splits `n` samples into `k` interleaved
/// sub-experiments; sub-experiment `i` takes samples `i, i+k, i+2k, …`.
///
/// Returns `k` index lists. Sub-experiments differ in length by at most
/// one when `k ∤ n`.
pub fn systematic_indices(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one sub-experiment");
    let mut subs = vec![Vec::with_capacity(n / k + 1); k];
    for i in 0..n {
        subs[i % k].push(i);
    }
    subs
}

/// Applies [`systematic_indices`] to a resource series, producing `k`
/// sub-series.
pub fn systematic_subsample(series: &ResourceSeries, k: usize) -> Vec<ResourceSeries> {
    systematic_indices(series.len(), k)
        .iter()
        .map(|idx| series.select_samples(idx))
        .collect()
}

/// Random sampling **without replacement**: draws `m` of `n` indices using
/// a seeded xorshift generator, returned in ascending order so temporal
/// structure is preserved.
///
/// # Panics
///
/// Panics if `m > n`.
pub fn random_indices_without_replacement(n: usize, m: usize, seed: u64) -> Vec<usize> {
    assert!(m <= n, "cannot draw {m} samples from {n}");
    // Partial Fisher-Yates on a scratch index vector.
    let mut rng = wp_linalg::Rng64::new(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..m {
        let j = i + rng.below(n - i);
        idx.swap(i, j);
    }
    let mut out = idx[..m].to_vec();
    out.sort_unstable();
    out
}

/// Down-samples a resource series to `k` random sub-series of `m` samples
/// each (the paper's data-augmentation recipe: 10 smaller series per run).
pub fn random_downsample(
    series: &ResourceSeries,
    k: usize,
    m: usize,
    seed: u64,
) -> Vec<ResourceSeries> {
    (0..k)
        .map(|i| {
            let idx =
                random_indices_without_replacement(series.len(), m, seed.wrapping_add(i as u64));
            series.select_samples(&idx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_linalg::Matrix;

    fn series(n: usize) -> ResourceSeries {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64; 7]).collect();
        ResourceSeries::new(Matrix::from_rows(&rows), 10.0)
    }

    #[test]
    fn systematic_partitions_everything() {
        let subs = systematic_indices(25, 10);
        assert_eq!(subs.len(), 10);
        let total: usize = subs.iter().map(Vec::len).sum();
        assert_eq!(total, 25);
        // first 5 subs get 3 samples, the rest 2
        assert_eq!(subs[0], vec![0, 10, 20]);
        assert_eq!(subs[9], vec![9, 19]);
    }

    #[test]
    fn systematic_subsample_on_series() {
        let s = series(20);
        let subs = systematic_subsample(&s, 10);
        assert_eq!(subs.len(), 10);
        assert!(subs.iter().all(|ss| ss.len() == 2));
        assert_eq!(subs[3].data[(0, 0)], 3.0);
        assert_eq!(subs[3].data[(1, 0)], 13.0);
    }

    #[test]
    fn random_indices_are_sorted_unique_and_in_range() {
        let idx = random_indices_without_replacement(100, 30, 42);
        assert_eq!(idx.len(), 30);
        for w in idx.windows(2) {
            assert!(w[0] < w[1], "not strictly increasing: {idx:?}");
        }
        assert!(*idx.last().unwrap() < 100);
    }

    #[test]
    fn random_indices_deterministic_per_seed() {
        let a = random_indices_without_replacement(50, 10, 7);
        let b = random_indices_without_replacement(50, 10, 7);
        assert_eq!(a, b);
        let c = random_indices_without_replacement(50, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_downsample_produces_k_series_of_m() {
        let s = series(60);
        let subs = random_downsample(&s, 10, 20, 1);
        assert_eq!(subs.len(), 10);
        assert!(subs.iter().all(|ss| ss.len() == 20));
        // different draws differ
        assert_ne!(subs[0].data, subs[1].data);
    }

    #[test]
    fn full_draw_is_identity() {
        let idx = random_indices_without_replacement(10, 10, 3);
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn oversampling_rejected() {
        let _ = random_indices_without_replacement(5, 6, 0);
    }
}

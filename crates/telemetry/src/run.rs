//! Telemetry containers: resource time-series, per-query plan statistics,
//! and the [`ExperimentRun`] record that ties one benchmark execution on
//! one hardware configuration together.

use wp_linalg::Matrix;

use crate::features::{PlanFeature, ResourceFeature};

/// A multivariate resource-utilization time-series: one row per sample
/// (every ten seconds in the paper's setup), one column per
/// [`ResourceFeature`] in catalog order.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSeries {
    /// `samples × 7` observation matrix.
    pub data: Matrix,
    /// Seconds between consecutive samples.
    pub sample_interval_secs: f64,
}

impl ResourceSeries {
    /// Wraps a sample matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not have exactly one column per resource
    /// feature.
    pub fn new(data: Matrix, sample_interval_secs: f64) -> Self {
        assert_eq!(
            data.cols(),
            ResourceFeature::ALL.len(),
            "resource series must have {} columns",
            ResourceFeature::ALL.len()
        );
        assert!(sample_interval_secs > 0.0, "interval must be positive");
        Self {
            data,
            sample_interval_secs,
        }
    }

    /// Number of time samples.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// The univariate series of one feature.
    pub fn feature(&self, f: ResourceFeature) -> Vec<f64> {
        self.data.col(f.index())
    }

    /// Wall-clock duration covered by the series.
    pub fn duration_secs(&self) -> f64 {
        self.len() as f64 * self.sample_interval_secs
    }

    /// Keeps only the samples at the given indices (in the given order).
    pub fn select_samples(&self, idx: &[usize]) -> ResourceSeries {
        ResourceSeries {
            data: self.data.select_rows(idx),
            sample_interval_secs: self.sample_interval_secs,
        }
    }
}

/// Per-query plan statistics: one row per query (transaction type), one
/// column per [`PlanFeature`] in catalog order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// `queries × 22` statistics matrix.
    pub data: Matrix,
    /// Name of the query / transaction type behind each row.
    pub query_names: Vec<String>,
}

impl PlanStats {
    /// Wraps a statistics matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between the matrix, the feature catalog,
    /// and the query-name list.
    pub fn new(data: Matrix, query_names: Vec<String>) -> Self {
        assert_eq!(
            data.cols(),
            PlanFeature::ALL.len(),
            "plan stats must have {} columns",
            PlanFeature::ALL.len()
        );
        assert_eq!(
            data.rows(),
            query_names.len(),
            "one query name per row required"
        );
        Self { data, query_names }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// True when the workload exposed no queries.
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// All observed values of one plan feature (one per query).
    pub fn feature(&self, f: PlanFeature) -> Vec<f64> {
        self.data.col(f.index())
    }

    /// The statistics row for a named query, if present.
    pub fn query(&self, name: &str) -> Option<&[f64]> {
        self.query_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.data.row(i))
    }
}

/// Identity of one experiment execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Benchmark name (e.g. `"TPC-C"`).
    pub workload: String,
    /// Hardware configuration label (e.g. `"cpu16"`).
    pub sku: String,
    /// Concurrent terminals driving the workload.
    pub terminals: usize,
    /// Repetition index (the paper executes each configuration 3×).
    pub run_index: usize,
    /// Time-of-day data group (`0..3` in §6.2).
    pub data_group: usize,
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{}x{} run{} grp{}",
            self.workload, self.sku, self.terminals, self.run_index, self.data_group
        )
    }
}

/// One complete experiment record: identity, both telemetry families, and
/// the measured performance numbers the prediction stage targets.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Which workload/SKU/repetition this is.
    pub key: RunKey,
    /// Resource-utilization time-series.
    pub resources: ResourceSeries,
    /// Per-query plan statistics.
    pub plans: PlanStats,
    /// Measured throughput in requests/second.
    pub throughput: f64,
    /// Measured mean latency in milliseconds.
    pub latency_ms: f64,
    /// Mean latency per transaction type, parallel to `plans.query_names`.
    pub per_query_latency_ms: Vec<f64>,
}

impl ExperimentRun {
    /// Mean value of every resource feature over the whole run, in catalog
    /// order — a cheap summary used by a few diagnostics.
    pub fn resource_means(&self) -> Vec<f64> {
        (0..self.resources.data.cols())
            .map(|c| wp_linalg::stats::mean(&self.resources.data.col(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> ResourceSeries {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..7).map(|c| (i * 7 + c) as f64).collect())
            .collect();
        ResourceSeries::new(Matrix::from_rows(&rows), 10.0)
    }

    #[test]
    fn resource_series_accessors() {
        let s = series(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.duration_secs(), 50.0);
        let cpu = s.feature(ResourceFeature::CpuUtilization);
        assert_eq!(cpu, vec![0.0, 7.0, 14.0, 21.0, 28.0]);
    }

    #[test]
    fn select_samples_subsets() {
        let s = series(6);
        let sub = s.select_samples(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(
            sub.feature(ResourceFeature::CpuUtilization),
            vec![0.0, 14.0, 28.0]
        );
    }

    #[test]
    #[should_panic(expected = "resource series must have 7 columns")]
    fn wrong_column_count_rejected() {
        let _ = ResourceSeries::new(Matrix::zeros(3, 5), 10.0);
    }

    #[test]
    fn plan_stats_lookup_by_query_name() {
        let data = Matrix::from_rows(&[vec![1.0; 22], vec![2.0; 22]]);
        let p = PlanStats::new(data, vec!["NewOrder".into(), "Payment".into()]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.query("Payment").unwrap()[0], 2.0);
        assert!(p.query("Missing").is_none());
        assert_eq!(p.feature(PlanFeature::StatementEstRows), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "one query name per row")]
    fn plan_stats_name_mismatch_rejected() {
        let _ = PlanStats::new(Matrix::zeros(2, 22), vec!["only-one".into()]);
    }

    #[test]
    fn run_key_display() {
        let k = RunKey {
            workload: "TPC-C".into(),
            sku: "cpu8".into(),
            terminals: 4,
            run_index: 1,
            data_group: 2,
        };
        assert_eq!(k.to_string(), "TPC-C@cpu8x4 run1 grp2");
    }

    #[test]
    fn resource_means_summary() {
        let run = ExperimentRun {
            key: RunKey {
                workload: "w".into(),
                sku: "s".into(),
                terminals: 1,
                run_index: 0,
                data_group: 0,
            },
            resources: series(3),
            plans: PlanStats::new(Matrix::zeros(1, 22), vec!["q".into()]),
            throughput: 100.0,
            latency_ms: 5.0,
            per_query_latency_ms: vec![5.0],
        };
        let means = run.resource_means();
        assert_eq!(means.len(), 7);
        assert_eq!(means[0], 7.0); // mean of 0, 7, 14
    }
}

//! The 29-feature catalog of Table 2.
//!
//! Feature identity is load-bearing across the whole pipeline: feature
//! selection ranks these identifiers, similarity computation selects
//! matrix columns by them, and the experiment harness prints their Table 2
//! names. Both enums are exhaustive and carry a stable column index.

/// Resource-utilization features (left column of Table 2), sampled as a
/// time-series every ten seconds during workload execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceFeature {
    /// Fraction of provisioned CPU in use.
    CpuUtilization,
    /// Effective CPU after hypervisor steal / throttling.
    CpuEffective,
    /// Fraction of provisioned memory in use.
    MemUtilization,
    /// Total I/O operations per second.
    IopsTotal,
    /// Ratio of read I/O to write I/O.
    ReadWriteRatio,
    /// Absolute number of lock requests in the sample window.
    LockReqAbs,
    /// Absolute lock wait time in the sample window.
    LockWaitAbs,
}

impl ResourceFeature {
    /// All resource features in Table 2 order.
    pub const ALL: [ResourceFeature; 7] = [
        ResourceFeature::CpuUtilization,
        ResourceFeature::CpuEffective,
        ResourceFeature::MemUtilization,
        ResourceFeature::IopsTotal,
        ResourceFeature::ReadWriteRatio,
        ResourceFeature::LockReqAbs,
        ResourceFeature::LockWaitAbs,
    ];

    /// Column index within a [`crate::ResourceSeries`] matrix.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|f| *f == self).unwrap()
    }

    /// The paper's Table 2 name.
    pub fn name(self) -> &'static str {
        match self {
            ResourceFeature::CpuUtilization => "CPU_UTILIZATION",
            ResourceFeature::CpuEffective => "CPU_EFFECTIVE",
            ResourceFeature::MemUtilization => "MEM_UTILIZATION",
            ResourceFeature::IopsTotal => "IOPS_TOTAL",
            ResourceFeature::ReadWriteRatio => "READ_WRITE_RATIO",
            ResourceFeature::LockReqAbs => "LOCK_REQ_ABS",
            ResourceFeature::LockWaitAbs => "LOCK_WAIT_ABS",
        }
    }
}

/// Query-plan statistics (right column of Table 2), captured per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlanFeature {
    /// Optimizer's estimated output rows for the statement.
    StatementEstRows,
    /// Optimizer cost of the statement sub-tree.
    StatementSubTreeCost,
    /// CPU consumed compiling the plan.
    CompileCpu,
    /// Cardinality of the largest referenced table.
    TableCardinality,
    /// Memory desired for a serial plan.
    SerialDesiredMemory,
    /// Memory required for a serial plan.
    SerialRequiredMemory,
    /// Peak memory during compilation.
    MaxCompileMemory,
    /// Estimated rebinds of the plan operators.
    EstimateRebinds,
    /// Estimated rewinds of the plan operators.
    EstimateRewinds,
    /// Estimated pages served from the buffer pool.
    EstimatedPagesCached,
    /// Degree of parallelism the optimizer expects to be available.
    EstimatedAvailableDegreeOfParallelism,
    /// Memory grant the optimizer expects to be available.
    EstimatedAvailableMemoryGrant,
    /// Size of the cached plan.
    CachedPlanSize,
    /// Average returned row size.
    AvgRowSize,
    /// Memory consumed compiling the plan.
    CompileMemory,
    /// Estimated rows of the root operator.
    EstimateRows,
    /// Estimated I/O cost.
    EstimateIo,
    /// Time consumed compiling the plan.
    CompileTime,
    /// Memory actually granted at execution.
    GrantedMemory,
    /// Estimated CPU cost.
    EstimateCpu,
    /// Peak memory used at execution.
    MaxUsedMemory,
    /// Estimated rows read (scanned) by the plan.
    EstimatedRowsRead,
}

impl PlanFeature {
    /// All plan features in Table 2 order.
    pub const ALL: [PlanFeature; 22] = [
        PlanFeature::StatementEstRows,
        PlanFeature::StatementSubTreeCost,
        PlanFeature::CompileCpu,
        PlanFeature::TableCardinality,
        PlanFeature::SerialDesiredMemory,
        PlanFeature::SerialRequiredMemory,
        PlanFeature::MaxCompileMemory,
        PlanFeature::EstimateRebinds,
        PlanFeature::EstimateRewinds,
        PlanFeature::EstimatedPagesCached,
        PlanFeature::EstimatedAvailableDegreeOfParallelism,
        PlanFeature::EstimatedAvailableMemoryGrant,
        PlanFeature::CachedPlanSize,
        PlanFeature::AvgRowSize,
        PlanFeature::CompileMemory,
        PlanFeature::EstimateRows,
        PlanFeature::EstimateIo,
        PlanFeature::CompileTime,
        PlanFeature::GrantedMemory,
        PlanFeature::EstimateCpu,
        PlanFeature::MaxUsedMemory,
        PlanFeature::EstimatedRowsRead,
    ];

    /// Column index within a [`crate::PlanStats`] matrix.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|f| *f == self).unwrap()
    }

    /// The paper's Table 2 name.
    pub fn name(self) -> &'static str {
        match self {
            PlanFeature::StatementEstRows => "StatementEstRows",
            PlanFeature::StatementSubTreeCost => "StatementSubTreeCost",
            PlanFeature::CompileCpu => "CompileCPU",
            PlanFeature::TableCardinality => "TableCardinality",
            PlanFeature::SerialDesiredMemory => "SerialDesiredMemory",
            PlanFeature::SerialRequiredMemory => "SerialRequiredMemory",
            PlanFeature::MaxCompileMemory => "MaxCompileMemory",
            PlanFeature::EstimateRebinds => "EstimateRebinds",
            PlanFeature::EstimateRewinds => "EstimateRewinds",
            PlanFeature::EstimatedPagesCached => "EstimatedPagesCached",
            PlanFeature::EstimatedAvailableDegreeOfParallelism => {
                "EstimatedAvailableDegreeOfParallelism"
            }
            PlanFeature::EstimatedAvailableMemoryGrant => "EstimatedAvailableMemoryGrant",
            PlanFeature::CachedPlanSize => "CachedPlanSize",
            PlanFeature::AvgRowSize => "AvgRowSize",
            PlanFeature::CompileMemory => "CompileMemory",
            PlanFeature::EstimateRows => "EstimateRows",
            PlanFeature::EstimateIo => "EstimateIO",
            PlanFeature::CompileTime => "CompileTime",
            PlanFeature::GrantedMemory => "GrantedMemory",
            PlanFeature::EstimateCpu => "EstimateCPU",
            PlanFeature::MaxUsedMemory => "MaxUsedMemory",
            PlanFeature::EstimatedRowsRead => "EstimatedRowsRead",
        }
    }
}

/// Total number of features in the catalog (7 resource + 22 plan).
pub const N_FEATURES: usize = ResourceFeature::ALL.len() + PlanFeature::ALL.len();

/// A unified feature identifier spanning both families.
///
/// The *global index* places resource features at `0..7` and plan features
/// at `7..29`; the feature-selection matrices use this ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureId {
    /// A resource-utilization feature.
    Resource(ResourceFeature),
    /// A query-plan statistic.
    Plan(PlanFeature),
}

impl FeatureId {
    /// All 29 features: resource features first, plan features after.
    pub fn all() -> Vec<FeatureId> {
        ResourceFeature::ALL
            .iter()
            .map(|&f| FeatureId::Resource(f))
            .chain(PlanFeature::ALL.iter().map(|&f| FeatureId::Plan(f)))
            .collect()
    }

    /// Global column index in `0..N_FEATURES`.
    pub fn global_index(self) -> usize {
        match self {
            FeatureId::Resource(f) => f.index(),
            FeatureId::Plan(f) => ResourceFeature::ALL.len() + f.index(),
        }
    }

    /// Inverse of [`FeatureId::global_index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N_FEATURES`.
    pub fn from_global_index(idx: usize) -> FeatureId {
        if idx < ResourceFeature::ALL.len() {
            FeatureId::Resource(ResourceFeature::ALL[idx])
        } else {
            FeatureId::Plan(PlanFeature::ALL[idx - ResourceFeature::ALL.len()])
        }
    }

    /// The paper's Table 2 name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureId::Resource(f) => f.name(),
            FeatureId::Plan(f) => f.name(),
        }
    }

    /// True for resource-utilization features.
    pub fn is_resource(self) -> bool {
        matches!(self, FeatureId::Resource(_))
    }

    /// True for query-plan features.
    pub fn is_plan(self) -> bool {
        matches!(self, FeatureId::Plan(_))
    }

    /// Looks a feature up by its Table 2 name.
    pub fn by_name(name: &str) -> Option<FeatureId> {
        FeatureId::all().into_iter().find(|f| f.name() == name)
    }
}

/// Which family of features an analysis draws from (§5.2.2 compares
/// plan-only, resource-only, and combined feature sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// Query-plan statistics only.
    PlanOnly,
    /// Resource-utilization features only.
    ResourceOnly,
    /// All 29 features.
    Combined,
}

impl FeatureSet {
    /// The feature identifiers contained in this set, in global order.
    pub fn features(self) -> Vec<FeatureId> {
        match self {
            FeatureSet::PlanOnly => PlanFeature::ALL
                .iter()
                .map(|&f| FeatureId::Plan(f))
                .collect(),
            FeatureSet::ResourceOnly => ResourceFeature::ALL
                .iter()
                .map(|&f| FeatureId::Resource(f))
                .collect(),
            FeatureSet::Combined => FeatureId::all(),
        }
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(self) -> &'static str {
        match self {
            FeatureSet::PlanOnly => "Plan",
            FeatureSet::ResourceOnly => "Resource",
            FeatureSet::Combined => "Combined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_29_features() {
        assert_eq!(N_FEATURES, 29);
        assert_eq!(FeatureId::all().len(), 29);
        assert_eq!(ResourceFeature::ALL.len(), 7);
        assert_eq!(PlanFeature::ALL.len(), 22);
    }

    #[test]
    fn global_index_roundtrip() {
        for (i, f) in FeatureId::all().into_iter().enumerate() {
            assert_eq!(f.global_index(), i);
            assert_eq!(FeatureId::from_global_index(i), f);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = FeatureId::all().iter().map(|f| f.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn by_name_finds_table2_names() {
        assert_eq!(
            FeatureId::by_name("AvgRowSize"),
            Some(FeatureId::Plan(PlanFeature::AvgRowSize))
        );
        assert_eq!(
            FeatureId::by_name("LOCK_WAIT_ABS"),
            Some(FeatureId::Resource(ResourceFeature::LockWaitAbs))
        );
        assert_eq!(FeatureId::by_name("NoSuchFeature"), None);
    }

    #[test]
    fn feature_sets_partition() {
        let plan = FeatureSet::PlanOnly.features();
        let res = FeatureSet::ResourceOnly.features();
        let all = FeatureSet::Combined.features();
        assert_eq!(plan.len() + res.len(), all.len());
        assert!(plan.iter().all(|f| f.is_plan()));
        assert!(res.iter().all(|f| f.is_resource()));
    }

    #[test]
    fn resource_indices_match_all_order() {
        for (i, f) in ResourceFeature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        for (i, f) in PlanFeature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }
}

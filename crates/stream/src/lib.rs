//! Streaming telemetry ingest: the live, time-evolving corpus.
//!
//! The offline pipeline assumes a corpus that is loaded once and never
//! changes; production workloads drift. This crate turns the static
//! [`CorpusIndex`] into a mutable one fed by batched telemetry:
//!
//! * **Per-tenant sliding windows** — ingested runs accumulate per
//!   tenant; once a tenant has [`StreamConfig::min_runs`] runs it
//!   materializes as a live reference named `live:<tenant>` next to the
//!   startup corpus, and older runs are evicted past
//!   [`StreamConfig::window`].
//! * **Incremental corpus evolution** — the fingerprinter is fitted
//!   (ranges frozen) over the startup corpus and shared as an
//!   `Arc<dyn Fingerprinter>`, so new runs are appended via
//!   [`CorpusIndex::insert_reference`] without touching existing
//!   fingerprints; an eviction invalidates indexed runs and triggers a
//!   full rebuild under the *same* frozen fingerprinter
//!   ([`CorpusIndex::from_reference_runs_with_fingerprinter`]). Either path yields an index that answers `rank_references`
//!   byte-identically to a from-scratch rebuild over the same windows.
//! * **Drift detection** — each accepted batch fingerprints the tenant's
//!   window and compares it against the trailing history of window
//!   fingerprints: the distance to the history mean, relative to the
//!   history's own spread, crossing a seeded per-tenant threshold is a
//!   drift event. Phase structure is tracked with the online BCPD
//!   detector over the window's CPU series.
//! * **Generations** — every accepted batch bumps a generation counter;
//!   the server keys its response caches on it, so a cached answer can
//!   never outlive the corpus it was computed against.
//!
//! Everything is deterministic: the same seeded ingest stream produces a
//! byte-identical corpus, index, and drift-event log run-over-run and
//! across `WP_THREADS` settings.

use std::collections::BTreeMap;
use std::sync::Arc;

use wp_core::offline::OfflineCorpus;
use wp_core::pipeline::PipelineConfig;
use wp_core::retrieval::CorpusIndex;
use wp_index::IndexConfig;
use wp_json::{obj, Json};
use wp_linalg::{Matrix, Rng64};
use wp_obs::{LazyCounter, LazyGauge, LazySpan};
use wp_similarity::bcpd::{detect_changepoints, BcpdConfig};
use wp_similarity::repr::extract;
use wp_similarity::Fingerprinter;
use wp_telemetry::{ExperimentRun, FeatureId, PlanFeature, ResourceFeature};

static OBS_INGEST_SPAN: LazySpan = LazySpan::new("wp_stream_ingest");
static OBS_BATCHES: LazyCounter = LazyCounter::new("wp_stream_ingest_batches_total");
static OBS_RUNS: LazyCounter = LazyCounter::new("wp_stream_ingest_runs_total");
static OBS_REJECTED: LazyCounter = LazyCounter::new("wp_stream_rejected_batches_total");
static OBS_EVICTED: LazyCounter = LazyCounter::new("wp_stream_evicted_runs_total");
static OBS_REBUILDS: LazyCounter = LazyCounter::new("wp_stream_rebuilds_total");
static OBS_DRIFT: LazyCounter = LazyCounter::new("wp_stream_drift_events_total");
static OBS_PHASE_SHIFTS: LazyCounter = LazyCounter::new("wp_stream_phase_shifts_total");
static OBS_GENERATION: LazyGauge = LazyGauge::new("wp_stream_generation");
static OBS_TENANTS: LazyGauge = LazyGauge::new("wp_stream_tenants");
static OBS_LIVE_REFS: LazyGauge = LazyGauge::new("wp_stream_live_references");
static OBS_INDEXED_RUNS: LazyGauge = LazyGauge::new("wp_stream_indexed_runs");
static OBS_DRIFT_RATIO: LazyGauge = LazyGauge::new("wp_stream_drift_ratio_micros");

/// Streaming ingest configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Sliding-window capacity in runs per tenant; older runs are evicted.
    pub window: usize,
    /// Runs a tenant needs before it materializes as a live reference.
    pub min_runs: usize,
    /// Trailing window-fingerprint history length for drift detection.
    pub history: usize,
    /// History entries required before drift can fire (≥ 2: the spread of
    /// a single entry is zero, which would make the ratio meaningless).
    pub warmup: usize,
    /// Base drift threshold on the distance-to-spread ratio; each tenant
    /// draws its own threshold in `[0.9, 1.1] ×` this from the seed.
    pub drift_threshold: f64,
    /// Seed for the per-tenant threshold draws.
    pub seed: u64,
    /// Hard cap on concurrently tracked tenants.
    pub max_tenants: usize,
    /// Hard cap on runs per ingest batch.
    pub max_batch_runs: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            window: 6,
            min_runs: 2,
            history: 4,
            warmup: 2,
            drift_threshold: 4.0,
            seed: 0xEDB7_2025,
            max_tenants: 32,
            max_batch_runs: 16,
        }
    }
}

/// One detected drift event, in detection order.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// Monotone event ordinal (0-based, across all tenants).
    pub ordinal: u64,
    /// Tenant whose window drifted.
    pub tenant: String,
    /// 1-based accepted-batch ordinal at which the drift fired.
    pub batch: u64,
    /// Raw measure distance of the window fingerprint to the history mean.
    pub distance: f64,
    /// `distance` relative to the history's own spread.
    pub ratio: f64,
    /// The seeded per-tenant threshold the ratio crossed.
    pub threshold: f64,
    /// BCPD phase count of the window before this batch.
    pub phases_before: usize,
    /// BCPD phase count of the window after this batch.
    pub phases_after: usize,
}

impl DriftEvent {
    /// Interchange form, embedded in `GET /drift` responses.
    pub fn to_json(&self) -> Json {
        obj! {
            "ordinal" => self.ordinal,
            "tenant" => self.tenant.clone(),
            "batch" => self.batch,
            "distance" => self.distance,
            "ratio" => self.ratio,
            "threshold" => self.threshold,
            "phases_before" => self.phases_before,
            "phases_after" => self.phases_after,
        }
    }
}

/// What one accepted ingest batch did to the corpus.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Runs accepted into the tenant's window.
    pub accepted_runs: usize,
    /// Runs evicted from the window by this batch.
    pub evicted_runs: usize,
    /// True when this batch fired a drift event.
    pub drifted: bool,
    /// Window-to-history distance (0 while the history is warming up).
    pub distance: f64,
    /// Distance relative to the history spread (0 during warmup).
    pub ratio: f64,
    /// The tenant's seeded drift threshold.
    pub threshold: f64,
    /// Corpus generation after this batch.
    pub generation: u64,
    /// Live (streamed) references currently in the corpus.
    pub live_references: usize,
    /// Total runs in the index after this batch.
    pub indexed_runs: usize,
    /// BCPD phase count of the tenant's window after this batch.
    pub phases: usize,
    /// True when an eviction forced a full index rebuild.
    pub rebuilt: bool,
}

impl IngestOutcome {
    /// Interchange form, returned by `POST /ingest`.
    pub fn to_json(&self) -> Json {
        obj! {
            "accepted_runs" => self.accepted_runs,
            "evicted_runs" => self.evicted_runs,
            "drifted" => self.drifted,
            "distance" => self.distance,
            "ratio" => self.ratio,
            "threshold" => self.threshold,
            "generation" => self.generation,
            "live_references" => self.live_references,
            "indexed_runs" => self.indexed_runs,
            "phases" => self.phases,
            "rebuilt" => self.rebuilt,
        }
    }
}

/// Monotone ingest counters, mirrored on the wp-obs registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounters {
    /// Accepted ingest batches.
    pub ingested_batches: u64,
    /// Accepted runs.
    pub ingested_runs: u64,
    /// Batches rejected by validation.
    pub rejected_batches: u64,
    /// Runs evicted from sliding windows.
    pub evicted_runs: u64,
    /// Full index rebuilds forced by evictions.
    pub rebuilds: u64,
    /// Drift events fired.
    pub drift_events: u64,
    /// Batches that changed a tenant's BCPD phase count.
    pub phase_shifts: u64,
}

/// One tenant's sliding window and drift state.
#[derive(Debug)]
struct TenantWindow {
    runs: Vec<ExperimentRun>,
    /// Trailing window fingerprints, oldest first.
    history: Vec<Matrix>,
    /// Seeded per-tenant drift threshold.
    threshold: f64,
    /// BCPD phase count over the window's CPU series after the last batch.
    phases: usize,
    /// True once the tenant materialized as a live reference.
    live: bool,
}

/// The evolving corpus: startup references plus live per-tenant windows,
/// all indexed under a fingerprinter frozen at construction.
pub struct StreamEngine {
    config: StreamConfig,
    pipeline: PipelineConfig,
    index_config: IndexConfig,
    index: CorpusIndex,
    /// The startup references, kept for eviction-triggered rebuilds.
    base_refs: Vec<(String, Vec<ExperimentRun>)>,
    features: Vec<FeatureId>,
    /// The fitted fingerprinter shared with the index — frozen corpus
    /// state (e.g. histogram ranges) every rebuild reuses.
    fingerprinter: Arc<dyn Fingerprinter>,
    tenants: BTreeMap<String, TenantWindow>,
    /// Tenants in the order they went live — the reference order every
    /// rebuild reproduces, so incremental and rebuilt indexes agree.
    live_order: Vec<String>,
    generation: u64,
    events: Vec<DriftEvent>,
    counters: StreamCounters,
}

/// FNV-1a over the tenant name: folds the tenant identity into the
/// threshold seed without any platform-dependent hashing.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn live_name(tenant: &str) -> String {
    format!("live:{tenant}")
}

/// Reference list for a rebuild: startup references first, then live
/// tenants in the order they went live.
fn live_refs<'a>(
    base: &'a [(String, Vec<ExperimentRun>)],
    tenants: &'a BTreeMap<String, TenantWindow>,
    live_order: &'a [String],
) -> Vec<(String, &'a [ExperimentRun])> {
    let mut refs: Vec<(String, &[ExperimentRun])> = base
        .iter()
        .map(|(n, r)| (n.clone(), r.as_slice()))
        .collect();
    for t in live_order {
        refs.push((live_name(t), tenants[t].runs.as_slice()));
    }
    refs
}

/// Element-wise mean of equally-shaped matrices.
fn mean_matrix(ms: &[Matrix]) -> Matrix {
    let mut acc = Matrix::zeros(ms[0].rows(), ms[0].cols());
    for m in ms {
        for (a, v) in acc.as_mut_slice().iter_mut().zip(m.as_slice()) {
            *a += v;
        }
    }
    let n = ms.len() as f64;
    for a in acc.as_mut_slice() {
        *a /= n;
    }
    acc
}

/// Fingerprint of a whole window: the mean of its runs' fingerprints
/// under the frozen fingerprinter.
fn window_fingerprint(
    runs: &[ExperimentRun],
    features: &[FeatureId],
    fingerprinter: &dyn Fingerprinter,
) -> Matrix {
    let fps: Vec<Matrix> = runs
        .iter()
        .map(|r| fingerprinter.fingerprint(&extract(r, features)))
        .collect();
    mean_matrix(&fps)
}

/// BCPD phase count over the window's concatenated CPU-utilization series.
fn window_phases(runs: &[ExperimentRun]) -> usize {
    let mut series = Vec::new();
    for run in runs {
        series.extend(run.resources.feature(ResourceFeature::CpuUtilization));
    }
    detect_changepoints(&series, &BcpdConfig::default()).len()
}

fn valid_tenant_name(t: &str) -> bool {
    !t.is_empty()
        && t.len() <= 64
        && t.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Validates one ingested run. Everything a hostile or truncated payload
/// could smuggle past `run_from_json` (which checks shape, not content)
/// is rejected here, *before* any engine state changes.
fn validate_run(i: usize, run: &ExperimentRun) -> Result<(), String> {
    let r = &run.resources;
    if r.data.rows() == 0 {
        return Err(format!("run {i}: empty resource series"));
    }
    if r.data.cols() != wp_telemetry::ResourceFeature::ALL.len() {
        return Err(format!(
            "run {i}: resource series must have {} columns, got {}",
            wp_telemetry::ResourceFeature::ALL.len(),
            r.data.cols()
        ));
    }
    if !r.data.as_slice().iter().all(|x| x.is_finite()) {
        return Err(format!("run {i}: non-finite resource sample"));
    }
    if !r.sample_interval_secs.is_finite() || r.sample_interval_secs <= 0.0 {
        return Err(format!(
            "run {i}: sample interval must be finite and positive"
        ));
    }
    let p = &run.plans;
    if p.data.rows() == 0 {
        return Err(format!("run {i}: empty plan statistics"));
    }
    if p.data.cols() != PlanFeature::ALL.len() {
        return Err(format!(
            "run {i}: plan statistics must have {} columns, got {}",
            PlanFeature::ALL.len(),
            p.data.cols()
        ));
    }
    if !p.data.as_slice().iter().all(|x| x.is_finite()) {
        return Err(format!("run {i}: non-finite plan statistic"));
    }
    if p.query_names.len() != p.data.rows() {
        return Err(format!("run {i}: one query name per plan row required"));
    }
    if !run.throughput.is_finite() || !run.latency_ms.is_finite() {
        return Err(format!("run {i}: non-finite throughput or latency"));
    }
    if !run.per_query_latency_ms.iter().all(|x| x.is_finite()) {
        return Err(format!("run {i}: non-finite per-query latency"));
    }
    Ok(())
}

impl StreamEngine {
    /// Builds the engine over the startup corpus, freezing histogram
    /// ranges over it. `features` is the startup feature selection; the
    /// pipeline's measure and bin count drive fingerprints exactly as in
    /// the static serving path.
    pub fn new(
        corpus: &OfflineCorpus,
        features: &[FeatureId],
        pipeline: &PipelineConfig,
        index_config: IndexConfig,
        config: StreamConfig,
    ) -> Result<Self, String> {
        if config.window == 0 || config.min_runs == 0 || config.min_runs > config.window {
            return Err("stream config: need 0 < min_runs <= window".to_string());
        }
        if config.warmup < 2 || config.history < config.warmup {
            return Err("stream config: need 2 <= warmup <= history".to_string());
        }
        if config.max_batch_runs == 0 || config.max_tenants == 0 {
            return Err("stream config: need positive batch and tenant caps".to_string());
        }
        let index = CorpusIndex::build(corpus, features, pipeline, index_config)?;
        let base_refs = corpus
            .references
            .iter()
            .map(|r| (r.name.clone(), r.runs_from.clone()))
            .collect();
        let fingerprinter = index.fingerprinter();
        let engine = Self {
            config,
            pipeline: pipeline.clone(),
            index_config,
            index,
            base_refs,
            features: features.to_vec(),
            fingerprinter,
            tenants: BTreeMap::new(),
            live_order: Vec::new(),
            generation: 0,
            events: Vec::new(),
            counters: StreamCounters::default(),
        };
        engine.publish_gauges();
        Ok(engine)
    }

    /// Ingests one batch of runs for `tenant`. Validation is all-or-
    /// nothing: any invalid run rejects the whole batch with `Err` and
    /// leaves the engine untouched — no window, index, generation, or
    /// event-log change. An accepted batch always bumps the generation.
    pub fn ingest(
        &mut self,
        tenant: &str,
        runs: Vec<ExperimentRun>,
    ) -> Result<IngestOutcome, String> {
        let _span = OBS_INGEST_SPAN.start();
        if let Err(e) = self.validate_batch(tenant, &runs) {
            self.counters.rejected_batches += 1;
            OBS_REJECTED.add(1);
            return Err(e);
        }

        self.counters.ingested_batches += 1;
        self.counters.ingested_runs += runs.len() as u64;
        OBS_BATCHES.add(1);
        OBS_RUNS.add(runs.len() as u64);
        let batch = self.counters.ingested_batches;
        let accepted = runs.len();

        // Clone the frozen per-corpus state up front so the window can be
        // borrowed mutably while fingerprinting below.
        let features = self.features.clone();
        let fingerprinter = Arc::clone(&self.fingerprinter);
        let measure = self.pipeline.measure;
        let (window_cap, min_runs, history_cap, warmup) = (
            self.config.window,
            self.config.min_runs,
            self.config.history,
            self.config.warmup,
        );
        let threshold_seed = self.config.seed ^ fnv1a(tenant);
        let base_threshold = self.config.drift_threshold;

        let window = self.tenants.entry(tenant.to_string()).or_insert_with(|| {
            let mut rng = Rng64::new(threshold_seed);
            TenantWindow {
                runs: Vec::new(),
                history: Vec::new(),
                threshold: base_threshold * (0.9 + 0.2 * rng.unit()),
                phases: 0,
                live: false,
            }
        });

        // Slide the window.
        let evicted = (window.runs.len() + accepted).saturating_sub(window_cap);
        window.runs.extend(runs);
        if evicted > 0 {
            window.runs.drain(..evicted);
        }
        self.counters.evicted_runs += evicted as u64;
        OBS_EVICTED.add(evicted as u64);

        // Drift: window fingerprint vs its trailing history.
        let fp = window_fingerprint(&window.runs, &features, fingerprinter.as_ref());
        let (mut distance, mut ratio, mut drifted) = (0.0, 0.0, false);
        if window.history.len() >= warmup {
            let baseline = mean_matrix(&window.history);
            distance = measure.apply(&fp, &baseline);
            let spread = window
                .history
                .iter()
                .map(|h| measure.apply(h, &baseline))
                .sum::<f64>()
                / window.history.len() as f64;
            ratio = distance / (spread + 1e-12);
            drifted = ratio > window.threshold;
        }
        let phases_before = window.phases;
        let phases_after = window_phases(&window.runs);
        if phases_before != 0 && phases_after != phases_before {
            self.counters.phase_shifts += 1;
            OBS_PHASE_SHIFTS.add(1);
        }
        window.phases = phases_after;
        let threshold = window.threshold;
        if drifted {
            // Re-baseline: the shifted shape becomes the new normal.
            window.history.clear();
        }
        window.history.push(fp);
        if window.history.len() > history_cap {
            window.history.drain(..window.history.len() - history_cap);
        }

        // Corpus evolution.
        let became_live = !window.live && window.runs.len() >= min_runs;
        if became_live {
            window.live = true;
            self.live_order.push(tenant.to_string());
        }
        let live = window.live;
        let window_len = window.runs.len();
        let rebuilt = live && evicted > 0;
        if rebuilt {
            // An eviction invalidated indexed runs: rebuild everything
            // under the same frozen fingerprinter.
            let refs = live_refs(&self.base_refs, &self.tenants, &self.live_order);
            self.index = CorpusIndex::from_reference_runs_with_fingerprinter(
                &refs,
                &features,
                Arc::clone(&fingerprinter),
                &self.pipeline,
                self.index_config,
            )?;
            self.counters.rebuilds += 1;
            OBS_REBUILDS.add(1);
        } else if live {
            // Pure growth: append the new runs (all window runs when the
            // tenant just went live, otherwise only this batch's tail).
            let new_runs = if became_live { window_len } else { accepted };
            let name = live_name(tenant);
            let tail = &self.tenants[tenant].runs[window_len - new_runs..];
            self.index.insert_reference(&name, tail)?;
        }

        self.generation += 1;
        if drifted {
            let event = DriftEvent {
                ordinal: self.events.len() as u64,
                tenant: tenant.to_string(),
                batch,
                distance,
                ratio,
                threshold,
                phases_before,
                phases_after,
            };
            self.events.push(event);
            self.counters.drift_events += 1;
            OBS_DRIFT.add(1);
            OBS_DRIFT_RATIO.set((ratio * 1e6) as u64);
        }
        self.publish_gauges();

        Ok(IngestOutcome {
            accepted_runs: accepted,
            evicted_runs: evicted,
            drifted,
            distance,
            ratio,
            threshold,
            generation: self.generation,
            live_references: self.live_order.len(),
            indexed_runs: self.index.len(),
            phases: phases_after,
            rebuilt,
        })
    }

    fn validate_batch(&self, tenant: &str, runs: &[ExperimentRun]) -> Result<(), String> {
        if !valid_tenant_name(tenant) {
            return Err("tenant must be 1..=64 chars of [A-Za-z0-9._-]".to_string());
        }
        if runs.is_empty() {
            return Err("batch has no runs".to_string());
        }
        if runs.len() > self.config.max_batch_runs {
            return Err(format!(
                "batch has {} runs, cap is {}",
                runs.len(),
                self.config.max_batch_runs
            ));
        }
        if !self.tenants.contains_key(tenant) && self.tenants.len() >= self.config.max_tenants {
            return Err(format!("tenant cap reached ({})", self.config.max_tenants));
        }
        for (i, run) in runs.iter().enumerate() {
            validate_run(i, run)?;
        }
        Ok(())
    }

    fn publish_gauges(&self) {
        OBS_GENERATION.set(self.generation);
        OBS_TENANTS.set(self.tenants.len() as u64);
        OBS_LIVE_REFS.set(self.live_order.len() as u64);
        OBS_INDEXED_RUNS.set(self.index.len() as u64);
    }

    /// The evolving index — the same object `rank_references` queries go
    /// through on the static path.
    pub fn index(&self) -> &CorpusIndex {
        &self.index
    }

    /// Corpus generation: bumped on every accepted batch. Cache keys
    /// derived from request bytes must include it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drift events in detection order.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// Monotone ingest counters.
    pub fn counters(&self) -> StreamCounters {
        self.counters
    }

    /// Number of tracked tenants (live or still warming up).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The current sliding-window runs of one tracked tenant (live or
    /// still warming up), oldest first. `None` for unknown tenants.
    /// This is the observed telemetry `/recommend` consults when a
    /// request names a streaming tenant instead of inlining runs.
    pub fn tenant_runs(&self, tenant: &str) -> Option<&[ExperimentRun]> {
        self.tenants.get(tenant).map(|w| w.runs.as_slice())
    }

    /// A from-scratch rebuild over the startup references plus the
    /// current live windows, under the same frozen fingerprinter — what
    /// the incremental index must stay byte-equivalent to.
    pub fn rebuilt_index(&self) -> Result<CorpusIndex, String> {
        let refs = live_refs(&self.base_refs, &self.tenants, &self.live_order);
        CorpusIndex::from_reference_runs_with_fingerprinter(
            &refs,
            &self.features,
            Arc::clone(&self.fingerprinter),
            &self.pipeline,
            self.index_config,
        )
    }

    /// The drift-event log as JSON — the `GET /drift` body.
    pub fn events_json(&self) -> Json {
        obj! {
            "generation" => self.generation,
            "events" => Json::Arr(self.events.iter().map(DriftEvent::to_json).collect()),
        }
    }

    /// Ingest counters and corpus state as JSON — the `/stats` section.
    pub fn stats_json(&self) -> Json {
        obj! {
            "generation" => self.generation,
            "tenants" => self.tenants.len(),
            "live_references" => self.live_order.len(),
            "indexed_runs" => self.index.len(),
            "ingested_batches" => self.counters.ingested_batches,
            "ingested_runs" => self.counters.ingested_runs,
            "rejected_batches" => self.counters.rejected_batches,
            "evicted_runs" => self.counters.evicted_runs,
            "rebuilds" => self.counters.rebuilds,
            "drift_events" => self.counters.drift_events,
            "phase_shifts" => self.counters.phase_shifts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_core::offline::OfflineReference;
    use wp_workloads::benchmarks;
    use wp_workloads::engine::Simulator;
    use wp_workloads::sku::Sku;

    fn sim() -> Simulator {
        let mut sim = Simulator::new(0xEDB7_2025);
        sim.config.samples = 40;
        sim
    }

    fn runs(sim: &Simulator, name: &str, first_run: usize, n: usize) -> Vec<ExperimentRun> {
        let spec = match name {
            "TPC-C" => benchmarks::tpcc(),
            "TPC-H" => benchmarks::tpch(),
            "Twitter" => benchmarks::twitter(),
            _ => benchmarks::ycsb(),
        };
        let terminals = if name == "TPC-H" { 1 } else { 8 };
        let sku = Sku::new("cpu2", 2, 64.0);
        (first_run..first_run + n)
            .map(|r| sim.simulate(&spec, &sku, terminals, r, r % 3))
            .collect()
    }

    fn corpus(sim: &Simulator) -> OfflineCorpus {
        OfflineCorpus {
            references: ["TPC-C", "TPC-H", "Twitter"]
                .iter()
                .map(|n| {
                    let r = runs(sim, n, 0, 3);
                    OfflineReference {
                        name: n.to_string(),
                        runs_from: r.clone(),
                        runs_to: r,
                    }
                })
                .collect(),
        }
    }

    fn config() -> PipelineConfig {
        // Feature selection never runs in the engine (features are passed
        // in); only measure and nbins matter here.
        PipelineConfig::default()
    }

    fn engine(stream: StreamConfig) -> StreamEngine {
        let sim = sim();
        StreamEngine::new(
            &corpus(&sim),
            &FeatureId::all(),
            &config(),
            IndexConfig::default(),
            stream,
        )
        .unwrap()
    }

    #[test]
    fn stationary_stream_fires_no_drift() {
        let sim = sim();
        let mut eng = engine(StreamConfig::default());
        for batch in 0..10 {
            let out = eng
                .ingest("tenant-a", runs(&sim, "TPC-C", 10 + batch * 2, 2))
                .unwrap();
            assert!(!out.drifted, "batch {batch}: {out:?}");
        }
        assert!(eng.events().is_empty());
        assert_eq!(eng.counters().drift_events, 0);
        assert_eq!(eng.generation(), 10);
    }

    #[test]
    fn shape_shift_fires_drift_deterministically() {
        let run_one = || {
            let sim = sim();
            let mut eng = engine(StreamConfig::default());
            for batch in 0..6 {
                eng.ingest("tenant-a", runs(&sim, "TPC-C", 10 + batch * 2, 2))
                    .unwrap();
            }
            // The tenant's workload changes shape.
            for batch in 0..4 {
                eng.ingest("tenant-a", runs(&sim, "TPC-H", 10 + batch * 2, 2))
                    .unwrap();
            }
            eng
        };
        let a = run_one();
        let b = run_one();
        assert!(
            !a.events().is_empty(),
            "shape shift must fire drift: {:?}",
            a.events()
        );
        assert_eq!(a.events(), b.events(), "drift log must be deterministic");
        assert_eq!(a.events_json().pretty(), b.events_json().pretty());
    }

    #[test]
    fn incremental_index_matches_rebuild_after_evictions() {
        let sim = sim();
        let mut eng = engine(StreamConfig::default());
        // Enough batches to overflow the 6-run window repeatedly, plus a
        // second tenant so rebuild ordering matters.
        for batch in 0..8 {
            eng.ingest("tenant-a", runs(&sim, "TPC-C", 10 + batch * 2, 2))
                .unwrap();
            eng.ingest("tenant-b", runs(&sim, "Twitter", 20 + batch * 2, 2))
                .unwrap();
        }
        assert!(eng.counters().rebuilds > 0, "{:?}", eng.counters());
        assert!(eng.counters().evicted_runs > 0);

        let rebuilt = eng.rebuilt_index().unwrap();
        assert_eq!(eng.index().len(), rebuilt.len());
        assert_eq!(eng.index().reference_names(), rebuilt.reference_names());
        let target = runs(&sim, "YCSB", 0, 2);
        for k in [1, 3, 7] {
            let a = eng.index().rank_references(&target, k).unwrap();
            let b = rebuilt.rank_references(&target, k).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.workload, y.workload);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
    }

    #[test]
    fn live_tenant_is_retrievable() {
        let sim = sim();
        let mut eng = engine(StreamConfig::default());
        for batch in 0..3 {
            eng.ingest("ycsb-live", runs(&sim, "YCSB", batch * 2, 2))
                .unwrap();
        }
        let verdicts = eng
            .index()
            .rank_references(&runs(&sim, "YCSB", 30, 2), 3)
            .unwrap();
        assert_eq!(verdicts[0].workload, "live:ycsb-live", "{verdicts:?}");
    }

    #[test]
    fn invalid_batches_mutate_nothing() {
        let sim = sim();
        let mut eng = engine(StreamConfig::default());
        eng.ingest("tenant-a", runs(&sim, "TPC-C", 10, 2)).unwrap();
        let gen_before = eng.generation();
        let len_before = eng.index().len();

        // Bad tenant names.
        for t in ["", "has space", "x".repeat(65).as_str(), "semi;colon"] {
            assert!(eng.ingest(t, runs(&sim, "TPC-C", 0, 1)).is_err(), "{t:?}");
        }
        // Empty and oversized batches.
        assert!(eng.ingest("tenant-a", Vec::new()).is_err());
        assert!(eng.ingest("tenant-a", runs(&sim, "TPC-C", 0, 17)).is_err());
        // A batch with one poisoned run rejects wholesale.
        let mut bad = runs(&sim, "TPC-C", 0, 3);
        bad[1].throughput = f64::NAN;
        assert!(eng.ingest("tenant-a", bad).is_err());
        let mut bad = runs(&sim, "TPC-C", 0, 2);
        bad[0].resources.data.as_mut_slice()[0] = f64::INFINITY;
        assert!(eng.ingest("tenant-a", bad).is_err());
        let mut bad = runs(&sim, "TPC-C", 0, 2);
        bad[1].resources.sample_interval_secs = -1.0;
        assert!(eng.ingest("tenant-a", bad).is_err());

        assert_eq!(eng.generation(), gen_before, "no partial mutation");
        assert_eq!(eng.index().len(), len_before);
        assert_eq!(eng.tenant_count(), 1);
        assert_eq!(eng.counters().rejected_batches, 9);
    }

    #[test]
    fn tenant_cap_is_enforced() {
        let sim = sim();
        let mut eng = engine(StreamConfig {
            max_tenants: 2,
            ..StreamConfig::default()
        });
        eng.ingest("t1", runs(&sim, "TPC-C", 0, 1)).unwrap();
        eng.ingest("t2", runs(&sim, "TPC-C", 2, 1)).unwrap();
        let err = eng.ingest("t3", runs(&sim, "TPC-C", 4, 1)).unwrap_err();
        assert!(err.contains("tenant cap"), "{err}");
        // Known tenants keep streaming under the cap.
        eng.ingest("t1", runs(&sim, "TPC-C", 6, 1)).unwrap();
    }

    #[test]
    fn degenerate_configs_rejected() {
        let sim = sim();
        let c = corpus(&sim);
        for bad in [
            StreamConfig {
                window: 0,
                ..StreamConfig::default()
            },
            StreamConfig {
                min_runs: 9,
                window: 6,
                ..StreamConfig::default()
            },
            StreamConfig {
                warmup: 1,
                ..StreamConfig::default()
            },
            StreamConfig {
                history: 1,
                warmup: 2,
                ..StreamConfig::default()
            },
            StreamConfig {
                max_batch_runs: 0,
                ..StreamConfig::default()
            },
        ] {
            assert!(StreamEngine::new(
                &c,
                &FeatureId::all(),
                &config(),
                IndexConfig::default(),
                bad
            )
            .is_err());
        }
    }
}

//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use wp_linalg::{cholesky_solve, lstsq, Matrix};

/// Strategy: a random matrix with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0..100.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix(4, 6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(m in matrix(5, 3)) {
        let g = m.gram();
        for i in 0..3 {
            prop_assert!(g[(i, i)] >= -1e-9, "diagonal must be non-negative");
            for j in 0..3 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let lhs = a.add(&b).frobenius_norm();
        let rhs = a.frobenius_norm() + b.frobenius_norm();
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn cholesky_solve_recovers_solution(
        b in matrix(4, 3),
        x in proptest::collection::vec(-10.0..10.0f64, 3),
    ) {
        // A = BᵀB + I is always SPD
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let rhs = a.matvec(&x);
        let solved = cholesky_solve(&a, &rhs).unwrap();
        for (s, t) in solved.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-6, "{s} vs {t}");
        }
    }

    #[test]
    fn lstsq_residual_not_worse_than_zero_vector(
        x in matrix(8, 3),
        y in proptest::collection::vec(-10.0..10.0f64, 8),
    ) {
        let beta = lstsq(&x, &y, 1e-9);
        let pred = x.matvec(&beta);
        let rss: f64 = y.iter().zip(&pred).map(|(a, b)| (a - b) * (a - b)).sum();
        let tss: f64 = y.iter().map(|a| a * a).sum();
        // least squares can never beat... worse than predicting zero
        prop_assert!(rss <= tss + 1e-6, "rss {rss} > tss {tss}");
    }

    #[test]
    fn minmax_scaler_output_in_unit_interval(m in matrix(6, 4)) {
        let (_, t) = wp_linalg::MinMaxScaler::fit_transform(&m);
        for v in t.as_slice() {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn standard_scaler_centers_columns(m in matrix(10, 3)) {
        let (_, t) = wp_linalg::StandardScaler::fit_transform(&m);
        for j in 0..3 {
            let mean = wp_linalg::stats::mean(&t.col(j));
            prop_assert!(mean.abs() < 1e-8, "column {j} mean {mean}");
        }
    }

    #[test]
    fn histogram_cumulative_is_monotone(
        values in proptest::collection::vec(-50.0..50.0f64, 1..60),
        nbins in 1usize..20,
    ) {
        let c = wp_linalg::cumulative_histogram(&values, nbins);
        prop_assert_eq!(c.len(), nbins);
        for w in c.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        prop_assert!((c[nbins - 1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_between_min_and_max(
        values in proptest::collection::vec(-50.0..50.0f64, 1..40),
        q in 0.0..1.0f64,
    ) {
        let v = wp_linalg::quantile(&values, q);
        prop_assert!(v >= wp_linalg::min(&values) - 1e-12);
        prop_assert!(v <= wp_linalg::max(&values) + 1e-12);
    }

    #[test]
    fn pearson_bounded(
        a in proptest::collection::vec(-50.0..50.0f64, 5..30),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = wp_linalg::pearson(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&r));
    }
}

//! Randomized property tests for the linear-algebra substrate.
//!
//! Seeded [`Rng64`] case loops stand in for an external property-testing
//! framework: each test draws `CASES` random instances from a fixed seed,
//! so failures are reproducible and the suite needs no registry crates.

use wp_linalg::{cholesky_solve, lstsq, Matrix, Rng64};

const CASES: usize = 64;

fn matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.range(-100.0, 100.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

fn vector(rng: &mut Rng64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.range(lo, hi)).collect()
}

#[test]
fn transpose_is_involution() {
    let mut rng = Rng64::new(0x11);
    for _ in 0..CASES {
        let m = matrix(&mut rng, 4, 6);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut rng = Rng64::new(0x12);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 3, 4);
        let b = matrix(&mut rng, 4, 2);
        let c = matrix(&mut rng, 4, 2);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }
}

#[test]
fn gram_is_symmetric_psd_diagonal() {
    let mut rng = Rng64::new(0x13);
    for _ in 0..CASES {
        let g = matrix(&mut rng, 5, 3).gram();
        for i in 0..3 {
            assert!(g[(i, i)] >= -1e-9, "diagonal must be non-negative");
            for j in 0..3 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn frobenius_triangle_inequality() {
    let mut rng = Rng64::new(0x14);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 3, 3);
        let b = matrix(&mut rng, 3, 3);
        let lhs = a.add(&b).frobenius_norm();
        let rhs = a.frobenius_norm() + b.frobenius_norm();
        assert!(lhs <= rhs + 1e-9);
    }
}

#[test]
fn cholesky_solve_recovers_solution() {
    let mut rng = Rng64::new(0x15);
    for _ in 0..CASES {
        let b = matrix(&mut rng, 4, 3);
        let x = vector(&mut rng, 3, -10.0, 10.0);
        // A = BᵀB + I is always SPD
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let rhs = a.matvec(&x);
        let solved = cholesky_solve(&a, &rhs).unwrap();
        for (s, t) in solved.iter().zip(&x) {
            assert!((s - t).abs() < 1e-6, "{s} vs {t}");
        }
    }
}

#[test]
fn lstsq_residual_not_worse_than_zero_vector() {
    let mut rng = Rng64::new(0x16);
    for _ in 0..CASES {
        let x = matrix(&mut rng, 8, 3);
        let y = vector(&mut rng, 8, -10.0, 10.0);
        let beta = lstsq(&x, &y, 1e-9);
        let pred = x.matvec(&beta);
        let rss: f64 = y.iter().zip(&pred).map(|(a, b)| (a - b) * (a - b)).sum();
        let tss: f64 = y.iter().map(|a| a * a).sum();
        // least squares can never be worse than predicting zero
        assert!(rss <= tss + 1e-6, "rss {rss} > tss {tss}");
    }
}

#[test]
fn minmax_scaler_output_in_unit_interval() {
    let mut rng = Rng64::new(0x17);
    for _ in 0..CASES {
        let m = matrix(&mut rng, 6, 4);
        let (_, t) = wp_linalg::MinMaxScaler::fit_transform(&m);
        for v in t.as_slice() {
            assert!((0.0..=1.0).contains(v));
        }
    }
}

#[test]
fn standard_scaler_centers_columns() {
    let mut rng = Rng64::new(0x18);
    for _ in 0..CASES {
        let m = matrix(&mut rng, 10, 3);
        let (_, t) = wp_linalg::StandardScaler::fit_transform(&m);
        for j in 0..3 {
            let mean = wp_linalg::stats::mean(&t.col(j));
            assert!(mean.abs() < 1e-8, "column {j} mean {mean}");
        }
    }
}

#[test]
fn histogram_cumulative_is_monotone() {
    let mut rng = Rng64::new(0x19);
    for _ in 0..CASES {
        let len = 1 + rng.below(59);
        let values = vector(&mut rng, len, -50.0, 50.0);
        let nbins = 1 + rng.below(19);
        let c = wp_linalg::cumulative_histogram(&values, nbins);
        assert_eq!(c.len(), nbins);
        for w in c.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((c[nbins - 1] - 1.0).abs() < 1e-9);
    }
}

#[test]
fn quantile_between_min_and_max() {
    let mut rng = Rng64::new(0x1A);
    for _ in 0..CASES {
        let len = 1 + rng.below(39);
        let values = vector(&mut rng, len, -50.0, 50.0);
        let q = rng.unit();
        let v = wp_linalg::quantile(&values, q);
        assert!(v >= wp_linalg::min(&values) - 1e-12);
        assert!(v <= wp_linalg::max(&values) + 1e-12);
    }
}

#[test]
fn pearson_bounded() {
    let mut rng = Rng64::new(0x1B);
    for _ in 0..CASES {
        let len = 5 + rng.below(25);
        let a = vector(&mut rng, len, -50.0, 50.0);
        let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = wp_linalg::pearson(&a, &b);
        assert!((-1.0..=1.0).contains(&r));
    }
}

#[test]
fn nearest_rank_returns_an_observed_sample() {
    let mut rng = Rng64::new(0x1C);
    for _ in 0..CASES {
        let len = 1 + rng.below(200);
        let mut sorted: Vec<u64> = (0..len).map(|_| rng.below(10_000) as u64).collect();
        sorted.sort_unstable();
        let p = rng.unit() * 100.0;
        let v = wp_linalg::stats::nearest_rank(&sorted, p);
        // Never an interpolation: the convention shared by the server's
        // /stats endpoint and the load generator's report promises every
        // reported percentile is a sample that actually happened.
        assert!(sorted.contains(&v), "{v} not in {sorted:?} (p={p})");
    }
}

#[test]
fn nearest_rank_is_monotone_in_p() {
    let mut rng = Rng64::new(0x1D);
    for _ in 0..CASES {
        let len = 1 + rng.below(100);
        let mut sorted: Vec<u64> = (0..len).map(|_| rng.below(1_000) as u64).collect();
        sorted.sort_unstable();
        let mut a = rng.unit() * 100.0;
        let mut b = rng.unit() * 100.0;
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let lo = wp_linalg::stats::nearest_rank(&sorted, a);
        let hi = wp_linalg::stats::nearest_rank(&sorted, b);
        assert!(lo <= hi, "p{a} gave {lo} > p{b} gave {hi} over {sorted:?}");
    }
}

#[test]
fn nearest_rank_edge_cases() {
    let mut rng = Rng64::new(0x1E);
    // empty: the documented zero sentinel, at every percentile
    for p in [0.0, 50.0, 100.0] {
        assert_eq!(wp_linalg::stats::nearest_rank(&[], p), 0);
    }
    for _ in 0..CASES {
        let x = rng.below(10_000) as u64;
        let p = rng.unit() * 100.0;
        // single element: every percentile is that element
        assert_eq!(wp_linalg::stats::nearest_rank(&[x], p), x);
        // all-equal: ties collapse to the common value
        let ties = vec![x; 1 + rng.below(50)];
        assert_eq!(wp_linalg::stats::nearest_rank(&ties, p), x);
    }
    // p=0 is the minimum (rank clamps to 1), p=100 the maximum
    for _ in 0..CASES {
        let len = 1 + rng.below(50);
        let mut sorted: Vec<u64> = (0..len).map(|_| rng.below(1_000) as u64).collect();
        sorted.sort_unstable();
        assert_eq!(wp_linalg::stats::nearest_rank(&sorted, 0.0), sorted[0]);
        assert_eq!(
            wp_linalg::stats::nearest_rank(&sorted, 100.0),
            *sorted.last().unwrap()
        );
    }
}

#[test]
fn try_from_vec_validates_length() {
    let ok = Matrix::try_from_vec(2, 3, vec![0.0; 6]);
    assert!(ok.is_ok());
    let err = Matrix::try_from_vec(2, 3, vec![0.0; 5]).unwrap_err();
    assert!(err.contains("does not match"), "{err}");
}

//! Linear system solvers: Cholesky for SPD systems, Householder QR for
//! general least squares, and a ridge-stabilized `lstsq` convenience used
//! throughout `wp-ml`.

use crate::matrix::Matrix;

/// Error raised when a Cholesky factorization encounters a non-positive
/// pivot, i.e. the input was not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CholeskyError {
    /// Index of the failing pivot.
    pub pivot: usize,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (non-positive pivot at {})",
            self.pivot
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// `a` must be square and symmetric positive definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky requires a square matrix");
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(CholeskyError { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive definite `A` via Cholesky.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
    let l = cholesky(a)?;
    let n = a.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    // forward solve L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // back solve Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(x)
}

/// Solves the least-squares problem `min ‖X β − y‖₂` via Householder QR.
///
/// Works for any `rows ≥ cols` full-column-rank `X`. Rank deficiency
/// surfaces as a tiny diagonal in `R`; callers that cannot guarantee full
/// rank should prefer [`lstsq`], which adds a small ridge.
pub fn qr_solve(x: &Matrix, y: &[f64]) -> Vec<f64> {
    let m = x.rows();
    let n = x.cols();
    assert!(m >= n, "qr_solve needs rows >= cols ({m} < {n})");
    assert_eq!(y.len(), m, "rhs length mismatch");

    // Householder QR applied simultaneously to X (stored in r) and y (in qty)
    let mut r = x.clone();
    let mut qty = y.to_vec();
    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut alpha = 0.0;
        for i in k..m {
            alpha += r[(i, k)] * r[(i, k)];
        }
        let mut alpha = alpha.sqrt();
        if alpha == 0.0 {
            continue; // column already zero below the diagonal
        }
        if r[(k, k)] > 0.0 {
            alpha = -alpha;
        }
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in k + 1..m {
            v[i - k] = r[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|a| a * a).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀ v) to the trailing columns of r.
        for j in k..n {
            let mut s = 0.0;
            for i in k..m {
                s += v[i - k] * r[(i, j)];
            }
            let f = 2.0 * s / vnorm2;
            for i in k..m {
                r[(i, j)] -= f * v[i - k];
            }
        }
        // ... and to the rhs.
        let mut s = 0.0;
        for i in k..m {
            s += v[i - k] * qty[i];
        }
        let f = 2.0 * s / vnorm2;
        for i in k..m {
            qty[i] -= f * v[i - k];
        }
    }

    // Back substitution on the upper-triangular R.
    let mut beta = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = qty[i];
        for j in i + 1..n {
            sum -= r[(i, j)] * beta[j];
        }
        let d = r[(i, i)];
        beta[i] = if d.abs() < 1e-12 { 0.0 } else { sum / d };
    }
    beta
}

/// Least squares with a tiny ridge for numerical robustness.
///
/// Solves `(XᵀX + λI) β = Xᵀ y` with `λ = ridge`. With `ridge = 0` this
/// falls back to QR. This is the default solver for the regression models:
/// collinear telemetry features (e.g. `CPU_UTILIZATION` vs
/// `CPU_EFFECTIVE`) frequently make the plain normal equations singular.
pub fn lstsq(x: &Matrix, y: &[f64], ridge: f64) -> Vec<f64> {
    assert_eq!(x.rows(), y.len(), "lstsq dimension mismatch");
    if ridge == 0.0 && x.rows() >= x.cols() {
        return qr_solve(x, y);
    }
    let mut g = x.gram();
    for i in 0..g.rows() {
        g[(i, i)] += ridge;
    }
    let rhs = x.t_matvec(y);
    match cholesky_solve(&g, &rhs) {
        Ok(beta) => beta,
        Err(_) => {
            // escalate the ridge until the system becomes SPD
            let mut lambda = ridge.max(1e-8);
            for _ in 0..12 {
                lambda *= 10.0;
                let mut g2 = x.gram();
                for i in 0..g2.rows() {
                    g2[(i, i)] += lambda;
                }
                if let Ok(beta) = cholesky_solve(&g2, &rhs) {
                    return beta;
                }
            }
            vec![0.0; x.cols()]
        }
    }
}

/// Inverts a symmetric positive definite matrix via Cholesky.
pub fn spd_inverse(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let n = a.rows();
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = cholesky_solve(a, &e)?;
        inv.set_col(j, &col);
    }
    Ok(inv)
}

/// Solves a general square system `A x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` when `A` is numerically singular.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lu_solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut m = a.clone();
    let mut x = b.to_vec();
    for k in 0..n {
        // partial pivot
        let mut p = k;
        for i in k + 1..n {
            if m[(i, k)].abs() > m[(p, k)].abs() {
                p = i;
            }
        }
        if m[(p, k)].abs() < 1e-14 {
            return None;
        }
        if p != k {
            for j in 0..n {
                let t = m[(k, j)];
                m[(k, j)] = m[(p, j)];
                m[(p, j)] = t;
            }
            x.swap(k, p);
        }
        for i in k + 1..n {
            let f = m[(i, k)] / m[(k, k)];
            if f == 0.0 {
                continue;
            }
            for j in k..n {
                let v = m[(k, j)];
                m[(i, j)] -= f * v;
            }
            x[i] -= f * x[k];
        }
    }
    for i in (0..n).rev() {
        let mut sum = x[i];
        for j in i + 1..n {
            sum -= m[(i, j)] * x[j];
        }
        x[i] = sum / m[(i, i)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // A = Bᵀ B + I is SPD for any B
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut g = b.gram();
        g[(0, 0)] += 1.0;
        g[(1, 1)] += 1.0;
        g
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd();
        let l = cholesky(&a).unwrap();
        let rec = l.matmul(&l.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = spd();
        let x_true = vec![2.0, -1.0];
        let b = a.matvec(&x_true);
        let x = cholesky_solve(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn qr_solves_exact_system() {
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]]);
        let y = vec![6.0, 8.0, 10.0]; // y = 4 + 2 t
        let beta = qr_solve(&x, &y);
        assert!((beta[0] - 4.0).abs() < 1e-10, "{beta:?}");
        assert!((beta[1] - 2.0).abs() < 1e-10, "{beta:?}");
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ]);
        let y = vec![1.0, 2.0, 2.0, 4.0];
        let beta = qr_solve(&x, &y);
        let pred = x.matvec(&beta);
        let resid: Vec<f64> = y.iter().zip(&pred).map(|(a, b)| a - b).collect();
        // residual must be orthogonal to the column space
        let xt_r = x.t_matvec(&resid);
        assert!(xt_r.iter().all(|v| v.abs() < 1e-9), "{xt_r:?}");
    }

    #[test]
    fn lstsq_handles_collinear_columns() {
        // second column is an exact copy of the first
        let x = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
        ]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let beta = lstsq(&x, &y, 1e-6);
        let pred = x.matvec(&beta);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3, "{beta:?} -> {pred:?}");
        }
    }

    #[test]
    fn spd_inverse_times_original_is_identity() {
        let a = spd();
        let inv = spd_inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lu_solve_general_system() {
        let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![1.0, 1.0]]); // needs pivoting
        let x = lu_solve(&a, &[4.0, 3.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_solve_singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(lu_solve(&a, &[1.0, 2.0]).is_none());
    }
}

//! Row-major dense matrix.
//!
//! [`Matrix`] is the workhorse container of the workspace: telemetry
//! matrices (samples × features), design matrices for the regressors, and
//! fingerprint matrices for similarity computation are all `Matrix` values.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// Invariant: `data.len() == rows * cols` at all times.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Builds a matrix from a flat row-major buffer, re-validating the
    /// length invariant instead of panicking. Decoders that accept
    /// untrusted dimensions (e.g. the telemetry JSON reader) come in
    /// through here.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, String> {
        if data.len() != rows * cols {
            return Err(format!(
                "matrix buffer length {} does not match {rows}x{cols}",
                data.len()
            ));
        }
        Ok(Self { rows, cols, data })
    }
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a single-column matrix from a vector.
    pub fn column_vector(v: &[f64]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Overwrites column `c` with the values in `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn set_col(&mut self, c: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows);
        for (r, &x) in v.iter().enumerate() {
            self[(r, c)] = x;
        }
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both
        // `other` and `out`, which matters for the larger kernel matrices
        // built by the SVR trainer.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        self.iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `selfᵀ * self` — the Gram matrix used by the normal-equation solvers.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for row in self.iter_rows() {
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        // mirror the upper triangle
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `selfᵀ * v` for a vector with one entry per row.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.iter_rows().zip(v) {
            if vi == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(row) {
                *o += vi * x;
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Extracts the sub-matrix containing only the listed columns, in order.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                out[(r, j)] = self[(r, c)];
            }
        }
        out
    }

    /// Extracts the sub-matrix containing only the listed rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Appends a constant column of ones on the left (intercept column).
    pub fn with_intercept(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            out[(r, 0)] = 1.0;
            out.row_mut(r)[1..].copy_from_slice(self.row(r));
        }
        out
    }

    /// Stacks `other` below `self`.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Stacks `other` to the right of `self`.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, a| m.max(a.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(10) {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(10) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 10 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn shape_and_indexing() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn set_col_overwrites() {
        let mut m = sample();
        m.set_col(0, &[7.0, 8.0]);
        assert_eq!(m.col(0), vec![7.0, 8.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample(); // 2x3
        let b = a.transpose(); // 3x2
        let p = a.matmul(&b); // 2x2
        assert_eq!(p[(0, 0)], 14.0); // 1+4+9
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 0)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
    }

    #[test]
    fn matvec_and_t_matvec() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.t_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gram_equals_t_times_self() {
        let m = sample();
        let g = m.gram();
        let expected = m.transpose().matmul(&m);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3), m);
    }

    #[test]
    fn select_cols_and_rows() {
        let m = sample();
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
        let r = m.select_rows(&[1]);
        assert_eq!(r.shape(), (1, 3));
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn with_intercept_prepends_ones() {
        let m = sample().with_intercept();
        assert_eq!(m.shape(), (2, 4));
        assert_eq!(m.col(0), vec![1.0, 1.0]);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn stacking() {
        let m = sample();
        let v = m.vstack(&m);
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(3), &[4.0, 5.0, 6.0]);
        let h = m.hstack(&m);
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn arithmetic() {
        let m = sample();
        assert_eq!(m.add(&m), m.scale(2.0));
        let z = m.sub(&m);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m[(0, 0)] = f64::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "matmul inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        let m = sample();
        let _ = m.matmul(&m);
    }

    #[test]
    #[should_panic]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

//! Seedable xorshift64* pseudo-random numbers.
//!
//! One small, fast, fully deterministic generator shared by the whole
//! workspace: the simulator, bootstrap sampling, feature subsampling in
//! the tree learner, weight initialisation in the MLP, shuffling in
//! cross-validation, and the randomized tests. Promoted here from the
//! two private copies that used to live in `wp_ml::tree` and
//! `wp_telemetry::sampling`.
//!
//! xorshift64* (Vigna, 2016) passes the statistical tests that matter
//! for simulation and subsampling, needs eight bytes of state, and has
//! no platform-dependent behaviour — identical sequences on every
//! architecture, which the determinism contract of `wp-runtime` relies
//! on.

/// A seedable xorshift64* generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Distinct seeds — including 0 —
    /// yield distinct, well-mixed streams.
    pub fn new(seed: u64) -> Self {
        // Golden-ratio mixing so that small consecutive seeds (0, 1, 2…)
        // do not produce correlated streams; +1 guards the all-zero state
        // xorshift cannot leave.
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut s = self.state;
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        self.state = s;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform index draw from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is an empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal draw (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = f64::EPSILON + (1.0 - f64::EPSILON) * self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(0);
        let mut b = Rng64::new(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut rng = Rng64::new(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        // The stream actually spreads across the interval.
        assert!(lo < 0.05 && hi > 0.95, "lo={lo} hi={hi}");
    }

    #[test]
    fn below_covers_the_range() {
        let mut rng = Rng64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Rng64::new(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}

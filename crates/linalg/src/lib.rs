//! Dense linear algebra and descriptive statistics substrate.
//!
//! Everything downstream of this crate (the ML models in `wp-ml`, the
//! similarity measures in `wp-similarity`, and the simulator in
//! `wp-workloads`) operates on the [`Matrix`] type and the free functions
//! defined here. The crate is deliberately dependency-free: the paper's
//! pipeline needs only small/medium dense problems (tens of features,
//! hundreds of observations), so a straightforward row-major implementation
//! with Cholesky/QR solvers is both sufficient and easy to audit.
//!
//! # Module map
//!
//! * [`matrix`] — row-major dense [`Matrix`] with constructors, views, and
//!   arithmetic.
//! * [`solve`] — Cholesky and Householder-QR factorizations, least squares.
//! * [`stats`] — means, variances, correlation, quantiles, scalers.
//! * [`hist`] — equi-width frequency and cumulative histograms (the raw
//!   material of the paper's Hist-FP representation).
//! * [`ops`] — slice-level vector kernels shared by the other modules.
//! * [`rng`] — the workspace's seedable xorshift64* generator.

#![warn(missing_docs)]

pub mod hist;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod solve;
pub mod stats;

pub use hist::{cumulative_histogram, histogram, Histogram};
pub use matrix::Matrix;
pub use rng::Rng64;
pub use solve::{cholesky_solve, lstsq, qr_solve, CholeskyError};
pub use stats::{
    covariance, max, mean, median, min, pearson, quantile, stddev, variance, MinMaxScaler,
    StandardScaler,
};

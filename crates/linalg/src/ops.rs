//! Slice-level vector kernels.
//!
//! These free functions operate on `&[f64]` so the ML crates can use them
//! on matrix rows, columns, and plain vectors alike without conversions.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Manhattan (L1) norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// `y ← y + alpha * x` (BLAS `axpy`).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `x` in place by `alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Soft-thresholding operator `sign(z) * max(|z| - gamma, 0)` used by the
/// Lasso / elastic-net coordinate-descent updates.
#[inline]
pub fn soft_threshold(z: f64, gamma: f64) -> f64 {
    if z > gamma {
        z - gamma
    } else if z < -gamma {
        z + gamma
    } else {
        0.0
    }
}

/// Logistic sigmoid, numerically stable for large `|x|`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Index of the maximum element; ties broken toward the lower index.
///
/// Returns `None` for an empty slice.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in a.iter().enumerate().skip(1) {
        if x > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum element; ties broken toward the lower index.
pub fn argmin(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in a.iter().enumerate().skip(1) {
        if x < a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Indices that would sort `a` ascending (stable).
pub fn argsort(a: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| a[i].partial_cmp(&a[j]).unwrap_or(std::cmp::Ordering::Equal));
    idx
}

/// Indices that would sort `a` descending (stable).
pub fn argsort_desc(a: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| a[j].partial_cmp(&a[i]).unwrap_or(std::cmp::Ordering::Equal));
    idx
}

/// Clamps every element of `x` into `[lo, hi]` in place.
pub fn clamp_slice(x: &mut [f64], lo: f64, hi: f64) {
    for xi in x {
        *xi = xi.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        let x = 2.3;
        assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arg_extrema() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, 3.0, 0.5]), Some(2));
        assert_eq!(argmax(&[]), None);
        // ties go to the first occurrence
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn argsort_orders() {
        assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
        assert_eq!(argsort_desc(&[3.0, 1.0, 2.0]), vec![0, 2, 1]);
    }

    #[test]
    fn clamp_slice_bounds() {
        let mut v = vec![-2.0, 0.5, 9.0];
        clamp_slice(&mut v, 0.0, 1.0);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }
}

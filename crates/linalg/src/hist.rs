//! Equi-width frequency and cumulative histograms.
//!
//! These are the building blocks of the paper's Histogram-Based
//! Fingerprinting (Hist-FP, §5.1.1 and Appendix A): each feature's value
//! range is split into `n` equal-width bins, frequencies are normalized so
//! workloads with differing observation counts remain comparable, and the
//! cumulative form makes "shape" differences visible to entry-wise norms
//! (the `H1/H2/H3` example of Appendix A).

/// A normalized equi-width histogram over a fixed value range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the value range.
    pub lo: f64,
    /// Inclusive upper bound of the value range.
    pub hi: f64,
    /// Relative frequency per bin; sums to 1 when any value was observed.
    pub bins: Vec<f64>,
}

impl Histogram {
    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when the histogram has zero bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Converts to the cumulative form: bin `i` holds the total relative
    /// frequency of bins `0..=i`. The final bin is exactly `1.0` whenever
    /// any value was observed.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.bins
            .iter()
            .map(|&b| {
                acc += b;
                acc
            })
            .collect()
    }
}

/// Builds a normalized equi-width histogram of `values` over `[lo, hi]`
/// with `nbins` bins. Finite values outside the range are clamped into
/// the boundary bins; a degenerate range (`hi <= lo`) puts everything in
/// bin 0. Non-finite samples (NaN, ±∞) are skipped and frequencies are
/// normalized over the *finite* count — `NaN.clamp(0.0, 1.0) as usize`
/// is `0`, so counting them would silently pile corrupt samples into
/// bin 0 and skew every downstream fingerprint distance.
///
/// # Panics
///
/// Panics if `nbins == 0`.
pub fn histogram(values: &[f64], lo: f64, hi: f64, nbins: usize) -> Histogram {
    assert!(nbins > 0, "histogram needs at least one bin");
    let mut bins = vec![0.0; nbins];
    let range = hi - lo;
    let mut finite = 0usize;
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        finite += 1;
        let idx = if range > 0.0 {
            let t = ((v - lo) / range).clamp(0.0, 1.0);
            ((t * nbins as f64) as usize).min(nbins - 1)
        } else {
            0
        };
        bins[idx] += 1.0;
    }
    if finite > 0 {
        let total = finite as f64;
        for b in &mut bins {
            *b /= total;
        }
    }
    Histogram { lo, hi, bins }
}

/// Convenience: histogram over the observed min/max of `values` followed by
/// conversion to the cumulative form — the exact Hist-FP cell recipe.
pub fn cumulative_histogram(values: &[f64], nbins: usize) -> Vec<f64> {
    if values.is_empty() {
        return vec![0.0; nbins];
    }
    let lo = crate::stats::min(values);
    let hi = crate::stats::max(values);
    histogram(values, lo, hi, nbins).cumulative()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_sum_to_one() {
        let h = histogram(&[0.0, 0.5, 1.0, 0.25], 0.0, 1.0, 4);
        let total: f64 = h.bins.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_assignment() {
        let h = histogram(&[0.05, 0.95], 0.0, 1.0, 10);
        assert!((h.bins[0] - 0.5).abs() < 1e-12);
        assert!((h.bins[9] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_value_lands_in_last_bin() {
        let h = histogram(&[1.0], 0.0, 1.0, 10);
        assert_eq!(h.bins[9], 1.0);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let h = histogram(&[-5.0, 10.0], 0.0, 1.0, 2);
        assert_eq!(h.bins[0], 0.5);
        assert_eq!(h.bins[1], 0.5);
    }

    #[test]
    fn degenerate_range_uses_first_bin() {
        let h = histogram(&[3.0, 3.0], 3.0, 3.0, 5);
        assert_eq!(h.bins[0], 1.0);
    }

    #[test]
    fn cumulative_monotone_ending_at_one() {
        let h = histogram(&[0.1, 0.4, 0.9], 0.0, 1.0, 5);
        let c = h.cumulative();
        for w in c.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((c[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn appendix_a_shape_example() {
        // H1 = (1,0,0,0,0), H2 = (0,1,0,0,0), H3 = (0,0,0,0,1):
        // cumulative forms make H1 closer to H2 than to H3 under L1.
        let c1 = vec![1.0, 1.0, 1.0, 1.0, 1.0];
        let c2 = vec![0.0, 1.0, 1.0, 1.0, 1.0];
        let c3 = vec![0.0, 0.0, 0.0, 0.0, 1.0];
        let d = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        assert!(d(&c1, &c2) < d(&c1, &c3));
    }

    #[test]
    fn cumulative_histogram_empty_input() {
        assert_eq!(cumulative_histogram(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn non_finite_samples_are_skipped_not_binned() {
        // NaN used to land in bin 0 (NaN.clamp(0.0,1.0) as usize == 0)
        // and inflate the denominator; both corrupt Hist-FP shapes
        let h = histogram(
            &[f64::NAN, 0.9, f64::INFINITY, 0.9, f64::NEG_INFINITY],
            0.0,
            1.0,
            2,
        );
        assert_eq!(h.bins[0], 0.0, "no ghost mass in bin 0: {:?}", h.bins);
        assert_eq!(
            h.bins[1], 1.0,
            "finite samples normalize to 1: {:?}",
            h.bins
        );
        // bit-identical to the histogram of only the finite samples
        assert_eq!(h, histogram(&[0.9, 0.9], 0.0, 1.0, 2));
    }

    #[test]
    fn all_non_finite_input_yields_zero_bins() {
        let h = histogram(&[f64::NAN, f64::INFINITY], 0.0, 1.0, 4);
        assert_eq!(h.bins, vec![0.0; 4]);
        // degenerate range + NaN: still no bin-0 ghost
        let h = histogram(&[f64::NAN], 3.0, 3.0, 2);
        assert_eq!(h.bins, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }
}

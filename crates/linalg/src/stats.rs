//! Descriptive statistics and feature scalers.

use crate::matrix::Matrix;

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().sum::<f64>() / a.len() as f64
}

/// Population variance (divide by `n`); `0.0` for fewer than 1 element.
pub fn variance(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Sample variance (divide by `n - 1`); `0.0` for fewer than 2 elements.
pub fn sample_variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Population standard deviation.
pub fn stddev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Population covariance of two equal-length slices.
pub fn covariance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "covariance length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64
}

/// Pearson correlation coefficient in `[-1, 1]`.
///
/// Returns `0.0` when either input is constant (undefined correlation),
/// which is the convention the paper's filter-based feature selection
/// needs: a constant feature carries no information about the target.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let sa = stddev(a);
    let sb = stddev(b);
    if sa == 0.0 || sb == 0.0 {
        return 0.0;
    }
    (covariance(a, b) / (sa * sb)).clamp(-1.0, 1.0)
}

/// Minimum; `NaN` elements are ignored, empty slice gives `f64::INFINITY`.
pub fn min(a: &[f64]) -> f64 {
    a.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::INFINITY, f64::min)
}

/// Maximum; `NaN` elements are ignored, empty slice gives `f64::NEG_INFINITY`.
pub fn max(a: &[f64]) -> f64 {
    a.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Median (average of middle pair for even lengths); `0.0` if empty.
pub fn median(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let mut v = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Linear-interpolation quantile, `q ∈ [0, 1]`.
pub fn quantile(a: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if a.is_empty() {
        return 0.0;
    }
    let mut v = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Nearest-rank percentile over an ascending-sorted integer sample,
/// `p ∈ [0, 100]`; `0` for an empty slice.
///
/// This is the convention shared by the serving layer (`wp-server`'s
/// `/stats` latency summaries) and the load generator's report: the
/// value at rank `⌈p/100 · n⌉` (1-based), so every reported percentile
/// is an actually observed sample, never an interpolation.
pub fn nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Column-wise means of a matrix.
pub fn col_means(m: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0; m.cols()];
    if m.rows() == 0 {
        return out;
    }
    for row in m.iter_rows() {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    for o in &mut out {
        *o /= m.rows() as f64;
    }
    out
}

/// Column-wise population standard deviations of a matrix.
pub fn col_stddevs(m: &Matrix) -> Vec<f64> {
    let means = col_means(m);
    let mut out = vec![0.0; m.cols()];
    if m.rows() == 0 {
        return out;
    }
    for row in m.iter_rows() {
        for ((o, &x), &mu) in out.iter_mut().zip(row).zip(&means) {
            *o += (x - mu) * (x - mu);
        }
    }
    for o in &mut out {
        *o = (*o / m.rows() as f64).sqrt();
    }
    out
}

/// Z-score scaler fit on training data, reusable on new data.
///
/// Constant columns (σ = 0) are mapped to zero rather than NaN.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-column mean and standard deviation.
    pub fn fit(m: &Matrix) -> Self {
        Self {
            means: col_means(m),
            stds: col_stddevs(m),
        }
    }

    /// Applies the learned transform, returning a new matrix.
    pub fn transform(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.means.len(), "scaler column mismatch");
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (j, x) in row.iter_mut().enumerate() {
                *x = if self.stds[j] > 0.0 {
                    (*x - self.means[j]) / self.stds[j]
                } else {
                    0.0
                };
            }
        }
        out
    }

    /// Fit + transform in one call.
    pub fn fit_transform(m: &Matrix) -> (Self, Matrix) {
        let s = Self::fit(m);
        let t = s.transform(m);
        (s, t)
    }

    /// Learned column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Learned column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Min-max scaler mapping each column into `[0, 1]`.
///
/// The paper normalizes each feature's value space to `[0, 1]` using the
/// observed min/max before histogramming (§4.3); this type implements that
/// normalization with train/apply separation.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-column min and max.
    pub fn fit(m: &Matrix) -> Self {
        let mut mins = vec![f64::INFINITY; m.cols()];
        let mut maxs = vec![f64::NEG_INFINITY; m.cols()];
        for row in m.iter_rows() {
            for j in 0..row.len() {
                mins[j] = mins[j].min(row[j]);
                maxs[j] = maxs[j].max(row[j]);
            }
        }
        if m.rows() == 0 {
            mins.iter_mut().for_each(|v| *v = 0.0);
            maxs.iter_mut().for_each(|v| *v = 1.0);
        }
        Self { mins, maxs }
    }

    /// Applies the learned transform; values outside the training range are
    /// clamped to `[0, 1]`, and constant columns map to `0.0`.
    pub fn transform(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.mins.len(), "scaler column mismatch");
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (j, x) in row.iter_mut().enumerate() {
                let range = self.maxs[j] - self.mins[j];
                *x = if range > 0.0 {
                    ((*x - self.mins[j]) / range).clamp(0.0, 1.0)
                } else {
                    0.0
                };
            }
        }
        out
    }

    /// Fit + transform in one call.
    pub fn fit_transform(m: &Matrix) -> (Self, Matrix) {
        let s = Self::fit(m);
        let t = s.transform(m);
        (s, t)
    }

    /// Learned column minima.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Learned column maxima.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        assert!((variance(&a) - 4.0).abs() < 1e-12);
        assert!((stddev(&a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_bessel() {
        let a = [1.0, 2.0, 3.0];
        assert!((sample_variance(&a) - 1.0).abs() < 1e-12);
        assert_eq!(sample_variance(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [5.0, 3.0, 1.0, -1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[1.0; 4]), 0.0);
    }

    #[test]
    fn median_and_quantiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&a, 0.0), 1.0);
        assert_eq!(quantile(&a, 1.0), 5.0);
        assert_eq!(quantile(&a, 0.5), 3.0);
        assert!((quantile(&a, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_rank_matches_definition() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&sorted, 50.0), 50);
        assert_eq!(nearest_rank(&sorted, 95.0), 95);
        assert_eq!(nearest_rank(&sorted, 99.0), 99);
        assert_eq!(nearest_rank(&sorted, 100.0), 100);
        assert_eq!(nearest_rank(&sorted, 0.0), 1);
        assert_eq!(nearest_rank(&[7], 50.0), 7);
        assert_eq!(nearest_rank(&[], 99.0), 0);
    }

    #[test]
    fn min_max_ignore_nan() {
        assert_eq!(min(&[3.0, f64::NAN, 1.0]), 1.0);
        assert_eq!(max(&[3.0, f64::NAN, 1.0]), 3.0);
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(col_means(&m), vec![2.0, 10.0]);
        let s = col_stddevs(&m);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn standard_scaler_centers_and_scales() {
        let m = Matrix::from_rows(&[vec![1.0, 5.0], vec![3.0, 5.0]]);
        let (_, t) = StandardScaler::fit_transform(&m);
        assert!((t[(0, 0)] + 1.0).abs() < 1e-12);
        assert!((t[(1, 0)] - 1.0).abs() < 1e-12);
        // constant column maps to zero
        assert_eq!(t[(0, 1)], 0.0);
    }

    #[test]
    fn minmax_scaler_unit_interval_and_clamp() {
        let m = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let (s, t) = MinMaxScaler::fit_transform(&m);
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(1, 0)], 1.0);
        let unseen = Matrix::from_rows(&[vec![20.0], vec![-5.0]]);
        let u = s.transform(&unseen);
        assert_eq!(u[(0, 0)], 1.0);
        assert_eq!(u[(1, 0)], 0.0);
    }
}

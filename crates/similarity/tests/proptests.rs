//! Property-based tests for the similarity measures: metric-like
//! properties (identity, symmetry, non-negativity), representation
//! invariants, and ranking-metric bounds.

use proptest::prelude::*;
use wp_linalg::Matrix;
use wp_similarity::measure::{distance_matrix, Measure, Norm};
use wp_similarity::{dtw, lcss};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn norms_are_symmetric_nonnegative_zero_on_identity(
        a in matrix(5, 3),
        b in matrix(5, 3),
    ) {
        for norm in Norm::ALL {
            let dab = norm.apply(&a, &b);
            let dba = norm.apply(&b, &a);
            prop_assert!(dab >= -1e-12, "{}: negative distance", norm.label());
            prop_assert!((dab - dba).abs() < 1e-9, "{}: asymmetric", norm.label());
            // Correlation distance of a matrix with itself is 0 only when
            // non-constant; skip identity check for it.
            if norm != Norm::Correlation {
                prop_assert!(norm.apply(&a, &a).abs() < 1e-12, "{}: d(a,a) != 0", norm.label());
            }
        }
    }

    #[test]
    fn l11_dominates_frobenius(a in matrix(4, 4), b in matrix(4, 4)) {
        // ‖x‖₁ ≥ ‖x‖₂ element-wise over the difference
        let l11 = Norm::L11.apply(&a, &b);
        let fro = Norm::Frobenius.apply(&a, &b);
        prop_assert!(l11 >= fro - 1e-9);
    }

    #[test]
    fn l21_between_frobenius_and_l11(a in matrix(4, 4), b in matrix(4, 4)) {
        let l11 = Norm::L11.apply(&a, &b);
        let l21 = Norm::L21.apply(&a, &b);
        let fro = Norm::Frobenius.apply(&a, &b);
        prop_assert!(l21 >= fro - 1e-9);
        prop_assert!(l21 <= l11 + 1e-9);
    }

    #[test]
    fn dtw_zero_iff_equal_and_symmetric(
        a in proptest::collection::vec(0.0..5.0f64, 2..20),
        b in proptest::collection::vec(0.0..5.0f64, 2..20),
    ) {
        prop_assert!(dtw::dtw(&a, &a).abs() < 1e-12);
        let dab = dtw::dtw(&a, &b);
        let dba = dtw::dtw(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab >= 0.0);
    }

    #[test]
    fn dtw_bounded_by_euclidean_for_equal_lengths(
        pairs in proptest::collection::vec((0.0..5.0f64, 0.0..5.0f64), 2..20),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        // the diagonal path is one admissible alignment, so DTW ≤ L2
        let euclid: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        prop_assert!(dtw::dtw(&a, &b) <= euclid + 1e-9);
    }

    #[test]
    fn lcss_distance_in_unit_interval(
        a in proptest::collection::vec(0.0..5.0f64, 1..15),
        b in proptest::collection::vec(0.0..5.0f64, 1..15),
        eps in 0.0..2.0f64,
    ) {
        let d = lcss::lcss(&a, &b, eps);
        prop_assert!((0.0..=1.0).contains(&d));
        // larger tolerance can only reduce distance
        let d2 = lcss::lcss(&a, &b, eps + 1.0);
        prop_assert!(d2 <= d + 1e-12);
    }

    #[test]
    fn distance_matrix_symmetric_zero_diagonal(ms in proptest::collection::vec(matrix(3, 2), 2..5)) {
        let d = distance_matrix(&ms, Measure::Norm(Norm::L21));
        for i in 0..ms.len() {
            prop_assert_eq!(d[(i, i)], 0.0);
            for j in 0..ms.len() {
                prop_assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ranking_metrics_bounded(
        n_per in 2usize..4,
        seed_vals in proptest::collection::vec(0.0..10.0f64, 16),
    ) {
        // build a distance matrix from random points in 1-D
        let n = n_per * 2;
        let pts: Vec<f64> = seed_vals.into_iter().take(n).collect();
        prop_assume!(pts.len() == n);
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                d[(i, j)] = (pts[i] - pts[j]).abs();
            }
        }
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let acc = wp_similarity::one_nn_accuracy(&d, &labels);
        let map = wp_similarity::mean_average_precision(&d, &labels);
        let ndcg = wp_similarity::ndcg(&d, |i, j| if labels[i] == labels[j] { 1.0 } else { 0.0 });
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((0.0..=1.0).contains(&map));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ndcg));
    }

    #[test]
    fn histfp_shape_and_bounds(
        series_a in proptest::collection::vec(0.0..100.0f64, 5..40),
        series_b in proptest::collection::vec(0.0..100.0f64, 5..40),
        nbins in 2usize..16,
    ) {
        use wp_similarity::histfp::histfp;
        use wp_similarity::repr::RunFeatureData;
        use wp_telemetry::FeatureId;
        let mk = |s: Vec<f64>| RunFeatureData {
            features: vec![FeatureId::from_global_index(0)],
            series: vec![s],
        };
        let fps = histfp(&[mk(series_a), mk(series_b)], nbins);
        prop_assert_eq!(fps.len(), 2);
        for fp in &fps {
            prop_assert_eq!(fp.shape(), (nbins, 1));
            for v in fp.as_slice() {
                prop_assert!((0.0..=1.0 + 1e-12).contains(v));
            }
            // cumulative: last bin is 1
            prop_assert!((fp[(nbins - 1, 0)] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bcpd_segments_partition_any_series(
        series in proptest::collection::vec(-10.0..10.0f64, 4..80),
    ) {
        use wp_similarity::bcpd::{segments, BcpdConfig};
        let segs = segments(&series, &BcpdConfig::default());
        let total: usize = segs.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, series.len());
        prop_assert!(!segs.is_empty());
    }
}

//! Randomized property tests for the similarity measures: metric-like
//! properties (identity, symmetry, non-negativity), representation
//! invariants, and ranking-metric bounds. Seeded [`Rng64`] case loops
//! replace the former external property-testing dependency.

use wp_linalg::{Matrix, Rng64};
use wp_similarity::measure::{try_distance_matrix, Measure, Norm};
use wp_similarity::{dtw, lcss};

const CASES: usize = 48;

fn matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.range(0.0, 10.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

fn series(rng: &mut Rng64, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.range(lo, hi)).collect()
}

#[test]
fn norms_are_symmetric_nonnegative_zero_on_identity() {
    let mut rng = Rng64::new(0x61);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 5, 3);
        let b = matrix(&mut rng, 5, 3);
        for norm in Norm::ALL {
            let dab = norm.apply(&a, &b);
            let dba = norm.apply(&b, &a);
            assert!(dab >= -1e-12, "{}: negative distance", norm.label());
            assert!((dab - dba).abs() < 1e-9, "{}: asymmetric", norm.label());
            // Correlation distance of a matrix with itself is 0 only when
            // non-constant; skip identity check for it.
            if norm != Norm::Correlation {
                assert!(
                    norm.apply(&a, &a).abs() < 1e-12,
                    "{}: d(a,a) != 0",
                    norm.label()
                );
            }
        }
    }
}

#[test]
fn l11_dominates_frobenius() {
    let mut rng = Rng64::new(0x62);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 4, 4);
        let b = matrix(&mut rng, 4, 4);
        // ‖x‖₁ ≥ ‖x‖₂ element-wise over the difference
        let l11 = Norm::L11.apply(&a, &b);
        let fro = Norm::Frobenius.apply(&a, &b);
        assert!(l11 >= fro - 1e-9);
    }
}

#[test]
fn l21_between_frobenius_and_l11() {
    let mut rng = Rng64::new(0x63);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 4, 4);
        let b = matrix(&mut rng, 4, 4);
        let l11 = Norm::L11.apply(&a, &b);
        let l21 = Norm::L21.apply(&a, &b);
        let fro = Norm::Frobenius.apply(&a, &b);
        assert!(l21 >= fro - 1e-9);
        assert!(l21 <= l11 + 1e-9);
    }
}

#[test]
fn dtw_zero_iff_equal_and_symmetric() {
    let mut rng = Rng64::new(0x64);
    for _ in 0..CASES {
        let la = 2 + rng.below(18);
        let a = series(&mut rng, la, 0.0, 5.0);
        let lb = 2 + rng.below(18);
        let b = series(&mut rng, lb, 0.0, 5.0);
        assert!(dtw::dtw(&a, &a).abs() < 1e-12);
        let dab = dtw::dtw(&a, &b);
        let dba = dtw::dtw(&b, &a);
        assert!((dab - dba).abs() < 1e-9);
        assert!(dab >= 0.0);
    }
}

#[test]
fn dtw_bounded_by_euclidean_for_equal_lengths() {
    let mut rng = Rng64::new(0x65);
    for _ in 0..CASES {
        let len = 2 + rng.below(18);
        let a = series(&mut rng, len, 0.0, 5.0);
        let b = series(&mut rng, len, 0.0, 5.0);
        // the diagonal path is one admissible alignment, so DTW ≤ L2
        let euclid: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dtw::dtw(&a, &b) <= euclid + 1e-9);
    }
}

#[test]
fn lcss_distance_in_unit_interval() {
    let mut rng = Rng64::new(0x66);
    for _ in 0..CASES {
        let la = 1 + rng.below(14);
        let a = series(&mut rng, la, 0.0, 5.0);
        let lb = 1 + rng.below(14);
        let b = series(&mut rng, lb, 0.0, 5.0);
        let eps = rng.range(0.0, 2.0);
        let d = lcss::lcss(&a, &b, eps);
        assert!((0.0..=1.0).contains(&d));
        // larger tolerance can only reduce distance
        let d2 = lcss::lcss(&a, &b, eps + 1.0);
        assert!(d2 <= d + 1e-12);
    }
}

#[test]
fn distance_matrix_symmetric_zero_diagonal() {
    let mut rng = Rng64::new(0x67);
    for _ in 0..CASES {
        let count = 2 + rng.below(3);
        let ms: Vec<Matrix> = (0..count).map(|_| matrix(&mut rng, 3, 2)).collect();
        let d = try_distance_matrix(&ms, Measure::Norm(Norm::L21)).unwrap();
        for i in 0..ms.len() {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..ms.len() {
                assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn ranking_metrics_bounded() {
    let mut rng = Rng64::new(0x68);
    for _ in 0..CASES {
        // build a distance matrix from random points in 1-D
        let n = (2 + rng.below(2)) * 2;
        let pts = series(&mut rng, n, 0.0, 10.0);
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                d[(i, j)] = (pts[i] - pts[j]).abs();
            }
        }
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let acc = wp_similarity::one_nn_accuracy(&d, &labels);
        let map = wp_similarity::mean_average_precision(&d, &labels);
        let ndcg = wp_similarity::ndcg(&d, |i, j| if labels[i] == labels[j] { 1.0 } else { 0.0 });
        assert!((0.0..=1.0).contains(&acc));
        assert!((0.0..=1.0).contains(&map));
        assert!((0.0..=1.0 + 1e-9).contains(&ndcg));
    }
}

#[test]
fn histfp_shape_and_bounds() {
    use wp_similarity::histfp::histfp;
    use wp_similarity::repr::RunFeatureData;
    use wp_telemetry::FeatureId;
    let mut rng = Rng64::new(0x69);
    for _ in 0..CASES {
        let la = 5 + rng.below(35);
        let series_a = series(&mut rng, la, 0.0, 100.0);
        let lb = 5 + rng.below(35);
        let series_b = series(&mut rng, lb, 0.0, 100.0);
        let nbins = 2 + rng.below(14);
        let mk = |s: Vec<f64>| RunFeatureData {
            features: vec![FeatureId::from_global_index(0)],
            series: vec![s],
        };
        let fps = histfp(&[mk(series_a), mk(series_b)], nbins);
        assert_eq!(fps.len(), 2);
        for fp in &fps {
            assert_eq!(fp.shape(), (nbins, 1));
            for v in fp.as_slice() {
                assert!((0.0..=1.0 + 1e-12).contains(v));
            }
            // cumulative: last bin is 1
            assert!((fp[(nbins - 1, 0)] - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn bcpd_segments_partition_any_series() {
    use wp_similarity::bcpd::{segments, BcpdConfig};
    let mut rng = Rng64::new(0x6A);
    for _ in 0..CASES {
        let len = 4 + rng.below(76);
        let s = series(&mut rng, len, -10.0, 10.0);
        let segs = segments(&s, &BcpdConfig::default());
        let total: usize = segs.iter().map(|seg| seg.len()).sum();
        assert_eq!(total, s.len());
        assert!(!segs.is_empty());
    }
}

//! Workload similarity computation (§5).
//!
//! Two sub-problems, mirroring the paper's decomposition:
//!
//! * **Data representation** — [`repr`] extracts per-feature observation
//!   series from experiment runs and builds the three representations:
//!   raw multivariate time-series ([`repr::mts`]), histogram-based
//!   fingerprints ([`histfp`]), and phase-level statistical fingerprints
//!   ([`phasefp`], backed by Bayesian online change-point detection in
//!   [`bcpd`]).
//!   The learned fourth representation, Plan-Embed, lives behind the
//!   [`fingerprinter::Fingerprinter`] strategy trait, which also unifies
//!   the paper's three representations behind one joint /
//!   corpus-stable construction interface.
//! * **Similarity computation** — [`norms`] implements the matrix norms
//!   (L1,1 / L2,1 / Frobenius / Canberra / Chi² / Correlation), [`dtw`]
//!   and [`lcss`] the elastic time-series measures (dependent and
//!   independent variants), and [`measure`] the unified dispatch enum.
//!
//! [`robustness`] provides the noise / outlier / missing-data injectors
//! behind the robustness dimension, and [`eval`] scores a similarity method along the paper's three dimensions:
//! reliability (1-NN accuracy, mAP), discrimination power (NDCG), and
//! robustness (spread across repeated runs).

#![warn(missing_docs)]

pub mod bcpd;
pub mod cluster;
pub mod dtw;
pub mod eval;
pub mod fingerprinter;
pub mod histfp;
pub mod lcss;
pub mod measure;
pub mod norms;
pub mod phasefp;
pub mod repr;
pub mod robustness;

pub use eval::{mean_average_precision, ndcg, one_nn_accuracy};
pub use fingerprinter::{fingerprinter, fitted, FingerprintConfig, Fingerprinter};
pub use measure::{try_distance_matrix, Measure, Norm};
pub use repr::Representation;

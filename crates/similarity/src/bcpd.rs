//! Bayesian online change-point detection (Adams & MacKay 2007).
//!
//! Phase-FP (§5.1.1) segments each univariate resource series into phases
//! with distinct statistical behaviour. We implement the standard online
//! algorithm with a Normal-Gamma conjugate model (unknown mean and
//! variance), a constant hazard rate, and run-length pruning. Change
//! points are reported where the maximum-a-posteriori run length resets.

/// ln Γ(x) via the Lanczos approximation (g = 7, n = 9), accurate to
/// ~1e-13 for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Normal-Gamma posterior parameters for one run-length hypothesis.
#[derive(Debug, Clone, Copy)]
struct NormalGamma {
    mu: f64,
    kappa: f64,
    alpha: f64,
    beta: f64,
}

impl NormalGamma {
    fn prior(mu0: f64, var0: f64) -> Self {
        Self {
            mu: mu0,
            kappa: 1.0,
            alpha: 1.0,
            beta: var0.max(1e-9),
        }
    }

    /// Log predictive density: Student-t with 2α degrees of freedom.
    fn log_pred(&self, x: f64) -> f64 {
        let df = 2.0 * self.alpha;
        let scale2 = self.beta * (self.kappa + 1.0) / (self.alpha * self.kappa);
        let z2 = (x - self.mu) * (x - self.mu) / scale2;
        ln_gamma((df + 1.0) / 2.0)
            - ln_gamma(df / 2.0)
            - 0.5 * (df * std::f64::consts::PI * scale2).ln()
            - (df + 1.0) / 2.0 * (1.0 + z2 / df).ln()
    }

    fn update(&self, x: f64) -> Self {
        let kappa1 = self.kappa + 1.0;
        Self {
            mu: (self.kappa * self.mu + x) / kappa1,
            kappa: kappa1,
            alpha: self.alpha + 0.5,
            beta: self.beta + self.kappa * (x - self.mu) * (x - self.mu) / (2.0 * kappa1),
        }
    }
}

/// BCPD configuration.
#[derive(Debug, Clone, Copy)]
pub struct BcpdConfig {
    /// Constant hazard: prior change probability per step (`1/λ`).
    pub hazard: f64,
    /// Run-length hypotheses with posterior mass below this are pruned.
    pub prune_threshold: f64,
}

impl Default for BcpdConfig {
    fn default() -> Self {
        Self {
            hazard: 1.0 / 100.0,
            prune_threshold: 1e-8,
        }
    }
}

/// Detects change points in a univariate series.
///
/// Returns the sorted start indices of the detected segments; the first
/// entry is always `0`. A constant or empty series yields a single
/// segment.
pub fn detect_changepoints(series: &[f64], config: &BcpdConfig) -> Vec<usize> {
    let n = series.len();
    if n < 4 {
        return vec![0];
    }
    let mu0 = wp_linalg::stats::mean(series);
    let var0 = wp_linalg::stats::variance(series).max(1e-9);
    let prior = NormalGamma::prior(mu0, var0);

    // run-length posterior (probabilities) and per-hypothesis params
    let mut probs = vec![1.0_f64];
    let mut params = vec![prior];
    let mut map_run_lengths = Vec::with_capacity(n);
    let h = config.hazard;

    for &x in series {
        let preds: Vec<f64> = params.iter().map(|p| p.log_pred(x).exp()).collect();
        let mut growth: Vec<f64> = probs
            .iter()
            .zip(&preds)
            .map(|(p, l)| p * l * (1.0 - h))
            .collect();
        let cp: f64 = probs.iter().zip(&preds).map(|(p, l)| p * l * h).sum();
        // new distribution: index 0 = changepoint, index r+1 = grown r
        let mut new_probs = Vec::with_capacity(growth.len() + 1);
        new_probs.push(cp);
        new_probs.append(&mut growth);
        let total: f64 = new_probs.iter().sum();
        if total > 0.0 {
            for p in &mut new_probs {
                *p /= total;
            }
        } else {
            // numerical underflow: restart
            new_probs = vec![1.0];
            params = vec![prior];
            probs = new_probs;
            map_run_lengths.push(0);
            continue;
        }
        // updated parameters: prior for run length 0, updated otherwise
        let mut new_params = Vec::with_capacity(params.len() + 1);
        new_params.push(prior);
        for p in &params {
            new_params.push(p.update(x));
        }
        // prune negligible hypotheses (keep index alignment by trimming
        // only the tail beyond the last significant entry)
        let mut last_significant = 0;
        for (i, &p) in new_probs.iter().enumerate() {
            if p > config.prune_threshold {
                last_significant = i;
            }
        }
        new_probs.truncate(last_significant + 1);
        new_params.truncate(last_significant + 1);

        probs = new_probs;
        params = new_params;
        let map_r = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        map_run_lengths.push(map_r);
    }

    // A change point is where the MAP run length resets (drops sharply
    // rather than incrementing).
    let mut cps = vec![0usize];
    for t in 1..n {
        let prev = map_run_lengths[t - 1];
        let cur = map_run_lengths[t];
        if cur + 3 < prev && cur <= 2 {
            let start = t.saturating_sub(cur);
            if start > *cps.last().unwrap() + 3 {
                cps.push(start);
            }
        }
    }
    cps
}

/// Splits a series into segments at the detected change points.
pub fn segments<'a>(series: &'a [f64], config: &BcpdConfig) -> Vec<&'a [f64]> {
    let cps = detect_changepoints(series, config);
    let mut out = Vec::with_capacity(cps.len());
    for (i, &start) in cps.iter().enumerate() {
        let end = cps.get(i + 1).copied().unwrap_or(series.len());
        out.push(&series[start..end]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    fn noisy_step(n1: usize, n2: usize, m1: f64, m2: f64) -> Vec<f64> {
        // deterministic pseudo-noise
        let jitter = |i: usize| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        (0..n1)
            .map(|i| m1 + 0.3 * jitter(i))
            .chain((0..n2).map(|i| m2 + 0.3 * jitter(i + n1)))
            .collect()
    }

    #[test]
    fn detects_a_clear_level_shift() {
        let series = noisy_step(60, 60, 0.0, 5.0);
        let cps = detect_changepoints(&series, &BcpdConfig::default());
        assert!(cps.len() >= 2, "no change point found: {cps:?}");
        // the detected change point is near sample 60
        let cp = cps[1];
        assert!((55..=66).contains(&cp), "cp at {cp}");
    }

    #[test]
    fn constant_series_is_one_segment() {
        let series = vec![3.3; 100];
        let cps = detect_changepoints(&series, &BcpdConfig::default());
        assert_eq!(cps, vec![0]);
    }

    #[test]
    fn stationary_noise_rarely_splits() {
        let jitter = |i: usize| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        let series: Vec<f64> = (0..200).map(|i| 1.0 + 0.2 * jitter(i)).collect();
        let cps = detect_changepoints(&series, &BcpdConfig::default());
        assert!(cps.len() <= 2, "spurious change points: {cps:?}");
    }

    #[test]
    fn three_phases_detected() {
        let mut series = noisy_step(50, 50, 0.0, 4.0);
        series.extend(noisy_step(50, 0, 9.0, 0.0));
        let cps = detect_changepoints(&series, &BcpdConfig::default());
        assert!(cps.len() >= 3, "{cps:?}");
    }

    #[test]
    fn segments_partition_the_series() {
        let series = noisy_step(40, 40, 0.0, 6.0);
        let segs = segments(&series, &BcpdConfig::default());
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, series.len());
        assert!(!segs.is_empty());
    }

    #[test]
    fn short_series_single_segment() {
        assert_eq!(
            detect_changepoints(&[1.0, 2.0], &BcpdConfig::default()),
            vec![0]
        );
        assert_eq!(detect_changepoints(&[], &BcpdConfig::default()), vec![0]);
    }
}

//! Feature extraction and the raw MTS representation.
//!
//! Every representation starts from the same primitive: for each run and
//! each selected feature, a vector of observations — the time-series
//! samples for resource features, the per-query values for plan features
//! (Appendix A, Table 7). Normalization happens *jointly across the
//! compared runs* (global per-feature min/max), otherwise histograms and
//! distances would not be comparable between workloads.

use wp_linalg::Matrix;
use wp_telemetry::{ExperimentRun, FeatureId};

/// Which data representation a similarity computation uses (§5.1.1),
/// plus the learned plan-embedding extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Raw multivariate time-series (resource features only).
    Mts,
    /// Histogram-based fingerprinting (equi-width cumulative histograms).
    HistFp,
    /// Phase-level statistical fingerprinting (BCPD phases × statistics).
    PhaseFp,
    /// Learned plan embedding: the bottleneck of a seeded autoencoder
    /// trained on per-query plan-statistic vectors.
    PlanEmbed,
}

impl Representation {
    /// Every representation, paper order first, learned extension last.
    pub const ALL: [Representation; 4] = [
        Representation::Mts,
        Representation::HistFp,
        Representation::PhaseFp,
        Representation::PlanEmbed,
    ];

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Representation::Mts => "MTS",
            Representation::HistFp => "Hist-FP",
            Representation::PhaseFp => "Phase-FP",
            Representation::PlanEmbed => "Plan-Embed",
        }
    }

    /// Parses the short names used by the CLI and the HTTP API
    /// (`mts`, `hist`, `phase`, `embed`).
    pub fn parse(s: &str) -> Option<Representation> {
        match s {
            "mts" => Some(Representation::Mts),
            "hist" => Some(Representation::HistFp),
            "phase" => Some(Representation::PhaseFp),
            "embed" => Some(Representation::PlanEmbed),
            _ => None,
        }
    }

    /// The inverse of [`Representation::parse`].
    pub fn short_name(self) -> &'static str {
        match self {
            Representation::Mts => "mts",
            Representation::HistFp => "hist",
            Representation::PhaseFp => "phase",
            Representation::PlanEmbed => "embed",
        }
    }
}

/// Per-run observation vectors for a fixed feature list: `series[f]` holds
/// the observations of feature `f` (time samples or per-query values).
#[derive(Debug, Clone)]
pub struct RunFeatureData {
    /// The features, in the order of `series`.
    pub features: Vec<FeatureId>,
    /// One observation vector per feature.
    pub series: Vec<Vec<f64>>,
}

/// Extracts observation vectors for the given features from a run,
/// applying a signed `sign(x)·ln(1 + |x|)` transform.
///
/// Telemetry features span eight orders of magnitude (estimated row
/// counts in the tens of millions next to utilization fractions), so a
/// joint min-max normalization of *raw* values would be dominated by the
/// largest workload and collapse every other workload into the lowest
/// histogram bin. The log transform keeps relative differences visible at
/// every magnitude; use [`extract_raw`] to opt out.
///
/// The transform is odd: negative observations (delta-valued features
/// such as change rates) keep their sign instead of being silently
/// clamped to zero, while non-negative values map exactly as the plain
/// `ln(1 + x)` always did — existing fingerprints of non-negative
/// telemetry are bit-identical.
pub fn extract(run: &ExperimentRun, features: &[FeatureId]) -> RunFeatureData {
    let mut data = extract_raw(run, features);
    for series in &mut data.series {
        for v in series {
            // not `signum()`: -0.0 must map to +0.0 like before
            let sign = if *v < 0.0 { -1.0 } else { 1.0 };
            *v = sign * (1.0 + v.abs()).ln();
        }
    }
    data
}

/// Extracts observation vectors without any value transform.
pub fn extract_raw(run: &ExperimentRun, features: &[FeatureId]) -> RunFeatureData {
    let series = features
        .iter()
        .map(|f| match f {
            FeatureId::Resource(rf) => run.resources.feature(*rf),
            FeatureId::Plan(pf) => run.plans.feature(*pf),
        })
        .collect();
    RunFeatureData {
        features: features.to_vec(),
        series,
    }
}

/// Global per-feature `[min, max]` across all runs' observations.
pub fn global_ranges(data: &[RunFeatureData]) -> Vec<(f64, f64)> {
    assert!(!data.is_empty(), "need at least one run");
    let nf = data[0].features.len();
    let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); nf];
    for run in data {
        assert_eq!(run.features.len(), nf, "feature lists must match");
        for (f, series) in run.series.iter().enumerate() {
            for &v in series {
                ranges[f].0 = ranges[f].0.min(v);
                ranges[f].1 = ranges[f].1.max(v);
            }
        }
    }
    ranges
}

/// Normalizes one value into `[0, 1]` given a range; constant ranges map
/// to `0.0`.
pub fn norm01(v: f64, (lo, hi): (f64, f64)) -> f64 {
    if hi > lo {
        ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Builds the MTS representation: per run, a `samples × features` matrix
/// of globally min-max-normalized observations.
///
/// All features must have the same observation count within a run (true
/// for resource features, which share the sampling clock). Plan features
/// have per-query observation counts instead, which is why the paper uses
/// MTS with resource features only; mixing lengths panics.
pub fn mts(data: &[RunFeatureData]) -> Vec<Matrix> {
    let ranges = global_ranges(data);
    data.iter()
        .map(|run| {
            let n = run.series.first().map_or(0, Vec::len);
            for (i, s) in run.series.iter().enumerate() {
                assert_eq!(
                    s.len(),
                    n,
                    "MTS requires equal observation counts (feature {i})"
                );
            }
            let mut m = Matrix::zeros(n, run.series.len());
            for (f, s) in run.series.iter().enumerate() {
                for (t, &v) in s.iter().enumerate() {
                    m[(t, f)] = norm01(v, ranges[f]);
                }
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfd(series: Vec<Vec<f64>>) -> RunFeatureData {
        let features = (0..series.len())
            .map(FeatureId::from_global_index)
            .collect();
        RunFeatureData { features, series }
    }

    #[test]
    fn global_ranges_span_all_runs() {
        let a = rfd(vec![vec![0.0, 1.0], vec![5.0, 5.0]]);
        let b = rfd(vec![vec![2.0, 3.0], vec![4.0, 6.0]]);
        let r = global_ranges(&[a, b]);
        assert_eq!(r[0], (0.0, 3.0));
        assert_eq!(r[1], (4.0, 6.0));
    }

    #[test]
    fn norm01_behaviour() {
        assert_eq!(norm01(5.0, (0.0, 10.0)), 0.5);
        assert_eq!(norm01(-1.0, (0.0, 10.0)), 0.0);
        assert_eq!(norm01(11.0, (0.0, 10.0)), 1.0);
        assert_eq!(norm01(7.0, (7.0, 7.0)), 0.0);
    }

    #[test]
    fn mts_normalizes_jointly() {
        let a = rfd(vec![vec![0.0, 10.0]]);
        let b = rfd(vec![vec![5.0, 20.0]]);
        let ms = mts(&[a, b]);
        // global range is [0, 20]
        assert_eq!(ms[0][(0, 0)], 0.0);
        assert_eq!(ms[0][(1, 0)], 0.5);
        assert_eq!(ms[1][(0, 0)], 0.25);
        assert_eq!(ms[1][(1, 0)], 1.0);
    }

    #[test]
    fn mts_allows_different_lengths_across_runs() {
        let a = rfd(vec![vec![0.0, 1.0, 2.0]]);
        let b = rfd(vec![vec![0.0, 2.0]]);
        let ms = mts(&[a, b]);
        assert_eq!(ms[0].rows(), 3);
        assert_eq!(ms[1].rows(), 2);
    }

    #[test]
    #[should_panic(expected = "equal observation counts")]
    fn mts_rejects_ragged_features_within_run() {
        let a = rfd(vec![vec![0.0, 1.0], vec![0.0]]);
        let _ = mts(&[a]);
    }

    #[test]
    fn representation_labels() {
        assert_eq!(Representation::Mts.label(), "MTS");
        assert_eq!(Representation::HistFp.label(), "Hist-FP");
        assert_eq!(Representation::PhaseFp.label(), "Phase-FP");
        assert_eq!(Representation::PlanEmbed.label(), "Plan-Embed");
    }

    #[test]
    fn representation_parse_roundtrips() {
        for repr in Representation::ALL {
            assert_eq!(Representation::parse(repr.short_name()), Some(repr));
        }
        assert_eq!(Representation::parse("nope"), None);
    }

    fn run_with_first_resource(values: &[f64]) -> wp_telemetry::ExperimentRun {
        use wp_telemetry::{PlanStats, ResourceSeries, RunKey};
        let rows: Vec<Vec<f64>> = values
            .iter()
            .map(|&v| {
                let mut row = vec![1.0; 7];
                row[0] = v;
                row
            })
            .collect();
        wp_telemetry::ExperimentRun {
            key: RunKey {
                workload: "w".into(),
                sku: "s".into(),
                terminals: 1,
                run_index: 0,
                data_group: 0,
            },
            resources: ResourceSeries::new(Matrix::from_rows(&rows), 1.0),
            plans: PlanStats::new(Matrix::from_rows(&[vec![0.5; 22]]), vec!["Q".into()]),
            throughput: 1.0,
            latency_ms: 1.0,
            per_query_latency_ms: vec![1.0],
        }
    }

    #[test]
    fn extract_log_transform_unchanged_for_non_negative_values() {
        // bit-level pin: non-negative telemetry (everything the paper's
        // features produce) must fingerprint exactly as before the
        // signed-log fix, -0.0 included
        let run = run_with_first_resource(&[0.0, -0.0, 0.5, 3.0, 1e7]);
        let features = [FeatureId::Resource(wp_telemetry::ResourceFeature::ALL[0])];
        let got = &extract(&run, &features).series[0];
        let expected: Vec<f64> = [0.0f64, -0.0, 0.5, 3.0, 1e7]
            .iter()
            .map(|v| (1.0 + v.max(0.0)).ln())
            .collect();
        let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        let expected_bits: Vec<u64> = expected.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, expected_bits);
    }

    #[test]
    fn extract_keeps_sign_of_negative_values() {
        // delta-valued features must not collapse to zero: the signed
        // log is odd, so -x and x land symmetrically around zero
        let run = run_with_first_resource(&[-3.0, 3.0, -0.25]);
        let features = [FeatureId::Resource(wp_telemetry::ResourceFeature::ALL[0])];
        let got = &extract(&run, &features).series[0];
        assert_eq!(got[0], -(4.0f64).ln());
        assert_eq!(got[1], (4.0f64).ln());
        assert_eq!(got[0], -got[1]);
        assert!(got[2] < 0.0, "small negatives must stay negative");
    }
}

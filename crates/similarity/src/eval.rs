//! Evaluation of similarity methods along the paper's three dimensions
//! (§5.2): reliability (1-NN accuracy, mean Average Precision),
//! discrimination power (NDCG), and robustness (spread across repeated
//! runs of the same workload).

use wp_linalg::Matrix;

fn check(d: &Matrix, labels: &[usize]) {
    assert_eq!(d.rows(), d.cols(), "distance matrix must be square");
    assert_eq!(d.rows(), labels.len(), "one label per item required");
}

/// 1-NN accuracy: the fraction of items whose nearest *other* item shares
/// their label — the paper's primary "correct (non-)match" criterion.
pub fn one_nn_accuracy(d: &Matrix, labels: &[usize]) -> f64 {
    check(d, labels);
    let n = d.rows();
    if n < 2 {
        return 0.0;
    }
    let mut hits = 0usize;
    for i in 0..n {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for j in 0..n {
            if j != i && d[(i, j)] < best_d {
                best_d = d[(i, j)];
                best = j;
            }
        }
        if labels[best] == labels[i] {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

/// Mean Average Precision: for each query item, rank all other items by
/// ascending distance and compute average precision over the positions of
/// same-label items; mAP is the mean over queries.
pub fn mean_average_precision(d: &Matrix, labels: &[usize]) -> f64 {
    check(d, labels);
    let n = d.rows();
    let mut total = 0.0;
    let mut queries = 0usize;
    for i in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        others.sort_by(|&a, &b| {
            d[(i, a)]
                .partial_cmp(&d[(i, b)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n_rel = others.iter().filter(|&&j| labels[j] == labels[i]).count();
        if n_rel == 0 {
            continue;
        }
        let mut found = 0usize;
        let mut ap = 0.0;
        for (rank, &j) in others.iter().enumerate() {
            if labels[j] == labels[i] {
                found += 1;
                ap += found as f64 / (rank + 1) as f64;
            }
        }
        total += ap / n_rel as f64;
        queries += 1;
    }
    if queries == 0 {
        0.0
    } else {
        total / queries as f64
    }
}

/// Normalized Discounted Cumulative Gain with graded relevance.
///
/// `relevance(i, j)` returns the gain of ranking item `j` for query `i`
/// (e.g. 2 = same workload, 1 = same workload type, 0 = unrelated). For
/// each query the items are ranked by ascending distance; NDCG@all is
/// averaged over queries. Rewards methods that put the most similar
/// workloads at the shortest distances (§5.2's discrimination power).
pub fn ndcg(d: &Matrix, relevance: impl Fn(usize, usize) -> f64) -> f64 {
    assert_eq!(d.rows(), d.cols(), "distance matrix must be square");
    let n = d.rows();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut queries = 0usize;
    for i in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        others.sort_by(|&a, &b| {
            d[(i, a)]
                .partial_cmp(&d[(i, b)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let dcg: f64 = others
            .iter()
            .enumerate()
            .map(|(rank, &j)| {
                let g = relevance(i, j);
                ((2.0_f64).powf(g) - 1.0) / ((rank + 2) as f64).log2()
            })
            .sum();
        let mut ideal: Vec<f64> = others.iter().map(|&j| relevance(i, j)).collect();
        ideal.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let idcg: f64 = ideal
            .iter()
            .enumerate()
            .map(|(rank, &g)| ((2.0_f64).powf(g) - 1.0) / ((rank + 2) as f64).log2())
            .sum();
        if idcg > 0.0 {
            total += dcg / idcg;
            queries += 1;
        }
    }
    if queries == 0 {
        0.0
    } else {
        total / queries as f64
    }
}

/// Robustness: for each label, the standard deviation of the pairwise
/// distances among its repeated runs, averaged over labels. Smaller means
/// the method produces stabler distances for re-executions of the same
/// workload (the error bars of Figures 5–6).
pub fn within_label_spread(d: &Matrix, labels: &[usize]) -> f64 {
    check(d, labels);
    let n_labels = labels.iter().max().map_or(0, |m| m + 1);
    let mut spreads = Vec::new();
    for l in 0..n_labels {
        let members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == l).collect();
        if members.len() < 3 {
            continue;
        }
        let mut dists = Vec::new();
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                dists.push(d[(i, j)]);
            }
        }
        spreads.push(wp_linalg::stats::stddev(&dists));
    }
    if spreads.is_empty() {
        0.0
    } else {
        wp_linalg::stats::mean(&spreads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix where items 0,1 and 2,3 form two tight clusters.
    fn clustered() -> (Matrix, Vec<usize>) {
        let d = Matrix::from_rows(&[
            vec![0.0, 0.1, 5.0, 5.1],
            vec![0.1, 0.0, 5.2, 5.0],
            vec![5.0, 5.2, 0.0, 0.2],
            vec![5.1, 5.0, 0.2, 0.0],
        ]);
        (d, vec![0, 0, 1, 1])
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let (d, labels) = clustered();
        assert_eq!(one_nn_accuracy(&d, &labels), 1.0);
        assert_eq!(mean_average_precision(&d, &labels), 1.0);
    }

    #[test]
    fn shuffled_labels_break_accuracy() {
        let (d, _) = clustered();
        let bad = vec![0, 1, 0, 1];
        assert_eq!(one_nn_accuracy(&d, &bad), 0.0);
        assert!(mean_average_precision(&d, &bad) < 1.0);
    }

    #[test]
    fn map_penalizes_partial_ordering() {
        // item 0's nearest is wrong-label but the next is right-label
        let d = Matrix::from_rows(&[
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 5.0],
            vec![2.0, 5.0, 0.0],
        ]);
        let labels = vec![0, 1, 0];
        let map = mean_average_precision(&d, &labels);
        assert!(map < 1.0 && map > 0.3, "map {map}");
    }

    #[test]
    fn ndcg_perfect_when_ranking_matches_relevance() {
        let (d, labels) = clustered();
        let rel = move |i: usize, j: usize| {
            if labels[i] == labels[j] {
                2.0
            } else {
                0.0
            }
        };
        assert!((ndcg(&d, rel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_detects_graded_misordering() {
        // query 0: j=1 has relevance 2, j=2 relevance 1; distances invert it
        let d = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![2.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ]);
        let rel = |i: usize, j: usize| match (i, j) {
            (0, 1) | (1, 0) => 2.0,
            (0, 2) | (2, 0) => 1.0,
            _ => 0.5,
        };
        let score = ndcg(&d, rel);
        assert!(score < 1.0, "ndcg {score}");
    }

    #[test]
    fn within_label_spread_zero_for_uniform_cluster() {
        let d = Matrix::from_rows(&[
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ]);
        assert_eq!(within_label_spread(&d, &[0, 0, 0]), 0.0);
    }

    #[test]
    fn within_label_spread_grows_with_inconsistency() {
        let tight = Matrix::from_rows(&[
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ]);
        let loose = Matrix::from_rows(&[
            vec![0.0, 0.1, 3.0],
            vec![0.1, 0.0, 6.0],
            vec![3.0, 6.0, 0.0],
        ]);
        let labels = vec![0, 0, 0];
        assert!(within_label_spread(&loose, &labels) > within_label_spread(&tight, &labels));
    }

    #[test]
    fn degenerate_inputs() {
        let d = Matrix::zeros(1, 1);
        assert_eq!(one_nn_accuracy(&d, &[0]), 0.0);
        assert_eq!(ndcg(&d, |_, _| 1.0), 0.0);
    }
}

//! Longest Common Sub-Sequence distance (§5.1.2).
//!
//! LCSS counts the longest sequence of (order-preserving) point matches
//! where two observations match when they are within `epsilon` of each
//! other; the distance is `1 − LCSS / min(m, n)`, in `[0, 1]`. The
//! dependent variant requires *all* dimensions to match simultaneously;
//! the independent variant averages per-dimension LCSS distances.

use wp_linalg::Matrix;

/// Per-thread rolling DP rows for the match-length recurrences,
/// provided via [`wp_runtime::scratch`] so repeated distance
/// evaluations reuse grown buffers instead of allocating per call.
#[derive(Default)]
struct LcssRows {
    prev: Vec<usize>,
    cur: Vec<usize>,
}

/// Per-thread column gathers for the independent variant (kept as a
/// separate scratch type from [`LcssRows`], which the nested
/// [`lcss_len`] call takes out while these stay borrowed).
#[derive(Default)]
struct LcssCols {
    a: Vec<f64>,
    b: Vec<f64>,
}

/// Gathers column `k` of a row-major matrix into `out`.
fn gather_col(m: &Matrix, k: usize, out: &mut Vec<f64>) {
    let (rows, cols) = m.shape();
    let data = m.as_slice();
    out.clear();
    out.extend((0..rows).map(|i| data[i * cols + k]));
}

/// Univariate LCSS match length with tolerance `epsilon`.
fn lcss_len(a: &[f64], b: &[f64], epsilon: f64) -> usize {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return 0;
    }
    wp_runtime::scratch::with(|rows: &mut LcssRows| {
        rows.prev.clear();
        rows.prev.resize(n + 1, 0);
        rows.cur.clear();
        rows.cur.resize(n + 1, 0);
        for i in 1..=m {
            for j in 1..=n {
                rows.cur[j] = if (a[i - 1] - b[j - 1]).abs() <= epsilon {
                    rows.prev[j - 1] + 1
                } else {
                    rows.prev[j].max(rows.cur[j - 1])
                };
            }
            std::mem::swap(&mut rows.prev, &mut rows.cur);
            rows.cur[0] = 0;
        }
        rows.prev[n]
    })
}

/// Univariate LCSS distance: `1 − len / min(m, n)`, in `[0, 1]`.
pub fn lcss(a: &[f64], b: &[f64], epsilon: f64) -> f64 {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let denom = a.len().min(b.len());
    if denom == 0 {
        return if a.len() == b.len() { 0.0 } else { 1.0 };
    }
    1.0 - lcss_len(a, b, epsilon) as f64 / denom as f64
}

/// Dependent multivariate LCSS: two time points match only when *every*
/// dimension is within `epsilon` (Chebyshev matching).
pub fn lcss_dependent(a: &Matrix, b: &Matrix, epsilon: f64) -> f64 {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    let (m, n) = (a.rows(), b.rows());
    let denom = m.min(n);
    if denom == 0 {
        return if m == n { 0.0 } else { 1.0 };
    }
    let matches = |i: usize, j: usize| {
        a.row(i)
            .iter()
            .zip(b.row(j))
            .all(|(x, y)| (x - y).abs() <= epsilon)
    };
    let len = wp_runtime::scratch::with(|rows: &mut LcssRows| {
        rows.prev.clear();
        rows.prev.resize(n + 1, 0);
        rows.cur.clear();
        rows.cur.resize(n + 1, 0);
        for i in 1..=m {
            for j in 1..=n {
                rows.cur[j] = if matches(i - 1, j - 1) {
                    rows.prev[j - 1] + 1
                } else {
                    rows.prev[j].max(rows.cur[j - 1])
                };
            }
            std::mem::swap(&mut rows.prev, &mut rows.cur);
            rows.cur[0] = 0;
        }
        rows.prev[n]
    });
    1.0 - len as f64 / denom as f64
}

/// Independent multivariate LCSS: mean of the per-dimension LCSS
/// distances, each dimension aligned separately.
/// Dimensions are aligned in parallel on the [`wp_runtime`] pool; the
/// per-dimension distances are averaged in dimension order, so the
/// result is bit-identical to a sequential loop.
pub fn lcss_independent(a: &Matrix, b: &Matrix, epsilon: f64) -> f64 {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    if a.cols() == 0 {
        return 0.0;
    }
    wp_runtime::par_map_indexed(a.cols(), |k| {
        wp_runtime::scratch::with(|cols: &mut LcssCols| {
            gather_col(a, k, &mut cols.a);
            gather_col(b, k, &mut cols.b);
            lcss(&cols.a, &cols.b, epsilon)
        })
    })
    .into_iter()
    .sum::<f64>()
        / a.cols() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(lcss(&a, &a, 0.01), 0.0);
    }

    #[test]
    fn disjoint_series_distance_one() {
        let a = [0.0, 0.0];
        let b = [10.0, 10.0];
        assert_eq!(lcss(&a, &b, 0.5), 1.0);
    }

    #[test]
    fn tolerance_enables_matching() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.05, 2.05, 3.05];
        assert_eq!(lcss(&a, &b, 0.1), 0.0);
        assert_eq!(lcss(&a, &b, 0.01), 1.0);
    }

    #[test]
    fn handles_different_lengths() {
        // b contains a as a subsequence → distance 0 w.r.t. min length
        let a = [1.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(lcss(&a, &b, 0.01), 0.0);
    }

    #[test]
    fn partial_overlap_fractional_distance() {
        let a = [1.0, 9.0];
        let b = [1.0, 2.0];
        assert!((lcss(&a, &b, 0.01) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dependent_needs_all_dimensions() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 9.0]]); // dim 1 mismatches
        assert_eq!(lcss_dependent(&a, &b, 0.1), 1.0);
        // independent: dim 0 matches (dist 0), dim 1 doesn't (dist 1)
        assert!((lcss_independent(&a, &b, 0.1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dependent_zero_for_identical() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(lcss_dependent(&a, &a, 0.01), 0.0);
        assert_eq!(lcss_independent(&a, &a, 0.01), 0.0);
    }

    #[test]
    fn distance_bounded_in_unit_interval() {
        let a = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let d = lcss_dependent(&a, &b, 0.2);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(lcss(&[], &[], 0.1), 0.0);
        assert_eq!(lcss(&[], &[1.0], 0.1), 1.0);
    }
}

//! Dynamic Time Warping (§5.1.2).
//!
//! The dependent variant builds one warping path over the multivariate
//! series using squared Euclidean point distances across all dimensions;
//! the independent variant warps each dimension separately and sums the
//! per-dimension distances (Shokoohi-Yekta et al. 2016). Both return the
//! square root of the accumulated squared cost so distances scale like
//! the data.

use wp_linalg::Matrix;

/// Univariate DTW: accumulated squared distance along the optimal path.
fn dtw_sq(a: &[f64], b: &[f64]) -> f64 {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { f64::INFINITY };
    }
    // rolling single-row DP
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for i in 1..=m {
        cur[0] = f64::INFINITY;
        for j in 1..=n {
            let d = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
            cur[j] = d + prev[j].min(cur[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Univariate DTW distance.
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    dtw_sq(a, b).sqrt()
}

/// Dependent multivariate DTW: one warping path, point distance
/// `Σ_k (A_ik − B_jk)²` across all `K` features.
pub fn dtw_dependent(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    let (m, n) = (a.rows(), b.rows());
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { f64::INFINITY };
    }
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for i in 1..=m {
        cur[0] = f64::INFINITY;
        let arow = a.row(i - 1);
        for j in 1..=n {
            let d = wp_linalg::ops::sq_dist(arow, b.row(j - 1));
            cur[j] = d + prev[j].min(cur[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n].sqrt()
}

/// Independent multivariate DTW: `Σ_k DTW(A₋ₖ, B₋ₖ)` — each dimension is
/// warped on its own, which tolerates uncorrelated feature dynamics.
///
/// Dimensions are aligned in parallel on the [`wp_runtime`] pool; the
/// per-dimension distances are summed in dimension order, so the result
/// is bit-identical to a sequential loop.
pub fn dtw_independent(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    wp_runtime::par_map_indexed(a.cols(), |k| dtw(&a.col(k), &b.col(k)))
        .into_iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn dtw_absorbs_time_stretching() {
        // b is a stretched version of a: DTW ≈ 0, Euclidean-style would not be
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert!(dtw(&a, &b) < 1e-9);
    }

    #[test]
    fn dtw_detects_level_difference() {
        let a = [0.0, 0.0, 0.0];
        let b = [5.0, 5.0, 5.0];
        assert!(dtw(&a, &b) > 5.0);
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a = [1.0, 2.0];
        let b = [1.0, 1.5, 2.0];
        assert!(dtw(&a, &b).is_finite());
    }

    #[test]
    fn dependent_zero_for_identical_matrices() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 1.0]]);
        assert_eq!(dtw_dependent(&a, &a), 0.0);
        assert_eq!(dtw_independent(&a, &a), 0.0);
    }

    #[test]
    fn independent_aligns_each_dimension_separately() {
        // Each dimension of `b` is a differently warped copy of the same
        // dimension of `a`. Warping each dimension on its own recovers a
        // perfect match (independent distance 0); a single shared path
        // cannot align both simultaneously (dependent distance > 0).
        let a = Matrix::from_rows(&[
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ]);
        let b = Matrix::from_rows(&[
            vec![0.0, 3.0],
            vec![0.0, 2.0],
            vec![1.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![3.0, 0.0],
        ]);
        let ind = dtw_independent(&a, &b);
        let dep = dtw_dependent(&a, &b);
        assert!(ind < 1e-9, "independent should align perfectly: {ind}");
        assert!(dep > 0.5, "dependent cannot: {dep}");
    }

    #[test]
    fn dependent_distance_monotone_in_perturbation() {
        let a = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let slight = Matrix::from_rows(&[vec![0.1], vec![1.1], vec![2.1]]);
        let big = Matrix::from_rows(&[vec![3.0], vec![4.0], vec![5.0]]);
        assert!(dtw_dependent(&a, &slight) < dtw_dependent(&a, &big));
    }

    #[test]
    fn empty_series_edge_cases() {
        assert_eq!(dtw(&[], &[]), 0.0);
        assert!(dtw(&[], &[1.0]).is_infinite());
    }

    #[test]
    #[should_panic(expected = "feature-count mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = dtw_dependent(&a, &b);
    }
}

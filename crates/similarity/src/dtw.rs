//! Dynamic Time Warping (§5.1.2) — UCR-suite-style kernels.
//!
//! The dependent variant builds one warping path over the multivariate
//! series using squared Euclidean point distances across all dimensions;
//! the independent variant warps each dimension separately and sums the
//! per-dimension distances (Shokoohi-Yekta et al. 2016). Both return the
//! square root of the accumulated squared cost so distances scale like
//! the data.
//!
//! Every variant also exists in a `*_banded` form taking an optional
//! Sakoe-Chiba window `w`: the warping path is restricted to cells with
//! `|i - j| <= max(w, |m - n|)` (the widening to the length difference
//! keeps the path connected for unequal-length series). `None` — or any
//! window at least as wide as the longer series — reproduces the
//! unconstrained distance bit-for-bit. The band is what makes the
//! LB_Keogh envelopes in `wp-index` tight: the envelope of a series under
//! window `w` lower-bounds exactly the `w`-banded distance.
//!
//! # Kernel layout
//!
//! The production kernels evaluate the recurrence along *anti-diagonals*
//! (`i + j = const`). Cells on one anti-diagonal have no data
//! dependencies on each other — each needs only the two previous
//! diagonals — so the inner loop is a straight elementwise map the
//! compiler can autovectorize, where the textbook row-by-row layout
//! serializes every cell on its left neighbor (`cur[j-1]`, a loop-carried
//! `min`+`add` chain). The band keeps only three short diagonal slices
//! live, and [`wp_runtime::scratch`] provides per-thread reusable buffers
//! so no allocation happens per call. Cell *values* are unchanged: every
//! cell still computes `d + min(up, left, diag)` over the same IEEE
//! operands (all non-negative or `+inf`, so `f64::min` is associative and
//! commutative here), which keeps the result bit-identical to the
//! reference implementation in [`naive`] — property-tested below.
//!
//! # Early abandoning
//!
//! The `*_ea` variants thread a caller-supplied upper bound (the current
//! k-th best distance of a top-k search) through the recurrence: every
//! warping path crosses at least one of any two consecutive
//! anti-diagonals, so once the minimum over both exceeds the bound the
//! final distance provably does too and the kernel returns
//! [`DtwResult::Abandoned`] without finishing the table. Whenever the
//! true distance is within the bound the result is bit-identical to the
//! full computation.

use wp_linalg::Matrix;

/// Outcome of an early-abandoning DTW evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DtwResult {
    /// The distance, bit-identical to the non-abandoning kernel.
    Exact(f64),
    /// The kernel proved the distance strictly exceeds the threshold and
    /// stopped early; no value is available (none is needed — the caller
    /// only ever discards abandoned candidates).
    Abandoned,
}

impl DtwResult {
    /// The exact distance, if the evaluation completed.
    pub fn exact(self) -> Option<f64> {
        match self {
            DtwResult::Exact(d) => Some(d),
            DtwResult::Abandoned => None,
        }
    }

    /// True when the kernel abandoned past the threshold.
    pub fn is_abandoned(self) -> bool {
        matches!(self, DtwResult::Abandoned)
    }
}

/// Effective Sakoe-Chiba half-width for series of lengths `m` and `n`:
/// the requested window, widened to the length difference so the DP
/// corridor always connects `(0, 0)` to `(m-1, n-1)`. `None` means
/// unconstrained.
fn effective_window(window: Option<usize>, m: usize, n: usize) -> usize {
    match window {
        Some(w) => w.max(m.abs_diff(n)),
        None => m.max(n),
    }
}

/// Three rotating anti-diagonal buffers (padded by one slot on each
/// side) — the only working memory a banded DTW needs. Each buffer
/// carries the slot span it last wrote, so rotation can invalidate
/// exactly the stale cells (everything outside a buffer's span is
/// `+inf` by invariant). Span tracking, rather than edge sentinels,
/// keeps the invariant through *empty* diagonals: an even band width
/// leaves every other anti-diagonal without in-band cells (the parity
/// of `i - j` matches the parity of `i + j`), and the warping path
/// skips them with a diagonal step.
#[derive(Default)]
struct DiagRows {
    d0: Vec<f64>,
    d1: Vec<f64>,
    d2: Vec<f64>,
    /// Written slot range (start, end-exclusive) of each buffer.
    s0: (usize, usize),
    s1: (usize, usize),
    s2: (usize, usize),
}

impl DiagRows {
    /// Resets all three buffers to `+inf` over `len` slots.
    fn reset(&mut self, len: usize) {
        for d in [&mut self.d0, &mut self.d1, &mut self.d2] {
            d.clear();
            d.resize(len, f64::INFINITY);
        }
        self.s0 = (0, 0);
        self.s1 = (0, 0);
        self.s2 = (0, 0);
    }

    /// Rotates `d2 <- d1 <- d0`, reusing the oldest buffer (three
    /// diagonals back) as the new output `d0` and erasing its stale
    /// span so leftover values can never leak in as neighbors.
    fn rotate(&mut self) {
        std::mem::swap(&mut self.d1, &mut self.d2);
        std::mem::swap(&mut self.s1, &mut self.s2);
        std::mem::swap(&mut self.d0, &mut self.d1);
        std::mem::swap(&mut self.s0, &mut self.s1);
        for slot in self.s0.0..self.s0.1 {
            self.d0[slot] = f64::INFINITY;
        }
        self.s0 = (0, 0);
    }
}

/// Per-thread DTW working memory, provided via [`wp_runtime::scratch`]
/// so repeated distance evaluations (the index cascade, distance
/// matrices) never touch the allocator.
#[derive(Default)]
struct DtwScratch {
    rows: DiagRows,
    /// Column gather for the left series (independent variant).
    acol: Vec<f64>,
    /// *Reversed* gather for the right series: along anti-diagonal
    /// `i + j = s` the `b` index decreases as `i` increases, so storing
    /// `b` reversed makes both inner-loop accesses unit-stride.
    brev: Vec<f64>,
}

/// The anti-diagonal index range on diagonal `s` for an `m x n` table
/// under band half-width `w`: intersects `0..m`, the diagonal itself,
/// and `|i - j| <= w`. Both endpoints are non-decreasing in `s` and move
/// by at most one per step — the invariant the sentinel slots rely on.
#[inline]
fn diag_range(s: usize, m: usize, n: usize, w: usize) -> (usize, usize) {
    let lo = s
        .saturating_sub(n - 1)
        .max(if s <= w { 0 } else { (s - w).div_ceil(2) });
    let hi = (m - 1).min(s).min((s + w) / 2);
    (lo, hi)
}

/// Banded DTW on the anti-diagonal layout: accumulated squared distance
/// along the optimal corridor-restricted path, or `None` when `ea`
/// proves the distance exceeds its threshold.
///
/// `brev` is the right-hand series *reversed*. `ea = (base, limit)`
/// abandons once `base + sqrt(min over two consecutive diagonals)`
/// strictly exceeds `limit` — `base` carries the already-accumulated
/// per-dimension sum of the independent variant (0 otherwise), and the
/// comparison happens after the square root / addition so the proof
/// survives floating-point rounding: the computed total is a monotone
/// function of this partial term.
fn dtw_sq_diag(
    a: &[f64],
    brev: &[f64],
    w: usize,
    ea: Option<(f64, f64)>,
    rows: &mut DiagRows,
) -> Option<f64> {
    let (m, n) = (a.len(), brev.len());
    debug_assert!(m >= 1 && n >= 1 && w >= m.abs_diff(n));
    rows.reset(m + 2);
    let seed = {
        let x = a[0] - brev[n - 1];
        x * x
    };
    rows.d0[1] = seed;
    rows.s0 = (1, 2);
    if m == 1 && n == 1 {
        return Some(seed);
    }
    let mut prev_min = seed;
    for s in 1..=(m + n - 2) {
        rows.rotate();
        let (lo, hi) = diag_range(s, m, n, w);
        if lo > hi {
            // No in-band cells on this diagonal (parity gap): paths
            // cross it with a diagonal step, so the diagonal before and
            // after still bound every path — drop this one from the EA
            // minimum.
            prev_min = f64::INFINITY;
            continue;
        }
        let cnt = hi - lo + 1;
        // cell i on this diagonal pairs a[i] with b[s-i] = brev[i+n-1-s]
        let boff = lo + n - 1 - s;
        let av = &a[lo..lo + cnt];
        let bv = &brev[boff..boff + cnt];
        // slot layout: cell i lives at index i+1; sentinels stay +inf
        let up = &rows.d1[lo..lo + cnt];
        let left = &rows.d1[lo + 1..lo + 1 + cnt];
        let diag = &rows.d2[lo..lo + cnt];
        let out = &mut rows.d0[lo + 1..lo + 1 + cnt];
        if let Some((base, limit)) = ea {
            let mut dmin = f64::INFINITY;
            for t in 0..cnt {
                let x = av[t] - bv[t];
                let v = x * x + up[t].min(left[t]).min(diag[t]);
                out[t] = v;
                dmin = dmin.min(v);
            }
            // Every warping path visits diagonal s or s+1 (steps advance
            // i+j by 1 or 2), and DP values are non-decreasing along a
            // path, so min(diag s-1, diag s) lower-bounds the final cell.
            if base + prev_min.min(dmin).sqrt() > limit {
                return None;
            }
            prev_min = dmin;
        } else {
            for t in 0..cnt {
                let x = av[t] - bv[t];
                out[t] = x * x + up[t].min(left[t]).min(diag[t]);
            }
        }
        rows.s0 = (lo + 1, hi + 2);
    }
    Some(rows.d0[m])
}

/// Dependent-variant kernel: same wavefront, point cost summed over all
/// feature dimensions with [`wp_linalg::ops::sq_dist`] (the identical
/// expression the naive path uses, so the summation order matches).
fn dtw_sq_diag_dependent(
    a: &Matrix,
    b: &Matrix,
    w: usize,
    ea: Option<(f64, f64)>,
    rows: &mut DiagRows,
) -> Option<f64> {
    let (m, n) = (a.rows(), b.rows());
    debug_assert!(m >= 1 && n >= 1 && w >= m.abs_diff(n));
    rows.reset(m + 2);
    let seed = wp_linalg::ops::sq_dist(a.row(0), b.row(0));
    rows.d0[1] = seed;
    rows.s0 = (1, 2);
    if m == 1 && n == 1 {
        return Some(seed);
    }
    let mut prev_min = seed;
    for s in 1..=(m + n - 2) {
        rows.rotate();
        let (lo, hi) = diag_range(s, m, n, w);
        if lo > hi {
            prev_min = f64::INFINITY;
            continue;
        }
        let cnt = hi - lo + 1;
        let up = &rows.d1[lo..lo + cnt];
        let left = &rows.d1[lo + 1..lo + 1 + cnt];
        let diag = &rows.d2[lo..lo + cnt];
        let out = &mut rows.d0[lo + 1..lo + 1 + cnt];
        let mut dmin = f64::INFINITY;
        for t in 0..cnt {
            let i = lo + t;
            let d = wp_linalg::ops::sq_dist(a.row(i), b.row(s - i));
            let v = d + up[t].min(left[t]).min(diag[t]);
            out[t] = v;
            dmin = dmin.min(v);
        }
        if let Some((base, limit)) = ea {
            if base + prev_min.min(dmin).sqrt() > limit {
                return None;
            }
            prev_min = dmin;
        }
        rows.s0 = (lo + 1, hi + 2);
    }
    Some(rows.d0[m])
}

/// Gathers column `k` of a row-major matrix into `out`.
fn gather_col(m: &Matrix, k: usize, out: &mut Vec<f64>) {
    let (rows, cols) = m.shape();
    let data = m.as_slice();
    out.clear();
    out.extend((0..rows).map(|i| data[i * cols + k]));
}

/// Gathers column `k` reversed (last row first) — the layout
/// [`dtw_sq_diag`] wants for the right-hand series.
fn gather_col_rev(m: &Matrix, k: usize, out: &mut Vec<f64>) {
    let (rows, cols) = m.shape();
    let data = m.as_slice();
    out.clear();
    out.extend((0..rows).rev().map(|i| data[i * cols + k]));
}

/// Univariate banded squared DTW through the scratch-backed wavefront
/// kernel. Handles the empty edge cases the kernel excludes.
fn dtw_sq_banded(a: &[f64], b: &[f64], window: Option<usize>) -> f64 {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { f64::INFINITY };
    }
    let w = effective_window(window, m, n);
    wp_runtime::scratch::with(|s: &mut DtwScratch| {
        s.brev.clear();
        s.brev.extend(b.iter().rev());
        dtw_sq_diag(a, &s.brev, w, None, &mut s.rows).expect("no threshold, never abandons")
    })
}

/// Univariate DTW distance.
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    dtw_banded(a, b, None)
}

/// Univariate DTW distance under an optional Sakoe-Chiba window.
pub fn dtw_banded(a: &[f64], b: &[f64], window: Option<usize>) -> f64 {
    dtw_sq_banded(a, b, window).sqrt()
}

/// Early-abandoning [`dtw_banded`]: returns [`DtwResult::Abandoned`]
/// once the distance provably exceeds `threshold` (strictly); otherwise
/// the exact distance, bit-identical to the full computation.
pub fn dtw_banded_ea(a: &[f64], b: &[f64], window: Option<usize>, threshold: f64) -> DtwResult {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        let d = if m == n { 0.0 } else { f64::INFINITY };
        return DtwResult::Exact(d);
    }
    let w = effective_window(window, m, n);
    wp_runtime::scratch::with(|s: &mut DtwScratch| {
        s.brev.clear();
        s.brev.extend(b.iter().rev());
        match dtw_sq_diag(a, &s.brev, w, Some((0.0, threshold)), &mut s.rows) {
            Some(sq) => DtwResult::Exact(sq.sqrt()),
            None => DtwResult::Abandoned,
        }
    })
}

/// Dependent multivariate DTW: one warping path, point distance
/// `Σ_k (A_ik − B_jk)²` across all `K` features.
pub fn dtw_dependent(a: &Matrix, b: &Matrix) -> f64 {
    dtw_dependent_banded(a, b, None)
}

/// [`dtw_dependent`] under an optional Sakoe-Chiba window.
pub fn dtw_dependent_banded(a: &Matrix, b: &Matrix, window: Option<usize>) -> f64 {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    let (m, n) = (a.rows(), b.rows());
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { f64::INFINITY };
    }
    let w = effective_window(window, m, n);
    wp_runtime::scratch::with(|s: &mut DtwScratch| {
        dtw_sq_diag_dependent(a, b, w, None, &mut s.rows)
            .expect("no threshold, never abandons")
            .sqrt()
    })
}

/// Early-abandoning [`dtw_dependent_banded`]; see [`dtw_banded_ea`].
pub fn dtw_dependent_banded_ea(
    a: &Matrix,
    b: &Matrix,
    window: Option<usize>,
    threshold: f64,
) -> DtwResult {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    let (m, n) = (a.rows(), b.rows());
    if m == 0 || n == 0 {
        let d = if m == n { 0.0 } else { f64::INFINITY };
        return DtwResult::Exact(d);
    }
    let w = effective_window(window, m, n);
    wp_runtime::scratch::with(|s: &mut DtwScratch| {
        match dtw_sq_diag_dependent(a, b, w, Some((0.0, threshold)), &mut s.rows) {
            Some(sq) => DtwResult::Exact(sq.sqrt()),
            None => DtwResult::Abandoned,
        }
    })
}

/// One dimension of the independent distance: column `k` warped on its
/// own through the wavefront kernel (squared; `ea` as in
/// [`dtw_sq_diag`]).
fn dtw_sq_col(a: &Matrix, b: &Matrix, k: usize, w: usize, ea: Option<(f64, f64)>) -> Option<f64> {
    wp_runtime::scratch::with(|s: &mut DtwScratch| {
        gather_col(a, k, &mut s.acol);
        gather_col_rev(b, k, &mut s.brev);
        dtw_sq_diag(&s.acol, &s.brev, w, ea, &mut s.rows)
    })
}

/// Independent multivariate DTW: `Σ_k DTW(A₋ₖ, B₋ₖ)` — each dimension is
/// warped on its own, which tolerates uncorrelated feature dynamics.
///
/// Dimensions are aligned in parallel on the [`wp_runtime`] pool; the
/// per-dimension distances are summed in dimension order, so the result
/// is bit-identical to a sequential loop.
pub fn dtw_independent(a: &Matrix, b: &Matrix) -> f64 {
    dtw_independent_banded(a, b, None)
}

/// [`dtw_independent`] under an optional Sakoe-Chiba window (the same
/// window constrains every dimension's path).
pub fn dtw_independent_banded(a: &Matrix, b: &Matrix, window: Option<usize>) -> f64 {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    let (m, n) = (a.rows(), b.rows());
    if m == 0 || n == 0 {
        if a.cols() == 0 {
            return 0.0;
        }
        let per_dim = if m == n { 0.0 } else { f64::INFINITY };
        return per_dim * a.cols() as f64;
    }
    let w = effective_window(window, m, n);
    wp_runtime::par_map_indexed(a.cols(), |k| {
        dtw_sq_col(a, b, k, w, None)
            .expect("no threshold, never abandons")
            .sqrt()
    })
    .into_iter()
    .sum()
}

/// Early-abandoning [`dtw_independent_banded`]: dimensions are evaluated
/// sequentially, each kernel seeing the sum accumulated so far, so the
/// whole evaluation stops as soon as the partial sum alone exceeds
/// `threshold`. Completed evaluations are bit-identical to the full
/// distance (same per-dimension kernel, same summation order).
pub fn dtw_independent_banded_ea(
    a: &Matrix,
    b: &Matrix,
    window: Option<usize>,
    threshold: f64,
) -> DtwResult {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    let (m, n) = (a.rows(), b.rows());
    if m == 0 || n == 0 {
        if a.cols() == 0 {
            return DtwResult::Exact(0.0);
        }
        let per_dim = if m == n { 0.0 } else { f64::INFINITY };
        return DtwResult::Exact(per_dim * a.cols() as f64);
    }
    let w = effective_window(window, m, n);
    let mut total = 0.0f64;
    for k in 0..a.cols() {
        match dtw_sq_col(a, b, k, w, Some((total, threshold))) {
            Some(sq) => total += sq.sqrt(),
            None => return DtwResult::Abandoned,
        }
    }
    DtwResult::Exact(total)
}

/// Reference implementations: the textbook rolling two-row evaluation of
/// the same recurrences, kept as the oracle the optimized wavefront
/// kernels are property-tested against (and as the sequential baseline
/// `exp_speedup` measures the production path's speedup over).
pub mod naive {
    use wp_linalg::Matrix;

    use super::effective_window;

    /// Univariate banded squared DTW, rolling-row layout.
    fn dtw_sq_banded(a: &[f64], b: &[f64], window: Option<usize>) -> f64 {
        let (m, n) = (a.len(), b.len());
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        let w = effective_window(window, m, n);
        // rolling single-row DP; cells outside the corridor stay +inf
        let mut prev = vec![f64::INFINITY; n + 1];
        let mut cur = vec![f64::INFINITY; n + 1];
        prev[0] = 0.0;
        for i in 1..=m {
            cur.fill(f64::INFINITY);
            let lo = i.saturating_sub(w).max(1);
            let hi = (i + w).min(n);
            for j in lo..=hi {
                let d = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
                cur[j] = d + prev[j].min(cur[j - 1]).min(prev[j - 1]);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[n]
    }

    /// Reference univariate DTW distance.
    pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
        dtw_banded(a, b, None)
    }

    /// Reference univariate banded DTW distance.
    pub fn dtw_banded(a: &[f64], b: &[f64], window: Option<usize>) -> f64 {
        dtw_sq_banded(a, b, window).sqrt()
    }

    /// Reference dependent multivariate DTW.
    pub fn dtw_dependent(a: &Matrix, b: &Matrix) -> f64 {
        dtw_dependent_banded(a, b, None)
    }

    /// Reference banded dependent multivariate DTW.
    pub fn dtw_dependent_banded(a: &Matrix, b: &Matrix, window: Option<usize>) -> f64 {
        assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
        let (m, n) = (a.rows(), b.rows());
        if m == 0 || n == 0 {
            return if m == n { 0.0 } else { f64::INFINITY };
        }
        let w = effective_window(window, m, n);
        let mut prev = vec![f64::INFINITY; n + 1];
        let mut cur = vec![f64::INFINITY; n + 1];
        prev[0] = 0.0;
        for i in 1..=m {
            cur.fill(f64::INFINITY);
            let arow = a.row(i - 1);
            let lo = i.saturating_sub(w).max(1);
            let hi = (i + w).min(n);
            for j in lo..=hi {
                let d = wp_linalg::ops::sq_dist(arow, b.row(j - 1));
                cur[j] = d + prev[j].min(cur[j - 1]).min(prev[j - 1]);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[n].sqrt()
    }

    /// Reference independent multivariate DTW (sequential over
    /// dimensions — this is the baseline, it must not use the pool).
    pub fn dtw_independent(a: &Matrix, b: &Matrix) -> f64 {
        dtw_independent_banded(a, b, None)
    }

    /// Reference banded independent multivariate DTW.
    pub fn dtw_independent_banded(a: &Matrix, b: &Matrix, window: Option<usize>) -> f64 {
        assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
        (0..a.cols())
            .map(|k| dtw_banded(&a.col(k), &b.col(k), window))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn dtw_absorbs_time_stretching() {
        // b is a stretched version of a: DTW ≈ 0, Euclidean-style would not be
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert!(dtw(&a, &b) < 1e-9);
    }

    #[test]
    fn dtw_detects_level_difference() {
        let a = [0.0, 0.0, 0.0];
        let b = [5.0, 5.0, 5.0];
        assert!(dtw(&a, &b) > 5.0);
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a = [1.0, 2.0];
        let b = [1.0, 1.5, 2.0];
        assert!(dtw(&a, &b).is_finite());
    }

    #[test]
    fn dependent_zero_for_identical_matrices() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 1.0]]);
        assert_eq!(dtw_dependent(&a, &a), 0.0);
        assert_eq!(dtw_independent(&a, &a), 0.0);
    }

    #[test]
    fn independent_aligns_each_dimension_separately() {
        // Each dimension of `b` is a differently warped copy of the same
        // dimension of `a`. Warping each dimension on its own recovers a
        // perfect match (independent distance 0); a single shared path
        // cannot align both simultaneously (dependent distance > 0).
        let a = Matrix::from_rows(&[
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ]);
        let b = Matrix::from_rows(&[
            vec![0.0, 3.0],
            vec![0.0, 2.0],
            vec![1.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![3.0, 0.0],
        ]);
        let ind = dtw_independent(&a, &b);
        let dep = dtw_dependent(&a, &b);
        assert!(ind < 1e-9, "independent should align perfectly: {ind}");
        assert!(dep > 0.5, "dependent cannot: {dep}");
    }

    #[test]
    fn dependent_distance_monotone_in_perturbation() {
        let a = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let slight = Matrix::from_rows(&[vec![0.1], vec![1.1], vec![2.1]]);
        let big = Matrix::from_rows(&[vec![3.0], vec![4.0], vec![5.0]]);
        assert!(dtw_dependent(&a, &slight) < dtw_dependent(&a, &big));
    }

    #[test]
    fn empty_series_edge_cases() {
        assert_eq!(dtw(&[], &[]), 0.0);
        assert!(dtw(&[], &[1.0]).is_infinite());
        assert_eq!(dtw_banded(&[], &[], Some(0)), 0.0);
        assert!(dtw_banded(&[], &[1.0], Some(0)).is_infinite());
        assert_eq!(dtw_banded_ea(&[], &[], None, 0.5), DtwResult::Exact(0.0));
        assert!(dtw_banded_ea(&[], &[1.0], None, 0.5)
            .exact()
            .unwrap()
            .is_infinite());
    }

    #[test]
    #[should_panic(expected = "feature-count mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = dtw_dependent(&a, &b);
    }

    /// Deterministic pseudo-random series for the banded tests.
    fn series(seed: u64, len: usize) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1_000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    fn mat(seed: u64, rows: usize, cols: usize) -> Matrix {
        Matrix::from_rows(
            &(0..rows)
                .map(|i| series(seed.wrapping_add(i as u64 * 131), cols))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn full_band_is_bit_identical_to_unbanded() {
        for seed in 0..8u64 {
            let a = series(seed, 23);
            let b = series(seed + 100, 31);
            let full = a.len().max(b.len());
            for w in [full, full + 5, usize::MAX / 2] {
                assert_eq!(dtw(&a, &b).to_bits(), dtw_banded(&a, &b, Some(w)).to_bits());
            }
            assert_eq!(dtw(&a, &b).to_bits(), dtw_banded(&a, &b, None).to_bits());
        }
    }

    #[test]
    fn banded_matrix_variants_match_unbanded_at_full_width() {
        let a = Matrix::from_rows(
            &(0..9)
                .map(|i| vec![series(i, 3)[0], i as f64])
                .collect::<Vec<_>>(),
        );
        let b = Matrix::from_rows(
            &(0..13)
                .map(|i| vec![series(i + 7, 3)[0], (i % 4) as f64])
                .collect::<Vec<_>>(),
        );
        let w = a.rows().max(b.rows());
        assert_eq!(
            dtw_dependent(&a, &b).to_bits(),
            dtw_dependent_banded(&a, &b, Some(w)).to_bits()
        );
        assert_eq!(
            dtw_independent(&a, &b).to_bits(),
            dtw_independent_banded(&a, &b, Some(w)).to_bits()
        );
    }

    #[test]
    fn narrower_band_never_decreases_distance() {
        for seed in 0..6u64 {
            let a = series(seed, 40);
            let b = series(seed + 50, 40);
            let mut last = f64::INFINITY;
            // widening the window can only relax the optimum
            for w in [0, 1, 2, 5, 10, 40] {
                let d = dtw_banded(&a, &b, Some(w));
                assert!(d <= last + 1e-12, "w={w}: {d} > {last}");
                last = d;
            }
            assert_eq!(last.to_bits(), dtw(&a, &b).to_bits());
        }
    }

    #[test]
    fn band_widens_to_length_difference_for_unequal_lengths() {
        // |m-n| = 3 > w = 0: the corridor must still reach the corner.
        let a = series(1, 10);
        let b = series(2, 13);
        assert!(dtw_banded(&a, &b, Some(0)).is_finite());
    }

    #[test]
    fn wavefront_kernel_is_bit_identical_to_naive() {
        // the core property: the production anti-diagonal kernel must
        // reproduce the rolling-row reference bit for bit, across
        // lengths (equal, unequal, tiny), seeds, and window widths
        for seed in 0..12u64 {
            for (la, lb) in [(1, 1), (1, 7), (17, 17), (23, 31), (40, 12)] {
                let a = series(seed, la);
                let b = series(seed + 777, lb);
                for window in [None, Some(0), Some(1), Some(3), Some(9), Some(64)] {
                    assert_eq!(
                        dtw_banded(&a, &b, window).to_bits(),
                        naive::dtw_banded(&a, &b, window).to_bits(),
                        "seed={seed} la={la} lb={lb} window={window:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn wavefront_matrix_kernels_are_bit_identical_to_naive() {
        for seed in 0..8u64 {
            for (ra, rb, c) in [(1, 1, 2), (9, 13, 3), (20, 20, 1), (16, 5, 4)] {
                let a = mat(seed, ra, c);
                let b = mat(seed + 991, rb, c);
                for window in [None, Some(0), Some(2), Some(8)] {
                    assert_eq!(
                        dtw_dependent_banded(&a, &b, window).to_bits(),
                        naive::dtw_dependent_banded(&a, &b, window).to_bits(),
                        "dependent seed={seed} {ra}x{c} vs {rb}x{c} w={window:?}"
                    );
                    assert_eq!(
                        dtw_independent_banded(&a, &b, window).to_bits(),
                        naive::dtw_independent_banded(&a, &b, window).to_bits(),
                        "independent seed={seed} {ra}x{c} vs {rb}x{c} w={window:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn early_abandoning_agrees_with_full_dtw_under_threshold() {
        // contract: threshold >= true distance ⇒ Exact with identical
        // bits; threshold < true distance ⇒ Abandoned, or Exact with
        // identical bits (the bound is not required to fire)
        fn check(full: f64, ea: &dyn Fn(f64) -> DtwResult) {
            for threshold in [full, full * 1.5, f64::INFINITY] {
                match ea(threshold) {
                    DtwResult::Exact(d) => assert_eq!(d.to_bits(), full.to_bits()),
                    DtwResult::Abandoned => {
                        panic!("abandoned although threshold {threshold} >= {full}")
                    }
                }
            }
            for threshold in [0.0, full * 0.5, full * 0.99] {
                match ea(threshold) {
                    DtwResult::Exact(d) => assert_eq!(d.to_bits(), full.to_bits()),
                    DtwResult::Abandoned => {} // correct: distance > threshold
                }
            }
        }
        for seed in 0..10u64 {
            let a = mat(seed, 18, 3);
            let b = mat(seed + 333, 22, 3);
            for window in [None, Some(4)] {
                check(dtw_dependent_banded(&a, &b, window), &|t| {
                    dtw_dependent_banded_ea(&a, &b, window, t)
                });
                check(dtw_independent_banded(&a, &b, window), &|t| {
                    dtw_independent_banded_ea(&a, &b, window, t)
                });
                check(dtw_banded(&a.col(0), &b.col(0), window), &|t| {
                    dtw_banded_ea(&a.col(0), &b.col(0), window, t)
                });
            }
        }
    }

    #[test]
    fn early_abandoning_fires_on_distant_series() {
        // far-apart series with a tiny threshold must actually abandon —
        // otherwise the EA path is dead weight
        let a = mat(1, 30, 2);
        let mut rows = Vec::new();
        for i in 0..30 {
            rows.push(vec![100.0 + i as f64, -50.0]);
        }
        let b = Matrix::from_rows(&rows);
        assert!(dtw_dependent_banded_ea(&a, &b, None, 1.0).is_abandoned());
        assert!(dtw_independent_banded_ea(&a, &b, None, 1.0).is_abandoned());
        assert!(dtw_banded_ea(&a.col(0), &b.col(0), None, 1.0).is_abandoned());
    }
}

//! Dynamic Time Warping (§5.1.2).
//!
//! The dependent variant builds one warping path over the multivariate
//! series using squared Euclidean point distances across all dimensions;
//! the independent variant warps each dimension separately and sums the
//! per-dimension distances (Shokoohi-Yekta et al. 2016). Both return the
//! square root of the accumulated squared cost so distances scale like
//! the data.
//!
//! Every variant also exists in a `*_banded` form taking an optional
//! Sakoe-Chiba window `w`: the warping path is restricted to cells with
//! `|i - j| <= max(w, |m - n|)` (the widening to the length difference
//! keeps the path connected for unequal-length series). `None` — or any
//! window at least as wide as the longer series — reproduces the
//! unconstrained distance bit-for-bit. The band is what makes the
//! LB_Keogh envelopes in `wp-index` tight: the envelope of a series under
//! window `w` lower-bounds exactly the `w`-banded distance.

use wp_linalg::Matrix;

/// Effective Sakoe-Chiba half-width for series of lengths `m` and `n`:
/// the requested window, widened to the length difference so the DP
/// corridor always connects `(0, 0)` to `(m-1, n-1)`. `None` means
/// unconstrained.
fn effective_window(window: Option<usize>, m: usize, n: usize) -> usize {
    match window {
        Some(w) => w.max(m.abs_diff(n)),
        None => m.max(n),
    }
}

/// Univariate banded DTW: accumulated squared distance along the optimal
/// path restricted to the Sakoe-Chiba corridor.
fn dtw_sq_banded(a: &[f64], b: &[f64], window: Option<usize>) -> f64 {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { f64::INFINITY };
    }
    let w = effective_window(window, m, n);
    // rolling single-row DP; cells outside the corridor stay +inf
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for i in 1..=m {
        cur.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(n);
        for j in lo..=hi {
            let d = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
            cur[j] = d + prev[j].min(cur[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Univariate DTW distance.
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    dtw_banded(a, b, None)
}

/// Univariate DTW distance under an optional Sakoe-Chiba window.
pub fn dtw_banded(a: &[f64], b: &[f64], window: Option<usize>) -> f64 {
    dtw_sq_banded(a, b, window).sqrt()
}

/// Dependent multivariate DTW: one warping path, point distance
/// `Σ_k (A_ik − B_jk)²` across all `K` features.
pub fn dtw_dependent(a: &Matrix, b: &Matrix) -> f64 {
    dtw_dependent_banded(a, b, None)
}

/// [`dtw_dependent`] under an optional Sakoe-Chiba window.
pub fn dtw_dependent_banded(a: &Matrix, b: &Matrix, window: Option<usize>) -> f64 {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    let (m, n) = (a.rows(), b.rows());
    if m == 0 || n == 0 {
        return if m == n { 0.0 } else { f64::INFINITY };
    }
    let w = effective_window(window, m, n);
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for i in 1..=m {
        cur.fill(f64::INFINITY);
        let arow = a.row(i - 1);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(n);
        for j in lo..=hi {
            let d = wp_linalg::ops::sq_dist(arow, b.row(j - 1));
            cur[j] = d + prev[j].min(cur[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n].sqrt()
}

/// Independent multivariate DTW: `Σ_k DTW(A₋ₖ, B₋ₖ)` — each dimension is
/// warped on its own, which tolerates uncorrelated feature dynamics.
///
/// Dimensions are aligned in parallel on the [`wp_runtime`] pool; the
/// per-dimension distances are summed in dimension order, so the result
/// is bit-identical to a sequential loop.
pub fn dtw_independent(a: &Matrix, b: &Matrix) -> f64 {
    dtw_independent_banded(a, b, None)
}

/// [`dtw_independent`] under an optional Sakoe-Chiba window (the same
/// window constrains every dimension's path).
pub fn dtw_independent_banded(a: &Matrix, b: &Matrix, window: Option<usize>) -> f64 {
    assert_eq!(a.cols(), b.cols(), "feature-count mismatch");
    wp_runtime::par_map_indexed(a.cols(), |k| dtw_banded(&a.col(k), &b.col(k), window))
        .into_iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn dtw_absorbs_time_stretching() {
        // b is a stretched version of a: DTW ≈ 0, Euclidean-style would not be
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert!(dtw(&a, &b) < 1e-9);
    }

    #[test]
    fn dtw_detects_level_difference() {
        let a = [0.0, 0.0, 0.0];
        let b = [5.0, 5.0, 5.0];
        assert!(dtw(&a, &b) > 5.0);
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a = [1.0, 2.0];
        let b = [1.0, 1.5, 2.0];
        assert!(dtw(&a, &b).is_finite());
    }

    #[test]
    fn dependent_zero_for_identical_matrices() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 1.0]]);
        assert_eq!(dtw_dependent(&a, &a), 0.0);
        assert_eq!(dtw_independent(&a, &a), 0.0);
    }

    #[test]
    fn independent_aligns_each_dimension_separately() {
        // Each dimension of `b` is a differently warped copy of the same
        // dimension of `a`. Warping each dimension on its own recovers a
        // perfect match (independent distance 0); a single shared path
        // cannot align both simultaneously (dependent distance > 0).
        let a = Matrix::from_rows(&[
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ]);
        let b = Matrix::from_rows(&[
            vec![0.0, 3.0],
            vec![0.0, 2.0],
            vec![1.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![3.0, 0.0],
        ]);
        let ind = dtw_independent(&a, &b);
        let dep = dtw_dependent(&a, &b);
        assert!(ind < 1e-9, "independent should align perfectly: {ind}");
        assert!(dep > 0.5, "dependent cannot: {dep}");
    }

    #[test]
    fn dependent_distance_monotone_in_perturbation() {
        let a = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let slight = Matrix::from_rows(&[vec![0.1], vec![1.1], vec![2.1]]);
        let big = Matrix::from_rows(&[vec![3.0], vec![4.0], vec![5.0]]);
        assert!(dtw_dependent(&a, &slight) < dtw_dependent(&a, &big));
    }

    #[test]
    fn empty_series_edge_cases() {
        assert_eq!(dtw(&[], &[]), 0.0);
        assert!(dtw(&[], &[1.0]).is_infinite());
        assert_eq!(dtw_banded(&[], &[], Some(0)), 0.0);
        assert!(dtw_banded(&[], &[1.0], Some(0)).is_infinite());
    }

    #[test]
    #[should_panic(expected = "feature-count mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = dtw_dependent(&a, &b);
    }

    /// Deterministic pseudo-random series for the banded tests.
    fn series(seed: u64, len: usize) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1_000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn full_band_is_bit_identical_to_unbanded() {
        for seed in 0..8u64 {
            let a = series(seed, 23);
            let b = series(seed + 100, 31);
            let full = a.len().max(b.len());
            for w in [full, full + 5, usize::MAX / 2] {
                assert_eq!(dtw(&a, &b).to_bits(), dtw_banded(&a, &b, Some(w)).to_bits());
            }
            assert_eq!(dtw(&a, &b).to_bits(), dtw_banded(&a, &b, None).to_bits());
        }
    }

    #[test]
    fn banded_matrix_variants_match_unbanded_at_full_width() {
        let a = Matrix::from_rows(
            &(0..9)
                .map(|i| vec![series(i, 3)[0], i as f64])
                .collect::<Vec<_>>(),
        );
        let b = Matrix::from_rows(
            &(0..13)
                .map(|i| vec![series(i + 7, 3)[0], (i % 4) as f64])
                .collect::<Vec<_>>(),
        );
        let w = a.rows().max(b.rows());
        assert_eq!(
            dtw_dependent(&a, &b).to_bits(),
            dtw_dependent_banded(&a, &b, Some(w)).to_bits()
        );
        assert_eq!(
            dtw_independent(&a, &b).to_bits(),
            dtw_independent_banded(&a, &b, Some(w)).to_bits()
        );
    }

    #[test]
    fn narrower_band_never_decreases_distance() {
        for seed in 0..6u64 {
            let a = series(seed, 40);
            let b = series(seed + 50, 40);
            let mut last = f64::INFINITY;
            // widening the window can only relax the optimum
            for w in [0, 1, 2, 5, 10, 40] {
                let d = dtw_banded(&a, &b, Some(w));
                assert!(d <= last + 1e-12, "w={w}: {d} > {last}");
                last = d;
            }
            assert_eq!(last.to_bits(), dtw(&a, &b).to_bits());
        }
    }

    #[test]
    fn band_widens_to_length_difference_for_unequal_lengths() {
        // |m-n| = 3 > w = 0: the corridor must still reach the corner.
        let a = series(1, 10);
        let b = series(2, 13);
        assert!(dtw_banded(&a, &b, Some(0)).is_finite());
    }
}

//! Matrix-norm distances between equally-shaped fingerprint matrices
//! (§5.1.2): L1,1, L2,1, Frobenius, Canberra, Chi-square, and the
//! correlation distance. All run in time linear in the matrix size.

use wp_linalg::Matrix;

fn check_shapes(a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "norm-based distances need equally shaped matrices"
    );
}

/// L1,1 norm of the difference: `Σᵢⱼ |aᵢⱼ − bᵢⱼ|`.
pub fn l11(a: &Matrix, b: &Matrix) -> f64 {
    check_shapes(a, b);
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .sum()
}

/// L2,1 norm of the difference: the sum over *columns* of the Euclidean
/// norm of the column difference, `Σⱼ ‖a₋ⱼ − b₋ⱼ‖₂`.
///
/// Fingerprint matrices keep one feature per column, so this norm
/// aggregates a per-feature Euclidean distance — the interpretation the
/// paper's experiments rely on.
pub fn l21(a: &Matrix, b: &Matrix) -> f64 {
    check_shapes(a, b);
    (0..a.cols())
        .map(|j| {
            (0..a.rows())
                .map(|i| {
                    let d = a[(i, j)] - b[(i, j)];
                    d * d
                })
                .sum::<f64>()
                .sqrt()
        })
        .sum()
}

/// Frobenius norm of the difference: `√(Σᵢⱼ (aᵢⱼ − bᵢⱼ)²)`.
pub fn frobenius(a: &Matrix, b: &Matrix) -> f64 {
    check_shapes(a, b);
    a.sub(b).frobenius_norm()
}

/// Canberra distance: `Σᵢⱼ |aᵢⱼ − bᵢⱼ| / (|aᵢⱼ| + |bᵢⱼ|)`, skipping
/// entries where both operands are zero.
pub fn canberra(a: &Matrix, b: &Matrix) -> f64 {
    check_shapes(a, b);
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| {
            let denom = x.abs() + y.abs();
            if denom > 0.0 {
                (x - y).abs() / denom
            } else {
                0.0
            }
        })
        .sum()
}

/// Chi-square distance: `Σᵢⱼ (aᵢⱼ − bᵢⱼ)² / (aᵢⱼ + bᵢⱼ)`, skipping
/// entries where the sum is zero. Intended for non-negative histogram
/// entries.
pub fn chi2(a: &Matrix, b: &Matrix) -> f64 {
    check_shapes(a, b);
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| {
            let denom = x + y;
            if denom.abs() > 1e-12 {
                (x - y) * (x - y) / denom
            } else {
                0.0
            }
        })
        .sum()
}

/// Correlation distance: `1 − ρ(vec(A), vec(B))` where ρ is the Pearson
/// correlation of the flattened matrices; `0` for perfectly linearly
/// related fingerprints, up to `2` for anti-correlated ones.
pub fn correlation(a: &Matrix, b: &Matrix) -> f64 {
    check_shapes(a, b);
    1.0 - wp_linalg::stats::pearson(a.as_slice(), b.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn identical_matrices_have_zero_distance() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(l11(&a, &a), 0.0);
        assert_eq!(l21(&a, &a), 0.0);
        assert_eq!(frobenius(&a, &a), 0.0);
        assert_eq!(canberra(&a, &a), 0.0);
        assert_eq!(chi2(&a, &a), 0.0);
        assert!(correlation(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn l11_hand_computed() {
        let a = m(&[vec![1.0, 2.0]]);
        let b = m(&[vec![0.0, 4.0]]);
        assert_eq!(l11(&a, &b), 3.0);
    }

    #[test]
    fn l21_sums_column_norms() {
        let a = m(&[vec![0.0, 0.0], vec![0.0, 0.0]]);
        let b = m(&[vec![3.0, 1.0], vec![4.0, 0.0]]);
        // column 0 norm = 5, column 1 norm = 1
        assert!((l21(&a, &b) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_hand_computed() {
        let a = m(&[vec![0.0, 0.0]]);
        let b = m(&[vec![3.0, 4.0]]);
        assert!((frobenius(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn canberra_is_scale_sensitive_near_zero() {
        let a = m(&[vec![0.01]]);
        let b = m(&[vec![0.02]]);
        let c = m(&[vec![100.0]]);
        let d = m(&[vec![101.0]]);
        // same absolute diff magnitude matters more near zero
        assert!(canberra(&a, &b) > canberra(&c, &d));
    }

    #[test]
    fn chi2_skips_zero_denominators() {
        let a = m(&[vec![0.0, 1.0]]);
        let b = m(&[vec![0.0, 3.0]]);
        assert!((chi2(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_distance_range() {
        let a = m(&[vec![1.0, 2.0, 3.0]]);
        let b = m(&[vec![2.0, 4.0, 6.0]]); // perfectly correlated
        assert!(correlation(&a, &b).abs() < 1e-12);
        let c = m(&[vec![3.0, 2.0, 1.0]]); // anti-correlated
        assert!((correlation(&a, &c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_like_ordering() {
        // a closer to b than to c in all norms
        let a = m(&[vec![1.0, 1.0]]);
        let b = m(&[vec![1.1, 1.0]]);
        let c = m(&[vec![5.0, 9.0]]);
        for f in [l11, l21, frobenius, canberra, chi2] {
            assert!(f(&a, &b) < f(&a, &c));
        }
    }

    #[test]
    #[should_panic(expected = "equally shaped")]
    fn shape_mismatch_panics() {
        let a = m(&[vec![1.0]]);
        let b = m(&[vec![1.0, 2.0]]);
        let _ = l11(&a, &b);
    }
}

//! The representation strategy trait.
//!
//! Historically every consumer of the similarity pipeline (wp-core's
//! `CorpusIndex`, wp-stream's live references, the server's `/similar`
//! and `/fingerprint` handlers) matched on [`Representation`] and called
//! the per-representation primitives directly, so adding a fourth
//! representation meant touching every match arm. [`Fingerprinter`]
//! packages the two construction modes every representation needs:
//!
//! * **joint** ([`Fingerprinter::fingerprints`]) — the paper's semantics:
//!   normalization state (global ranges, phase counts, encoder weights)
//!   is derived from exactly the runs being compared, so a fingerprint
//!   depends on the whole closed set.
//! * **corpus-stable** ([`Fingerprinter::fit`] then
//!   [`Fingerprinter::fingerprint`]) — the state is frozen over a
//!   reference corpus once; afterwards a query's fingerprint depends only
//!   on the frozen state and the query itself. This is what makes
//!   incremental index inserts byte-identical to full rebuilds.
//!
//! The three paper representations delegate to the existing primitives
//! ([`crate::repr::mts`], [`crate::histfp`], [`crate::phasefp`]) so the
//! trait adds dispatch, not new numerics: outputs are bit-identical to
//! the pre-trait pipeline. [`Representation::PlanEmbed`] is the learned
//! fourth representation — a seeded autoencoder over per-query
//! plan-statistic vectors whose bottleneck mean is the fingerprint.

use std::sync::Arc;

use wp_linalg::Matrix;
use wp_ml::autoencoder::{Autoencoder, AutoencoderConfig};
use wp_telemetry::FeatureId;

use crate::bcpd::segments;
use crate::histfp::{histfp, histfp_with_ranges, DEFAULT_BINS};
use crate::measure::Measure;
use crate::phasefp::{phasefp, PhaseFpConfig};
use crate::repr::{global_ranges, mts, norm01, Representation, RunFeatureData};

/// Construction parameters for every representation, so call sites can
/// carry one config regardless of which representation is selected.
#[derive(Debug, Clone)]
pub struct FingerprintConfig {
    /// Histogram bin count (Hist-FP).
    pub nbins: usize,
    /// Phase segmentation and statistics (Phase-FP).
    pub phase: PhaseFpConfig,
    /// Autoencoder hyper-parameters (Plan-Embed).
    pub embed: AutoencoderConfig,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        Self {
            nbins: DEFAULT_BINS,
            phase: PhaseFpConfig::default(),
            embed: AutoencoderConfig::default(),
        }
    }
}

/// One data representation's fingerprint constructor (see the module
/// docs for the joint vs. corpus-stable contract).
pub trait Fingerprinter: Send + Sync {
    /// Which representation this builds.
    fn representation(&self) -> Representation;

    /// Freezes corpus-dependent state (ranges, phase counts, encoder
    /// weights) over the reference corpus.
    fn fit(&mut self, corpus: &[RunFeatureData]);

    /// True once [`Fingerprinter::fit`] (or an equivalent pre-frozen
    /// constructor) has supplied corpus state.
    fn is_fitted(&self) -> bool;

    /// Corpus-stable fingerprint of one run under the frozen state.
    ///
    /// # Panics
    ///
    /// Panics when called before [`Fingerprinter::fit`].
    fn fingerprint(&self, run: &RunFeatureData) -> Matrix;

    /// Joint fingerprints over a closed set of runs (the paper's
    /// semantics: normalization state derived from exactly these runs).
    fn fingerprints(&self, data: &[RunFeatureData]) -> Vec<Matrix>;

    /// Whether `measure` is meaningful for this representation's
    /// fingerprints — lets builders fail fast with a clear error instead
    /// of a shape panic deep in a distance kernel.
    fn supports_measure(&self, measure: Measure) -> bool;

    /// The frozen per-feature `(lo, hi)` ranges, for range-normalized
    /// representations; `None` for learned representations whose frozen
    /// state is model weights.
    fn frozen_ranges(&self) -> Option<&[(f64, f64)]> {
        None
    }
}

/// Builds the fingerprinter for a representation. The result is
/// unfitted; call [`Fingerprinter::fit`] (or use [`fitted`]) before
/// asking for corpus-stable fingerprints.
pub fn fingerprinter(repr: Representation, config: &FingerprintConfig) -> Box<dyn Fingerprinter> {
    match repr {
        Representation::Mts => Box::new(MtsFingerprinter::new()),
        Representation::HistFp => Box::new(HistFpFingerprinter::new(config.nbins)),
        Representation::PhaseFp => Box::new(PhaseFpFingerprinter::new(config.phase.clone())),
        Representation::PlanEmbed => Box::new(PlanEmbedFingerprinter::new(config.embed.clone())),
    }
}

/// Builds and fits a fingerprinter over a corpus in one step, returning
/// it frozen behind an `Arc` so index builders and rebuilders can share
/// the identical state.
pub fn fitted(
    repr: Representation,
    config: &FingerprintConfig,
    corpus: &[RunFeatureData],
) -> Arc<dyn Fingerprinter> {
    let mut fp = fingerprinter(repr, config);
    fp.fit(corpus);
    Arc::from(fp)
}

/// Raw MTS: globally min-max-normalized `samples × features` matrices.
#[derive(Debug, Clone, Default)]
pub struct MtsFingerprinter {
    ranges: Option<Vec<(f64, f64)>>,
}

impl MtsFingerprinter {
    /// An unfitted MTS fingerprinter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Fingerprinter for MtsFingerprinter {
    fn representation(&self) -> Representation {
        Representation::Mts
    }

    fn fit(&mut self, corpus: &[RunFeatureData]) {
        self.ranges = Some(global_ranges(corpus));
    }

    fn is_fitted(&self) -> bool {
        self.ranges.is_some()
    }

    fn fingerprint(&self, run: &RunFeatureData) -> Matrix {
        let ranges = self.ranges.as_ref().expect("MTS fingerprinter not fitted");
        assert_eq!(
            run.series.len(),
            ranges.len(),
            "run feature count must match the frozen ranges"
        );
        let n = run.series.first().map_or(0, Vec::len);
        for (i, s) in run.series.iter().enumerate() {
            assert_eq!(
                s.len(),
                n,
                "MTS requires equal observation counts (feature {i})"
            );
        }
        let mut m = Matrix::zeros(n, run.series.len());
        for (f, s) in run.series.iter().enumerate() {
            for (t, &v) in s.iter().enumerate() {
                m[(t, f)] = norm01(v, ranges[f]);
            }
        }
        m
    }

    fn fingerprints(&self, data: &[RunFeatureData]) -> Vec<Matrix> {
        mts(data)
    }

    fn supports_measure(&self, _measure: Measure) -> bool {
        // elastic measures are MTS's home turf; norms additionally need
        // equal sample counts, which the index validates at build time
        true
    }

    fn frozen_ranges(&self) -> Option<&[(f64, f64)]> {
        self.ranges.as_deref()
    }
}

/// Hist-FP: cumulative equi-width histograms over shared bin ranges.
#[derive(Debug, Clone)]
pub struct HistFpFingerprinter {
    nbins: usize,
    ranges: Option<Vec<(f64, f64)>>,
}

impl HistFpFingerprinter {
    /// An unfitted Hist-FP fingerprinter with the given bin count.
    pub fn new(nbins: usize) -> Self {
        assert!(nbins > 0, "need at least one bin");
        Self {
            nbins,
            ranges: None,
        }
    }

    /// A Hist-FP fingerprinter pre-frozen with caller-supplied ranges
    /// (the corpus-stable state an index persists across rebuilds).
    pub fn with_frozen_ranges(nbins: usize, ranges: Vec<(f64, f64)>) -> Self {
        assert!(nbins > 0, "need at least one bin");
        Self {
            nbins,
            ranges: Some(ranges),
        }
    }

    /// Histogram bin count.
    pub fn nbins(&self) -> usize {
        self.nbins
    }
}

impl Fingerprinter for HistFpFingerprinter {
    fn representation(&self) -> Representation {
        Representation::HistFp
    }

    fn fit(&mut self, corpus: &[RunFeatureData]) {
        self.ranges = Some(global_ranges(corpus));
    }

    fn is_fitted(&self) -> bool {
        self.ranges.is_some()
    }

    fn fingerprint(&self, run: &RunFeatureData) -> Matrix {
        let ranges = self
            .ranges
            .as_ref()
            .expect("Hist-FP fingerprinter not fitted");
        histfp_with_ranges(std::slice::from_ref(run), ranges, self.nbins)
            .pop()
            .expect("one run in, one fingerprint out")
    }

    fn fingerprints(&self, data: &[RunFeatureData]) -> Vec<Matrix> {
        histfp(data, self.nbins)
    }

    fn supports_measure(&self, _measure: Measure) -> bool {
        true
    }

    fn frozen_ranges(&self) -> Option<&[(f64, f64)]> {
        self.ranges.as_deref()
    }
}

/// Phase-FP: BCPD phase statistics over globally normalized series.
#[derive(Debug, Clone)]
pub struct PhaseFpFingerprinter {
    config: PhaseFpConfig,
    ranges: Option<Vec<(f64, f64)>>,
    max_phases: usize,
}

impl PhaseFpFingerprinter {
    /// An unfitted Phase-FP fingerprinter.
    pub fn new(config: PhaseFpConfig) -> Self {
        Self {
            config,
            ranges: None,
            max_phases: 1,
        }
    }

    /// Segments one normalized series, respecting the single-phase rule
    /// for plan features.
    fn segment(&self, feature: FeatureId, normed: Vec<f64>) -> Vec<Vec<f64>> {
        if matches!(feature, FeatureId::Plan(_)) {
            vec![normed]
        } else {
            segments(&normed, &self.config.bcpd)
                .into_iter()
                .map(<[f64]>::to_vec)
                .collect()
        }
    }
}

impl Fingerprinter for PhaseFpFingerprinter {
    fn representation(&self) -> Representation {
        Representation::PhaseFp
    }

    fn fit(&mut self, corpus: &[RunFeatureData]) {
        let ranges = global_ranges(corpus);
        let mut max_phases = 1usize;
        for run in corpus {
            for (f, series) in run.series.iter().enumerate() {
                let normed: Vec<f64> = series.iter().map(|&v| norm01(v, ranges[f])).collect();
                max_phases = max_phases.max(self.segment(run.features[f], normed).len());
            }
        }
        self.ranges = Some(ranges);
        self.max_phases = max_phases;
    }

    fn is_fitted(&self) -> bool {
        self.ranges.is_some()
    }

    fn fingerprint(&self, run: &RunFeatureData) -> Matrix {
        let ranges = self
            .ranges
            .as_ref()
            .expect("Phase-FP fingerprinter not fitted");
        assert_eq!(
            run.series.len(),
            ranges.len(),
            "run feature count must match the frozen ranges"
        );
        let n_stats = self.config.stats.len();
        let mut m = Matrix::zeros(run.series.len(), self.max_phases * n_stats);
        for (f, series) in run.series.iter().enumerate() {
            let normed: Vec<f64> = series.iter().map(|&v| norm01(v, ranges[f])).collect();
            let mut segs = self.segment(run.features[f], normed);
            // a query noisier than anything in the corpus may segment
            // into more phases than the frozen dimension; overflow is
            // merged into the final retained phase so no observation is
            // dropped and the shape stays corpus-stable
            if segs.len() > self.max_phases {
                let overflow: Vec<f64> = segs.drain(self.max_phases..).flatten().collect();
                segs[self.max_phases - 1].extend(overflow);
            }
            for (p, seg) in segs.iter().enumerate() {
                for (s, stat) in self.config.stats.iter().enumerate() {
                    m[(f, p * n_stats + s)] = stat.eval(seg);
                }
            }
        }
        m
    }

    fn fingerprints(&self, data: &[RunFeatureData]) -> Vec<Matrix> {
        phasefp(data, &self.config)
    }

    fn supports_measure(&self, _measure: Measure) -> bool {
        true
    }

    fn frozen_ranges(&self) -> Option<&[(f64, f64)]> {
        self.ranges.as_deref()
    }
}

/// Plan-Embed: the mean bottleneck embedding of a run's per-query
/// plan-statistic vectors under a seeded autoencoder.
///
/// The frozen corpus state is the trained encoder itself: `fit` collects
/// every per-query plan vector in the corpus into one training matrix
/// and trains the autoencoder on it (sequential full-batch Adam, so the
/// weights are bit-identical on any thread count). A query's fingerprint
/// then depends only on those weights and the query's own rows — the
/// corpus-stable contract. The `1 × bottleneck` fingerprint is a plain
/// vector, so the metric-norm stages of the pruning cascade (pivots,
/// PAA) apply to it directly.
#[derive(Debug, Clone)]
pub struct PlanEmbedFingerprinter {
    config: AutoencoderConfig,
    encoder: Option<Autoencoder>,
}

impl PlanEmbedFingerprinter {
    /// An unfitted Plan-Embed fingerprinter.
    pub fn new(config: AutoencoderConfig) -> Self {
        Self {
            config,
            encoder: None,
        }
    }

    /// Transposes a run's plan-feature series into per-query rows.
    ///
    /// # Panics
    ///
    /// Panics when the run carries no plan features (Plan-Embed needs
    /// plan statistics) or the plan series are ragged.
    fn plan_rows(run: &RunFeatureData) -> Vec<Vec<f64>> {
        let plan_idx: Vec<usize> = run
            .features
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, FeatureId::Plan(_)))
            .map(|(i, _)| i)
            .collect();
        assert!(
            !plan_idx.is_empty(),
            "Plan-Embed requires at least one plan feature in the feature set"
        );
        let n = run.series[plan_idx[0]].len();
        for &i in &plan_idx {
            assert_eq!(
                run.series[i].len(),
                n,
                "plan features must share the per-query observation count"
            );
        }
        (0..n)
            .map(|q| plan_idx.iter().map(|&i| run.series[i][q]).collect())
            .collect()
    }
}

impl Fingerprinter for PlanEmbedFingerprinter {
    fn representation(&self) -> Representation {
        Representation::PlanEmbed
    }

    fn fit(&mut self, corpus: &[RunFeatureData]) {
        assert!(!corpus.is_empty(), "need at least one run");
        let mut rows = Vec::new();
        for run in corpus {
            rows.extend(Self::plan_rows(run));
        }
        let mut encoder = Autoencoder::new(self.config.clone());
        encoder.fit(&Matrix::from_rows(&rows));
        self.encoder = Some(encoder);
    }

    fn is_fitted(&self) -> bool {
        self.encoder.is_some()
    }

    fn fingerprint(&self, run: &RunFeatureData) -> Matrix {
        let encoder = self
            .encoder
            .as_ref()
            .expect("Plan-Embed fingerprinter not fitted");
        let rows = Self::plan_rows(run);
        let k = encoder.bottleneck();
        let mut mean = vec![0.0; k];
        for row in &rows {
            for (m, v) in mean.iter_mut().zip(encoder.encode(row)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= rows.len() as f64;
        }
        Matrix::from_rows(&[mean])
    }

    fn fingerprints(&self, data: &[RunFeatureData]) -> Vec<Matrix> {
        let mut fresh = Self::new(self.config.clone());
        fresh.fit(data);
        data.iter().map(|run| fresh.fingerprint(run)).collect()
    }

    fn supports_measure(&self, measure: Measure) -> bool {
        // a single-row embedding has no time axis for DTW/LCSS to warp
        matches!(measure, Measure::Norm(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_telemetry::{PlanFeature, ResourceFeature};

    fn resource_run(series: Vec<Vec<f64>>) -> RunFeatureData {
        let features = series
            .iter()
            .enumerate()
            .map(|(i, _)| FeatureId::Resource(ResourceFeature::ALL[i]))
            .collect();
        RunFeatureData { features, series }
    }

    fn mixed_run(shift: f64) -> RunFeatureData {
        // two resource series plus three plan features over 5 queries
        let features = vec![
            FeatureId::Resource(ResourceFeature::ALL[0]),
            FeatureId::Resource(ResourceFeature::ALL[1]),
            FeatureId::Plan(PlanFeature::ALL[0]),
            FeatureId::Plan(PlanFeature::ALL[1]),
            FeatureId::Plan(PlanFeature::ALL[2]),
        ];
        let series = vec![
            (0..12).map(|i| i as f64 * 0.1 + shift).collect(),
            (0..12).map(|i| (12 - i) as f64 * 0.2).collect(),
            (0..5).map(|q| q as f64 + shift).collect(),
            (0..5).map(|q| q as f64 * 2.0 - shift).collect(),
            (0..5).map(|q| (q as f64 - shift).abs()).collect(),
        ];
        RunFeatureData { features, series }
    }

    #[test]
    fn hist_joint_matches_primitive_bit_for_bit() {
        let data = vec![mixed_run(0.0), mixed_run(1.5), mixed_run(3.0)];
        let via_trait = fingerprinter(Representation::HistFp, &FingerprintConfig::default())
            .fingerprints(&data);
        assert_eq!(via_trait, histfp(&data, DEFAULT_BINS));
    }

    #[test]
    fn phase_joint_matches_primitive_bit_for_bit() {
        let data = vec![mixed_run(0.0), mixed_run(2.0)];
        let via_trait = fingerprinter(Representation::PhaseFp, &FingerprintConfig::default())
            .fingerprints(&data);
        assert_eq!(via_trait, phasefp(&data, &PhaseFpConfig::default()));
    }

    #[test]
    fn mts_joint_matches_primitive_bit_for_bit() {
        let data = vec![
            resource_run(vec![vec![0.0, 1.0, 2.0], vec![3.0, 4.0, 5.0]]),
            resource_run(vec![vec![0.5, 1.5, 2.5], vec![3.5, 4.5, 5.5]]),
        ];
        let via_trait =
            fingerprinter(Representation::Mts, &FingerprintConfig::default()).fingerprints(&data);
        assert_eq!(via_trait, mts(&data));
    }

    #[test]
    fn hist_frozen_fingerprint_matches_ranged_primitive() {
        let corpus = vec![mixed_run(0.0), mixed_run(2.0)];
        let fp = fitted(
            Representation::HistFp,
            &FingerprintConfig::default(),
            &corpus,
        );
        let query = mixed_run(5.0);
        let ranges = global_ranges(&corpus);
        let direct = histfp_with_ranges(std::slice::from_ref(&query), &ranges, DEFAULT_BINS);
        assert_eq!(fp.fingerprint(&query), direct[0]);
        assert_eq!(fp.frozen_ranges(), Some(ranges.as_slice()));
    }

    #[test]
    fn frozen_fingerprints_are_query_independent() {
        // the corpus-stable contract, per representation (MTS gets
        // resource-only runs: its raw form needs one shared clock)
        for repr in Representation::ALL {
            let data: Vec<RunFeatureData> = if repr == Representation::Mts {
                (0..4)
                    .map(|i| {
                        resource_run(vec![
                            (0..12).map(|t| t as f64 + i as f64).collect(),
                            (0..12).map(|t| (t * 2) as f64 - i as f64).collect(),
                        ])
                    })
                    .collect()
            } else {
                (0..4).map(|i| mixed_run(i as f64)).collect()
            };
            let (corpus, rest) = data.split_at(3);
            let fp = fitted(repr, &FingerprintConfig::default(), corpus);
            let a = fp.fingerprint(&rest[0]);
            let b = fp.fingerprint(&rest[0]);
            assert_eq!(a, b, "{}: fingerprint must be pure", repr.label());
        }
    }

    #[test]
    fn plan_embed_fingerprint_shape_and_determinism() {
        let corpus: Vec<RunFeatureData> = (0..4).map(|i| mixed_run(i as f64)).collect();
        let cfg = FingerprintConfig::default();
        let a = fitted(Representation::PlanEmbed, &cfg, &corpus);
        let b = fitted(Representation::PlanEmbed, &cfg, &corpus);
        let query = mixed_run(9.0);
        let fa = a.fingerprint(&query);
        let fb = b.fingerprint(&query);
        assert_eq!(fa.shape(), (1, cfg.embed.bottleneck));
        let bits_a: Vec<u64> = fa.as_slice().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = fb.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "training must be deterministic");
    }

    #[test]
    fn plan_embed_separates_different_runs() {
        let corpus: Vec<RunFeatureData> = (0..4).map(|i| mixed_run(i as f64)).collect();
        let fp = fitted(
            Representation::PlanEmbed,
            &FingerprintConfig::default(),
            &corpus,
        );
        assert_ne!(fp.fingerprint(&corpus[0]), fp.fingerprint(&corpus[3]));
    }

    #[test]
    fn plan_embed_rejects_elastic_measures() {
        let fp = fingerprinter(Representation::PlanEmbed, &FingerprintConfig::default());
        assert!(fp.supports_measure(Measure::Norm(crate::measure::Norm::L21)));
        assert!(!fp.supports_measure(Measure::DtwIndependent));
        for repr in [
            Representation::Mts,
            Representation::HistFp,
            Representation::PhaseFp,
        ] {
            let fp = fingerprinter(repr, &FingerprintConfig::default());
            assert!(fp.supports_measure(Measure::DtwDependent), "{:?}", repr);
        }
    }

    #[test]
    #[should_panic(expected = "at least one plan feature")]
    fn plan_embed_requires_plan_features() {
        let data = vec![resource_run(vec![vec![0.0, 1.0]])];
        let mut fp = PlanEmbedFingerprinter::new(AutoencoderConfig::default());
        fp.fit(&data);
    }

    #[test]
    fn phase_frozen_handles_phase_overflow() {
        // corpus with calm series freezes max_phases low; a noisy query
        // must still produce a fingerprint of the frozen shape
        let calm: Vec<RunFeatureData> = (0..2)
            .map(|i| resource_run(vec![vec![i as f64; 60]]))
            .collect();
        let fp = fitted(
            Representation::PhaseFp,
            &FingerprintConfig::default(),
            &calm,
        );
        let shape = fp.fingerprint(&calm[0]).shape();
        let noisy = resource_run(vec![(0..60)
            .map(|t| if (t / 10) % 2 == 0 { 0.0 } else { 1.0 })
            .collect()]);
        assert_eq!(fp.fingerprint(&noisy).shape(), shape);
    }
}

//! Histogram-based fingerprinting (Hist-FP, §5.1.1 / Appendix A).
//!
//! Each feature's observations are binned into an equi-width histogram
//! over the feature's *global* range (shared across the compared runs),
//! normalized to relative frequencies, and converted to the cumulative
//! form so entry-wise norms see distribution *shape* (the `H1/H2/H3`
//! argument of Appendix A). A run's fingerprint is the `bins × features`
//! matrix of cumulative frequencies.

use wp_linalg::hist::histogram;
use wp_linalg::Matrix;

use crate::repr::{global_ranges, RunFeatureData};

/// Default bin count used throughout the paper's experiments (§5.2).
pub const DEFAULT_BINS: usize = 10;

/// Builds one Hist-FP fingerprint per run: a `nbins × features` matrix of
/// cumulative relative frequencies with globally shared bin ranges.
pub fn histfp(data: &[RunFeatureData], nbins: usize) -> Vec<Matrix> {
    assert!(nbins > 0, "need at least one bin");
    let ranges = global_ranges(data);
    data.iter()
        .map(|run| {
            let mut m = Matrix::zeros(nbins, run.series.len());
            for (f, series) in run.series.iter().enumerate() {
                let (lo, hi) = ranges[f];
                let cum = histogram(series, lo, hi, nbins).cumulative();
                for (b, &v) in cum.iter().enumerate() {
                    m[(b, f)] = v;
                }
            }
            m
        })
        .collect()
}

/// [`histfp`] with caller-supplied per-feature `(lo, hi)` bin ranges
/// instead of ranges derived from `data` itself.
///
/// This is what makes fingerprints *corpus-stable*: `wp-index` freezes
/// the ranges over the reference corpus at build time, so a query run's
/// fingerprint does not depend on which other runs it is compared
/// against (values outside the frozen range clamp into the boundary
/// bins). Plain [`histfp`] re-derives ranges per call, which is the
/// paper's joint-normalization semantics but is query-dependent.
///
/// # Panics
///
/// Panics when `nbins == 0` or a run has a different feature count than
/// `ranges`.
pub fn histfp_with_ranges(
    data: &[RunFeatureData],
    ranges: &[(f64, f64)],
    nbins: usize,
) -> Vec<Matrix> {
    assert!(nbins > 0, "need at least one bin");
    data.iter()
        .map(|run| {
            assert_eq!(
                run.series.len(),
                ranges.len(),
                "run feature count must match the frozen ranges"
            );
            let mut m = Matrix::zeros(nbins, run.series.len());
            for (f, series) in run.series.iter().enumerate() {
                let (lo, hi) = ranges[f];
                let cum = histogram(series, lo, hi, nbins).cumulative();
                for (b, &v) in cum.iter().enumerate() {
                    m[(b, f)] = v;
                }
            }
            m
        })
        .collect()
}

/// Raw (non-cumulative) variant, kept for the ablation bench comparing
/// cumulative vs frequency histograms.
pub fn histfp_raw(data: &[RunFeatureData], nbins: usize) -> Vec<Matrix> {
    assert!(nbins > 0, "need at least one bin");
    let ranges = global_ranges(data);
    data.iter()
        .map(|run| {
            let mut m = Matrix::zeros(nbins, run.series.len());
            for (f, series) in run.series.iter().enumerate() {
                let (lo, hi) = ranges[f];
                let h = histogram(series, lo, hi, nbins);
                for (b, &v) in h.bins.iter().enumerate() {
                    m[(b, f)] = v;
                }
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::RunFeatureData;
    use wp_telemetry::FeatureId;

    fn rfd(series: Vec<Vec<f64>>) -> RunFeatureData {
        let features = (0..series.len())
            .map(FeatureId::from_global_index)
            .collect();
        RunFeatureData { features, series }
    }

    #[test]
    fn fingerprint_shape() {
        let a = rfd(vec![vec![0.0, 1.0, 2.0], vec![5.0, 6.0, 7.0]]);
        let fps = histfp(&[a], 10);
        assert_eq!(fps.len(), 1);
        assert_eq!(fps[0].shape(), (10, 2));
    }

    #[test]
    fn cumulative_final_bin_is_one() {
        let a = rfd(vec![vec![0.0, 0.5, 1.0]]);
        let fps = histfp(&[a], 5);
        assert!((fps[0][(4, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_runs_have_identical_fingerprints() {
        let a = rfd(vec![vec![1.0, 2.0, 3.0, 4.0]]);
        let b = rfd(vec![vec![1.0, 2.0, 3.0, 4.0]]);
        let fps = histfp(&[a, b], 8);
        assert_eq!(fps[0], fps[1]);
    }

    #[test]
    fn shared_bins_separate_shifted_distributions() {
        // run A concentrates low, run B concentrates high; with shared
        // ranges their cumulative histograms must differ.
        let a = rfd(vec![vec![0.0, 0.1, 0.2]]);
        let b = rfd(vec![vec![0.8, 0.9, 1.0]]);
        let fps = histfp(&[a, b], 10);
        let diff: f64 = (0..10)
            .map(|i| (fps[0][(i, 0)] - fps[1][(i, 0)]).abs())
            .sum();
        assert!(diff > 3.0, "diff {diff}");
    }

    #[test]
    fn different_observation_counts_are_comparable() {
        // the core motivation for fingerprints: 360 resource samples vs 5
        // plan observations can both be histogrammed
        let a = rfd(vec![(0..360).map(|i| i as f64 / 360.0).collect()]);
        let b = rfd(vec![vec![0.1, 0.3, 0.5, 0.7, 0.9]]);
        let fps = histfp(&[a, b], 10);
        // both approximately uniform → cumulative ≈ linear ramp, close
        let diff: f64 = (0..10)
            .map(|i| (fps[0][(i, 0)] - fps[1][(i, 0)]).abs())
            .sum();
        assert!(diff < 1.0, "diff {diff}");
    }

    #[test]
    fn frozen_ranges_match_global_ranges_on_same_data() {
        let runs = vec![
            rfd(vec![vec![0.0, 1.0, 2.0], vec![5.0, 6.0, 7.0]]),
            rfd(vec![vec![0.5, 1.5, 2.5], vec![5.5, 6.5, 7.5]]),
        ];
        let ranges = crate::repr::global_ranges(&runs);
        assert_eq!(histfp(&runs, 10), histfp_with_ranges(&runs, &ranges, 10));
    }

    #[test]
    fn frozen_ranges_make_fingerprints_query_independent() {
        let q = rfd(vec![vec![0.2, 0.4, 0.6]]);
        let other = rfd(vec![vec![-10.0, 10.0, 0.0]]);
        let ranges = [(0.0, 1.0)];
        // the fingerprint of q does not change when computed alongside a
        // wildly ranged other run
        let alone = histfp_with_ranges(std::slice::from_ref(&q), &ranges, 8);
        let together = histfp_with_ranges(&[q, other], &ranges, 8);
        assert_eq!(alone[0], together[0]);
    }

    #[test]
    fn raw_variant_sums_to_one_per_feature() {
        let a = rfd(vec![vec![0.0, 0.25, 0.5, 1.0]]);
        let fps = histfp_raw(&[a], 4);
        let total: f64 = (0..4).map(|i| fps[0][(i, 0)]).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}

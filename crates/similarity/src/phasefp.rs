//! Phase-level statistical fingerprinting (Phase-FP, §5.1.1 / Appendix A).
//!
//! Each feature's observation series is segmented into phases by BCPD;
//! each phase is summarized by statistics (mean, median, variance by
//! default, matching §5.2). Features with fewer phases than the maximum
//! are zero-padded, yielding a `features × (max_phases · n_stats)` matrix
//! per run (the flattened form of Appendix A's 3-D fingerprint). Values
//! are normalized to global per-feature `[0, 1]` ranges *before*
//! segmentation statistics, so fingerprints are comparable across runs.
//!
//! Plan features are treated as single-phase (the paper: "the query plan
//! features have only a single phase"): their per-query observations form
//! one segment.

use wp_linalg::Matrix;
use wp_telemetry::FeatureId;

use crate::bcpd::{segments, BcpdConfig};
use crate::repr::{global_ranges, norm01, RunFeatureData};

/// Which summary statistics each phase records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseStat {
    /// Arithmetic mean.
    Mean,
    /// Median.
    Median,
    /// Population variance.
    Variance,
}

impl PhaseStat {
    /// §5.2's default statistic set.
    pub const DEFAULT: [PhaseStat; 3] = [PhaseStat::Mean, PhaseStat::Median, PhaseStat::Variance];

    pub(crate) fn eval(self, values: &[f64]) -> f64 {
        match self {
            PhaseStat::Mean => wp_linalg::stats::mean(values),
            PhaseStat::Median => wp_linalg::stats::median(values),
            PhaseStat::Variance => wp_linalg::stats::variance(values),
        }
    }
}

/// Phase-FP configuration.
#[derive(Debug, Clone)]
pub struct PhaseFpConfig {
    /// Change-point detector settings.
    pub bcpd: BcpdConfig,
    /// Statistics recorded per phase.
    pub stats: Vec<PhaseStat>,
}

impl Default for PhaseFpConfig {
    fn default() -> Self {
        Self {
            bcpd: BcpdConfig::default(),
            stats: PhaseStat::DEFAULT.to_vec(),
        }
    }
}

/// Builds one Phase-FP fingerprint per run.
///
/// All runs share the same `max_phases` (the maximum phase count observed
/// anywhere), so the resulting matrices are directly comparable.
pub fn phasefp(data: &[RunFeatureData], config: &PhaseFpConfig) -> Vec<Matrix> {
    assert!(!config.stats.is_empty(), "need at least one statistic");
    let ranges = global_ranges(data);

    // First pass: segment every (run, feature) series and remember the
    // normalized segments.
    let mut all_segments: Vec<Vec<Vec<Vec<f64>>>> = Vec::with_capacity(data.len());
    let mut max_phases = 1usize;
    for run in data {
        let mut per_feature = Vec::with_capacity(run.series.len());
        for (f, series) in run.series.iter().enumerate() {
            let normed: Vec<f64> = series.iter().map(|&v| norm01(v, ranges[f])).collect();
            let segs: Vec<Vec<f64>> = if matches!(run.features[f], FeatureId::Plan(_)) {
                // plan features: single phase by construction
                vec![normed]
            } else {
                segments(&normed, &config.bcpd)
                    .into_iter()
                    .map(<[f64]>::to_vec)
                    .collect()
            };
            max_phases = max_phases.max(segs.len());
            per_feature.push(segs);
        }
        all_segments.push(per_feature);
    }

    // Second pass: emit zero-padded fingerprints.
    let n_stats = config.stats.len();
    all_segments
        .iter()
        .map(|per_feature| {
            let mut m = Matrix::zeros(per_feature.len(), max_phases * n_stats);
            for (f, segs) in per_feature.iter().enumerate() {
                for (p, seg) in segs.iter().enumerate() {
                    for (s, stat) in config.stats.iter().enumerate() {
                        m[(f, p * n_stats + s)] = stat.eval(seg);
                    }
                }
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_telemetry::{PlanFeature, ResourceFeature};

    fn resource_rfd(series: Vec<Vec<f64>>) -> RunFeatureData {
        let features = series
            .iter()
            .enumerate()
            .map(|(i, _)| FeatureId::Resource(ResourceFeature::ALL[i]))
            .collect();
        RunFeatureData { features, series }
    }

    fn step(n1: usize, n2: usize, m1: f64, m2: f64) -> Vec<f64> {
        let jitter = |i: usize| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        (0..n1)
            .map(|i| m1 + 0.2 * jitter(i))
            .chain((0..n2).map(|i| m2 + 0.2 * jitter(i + n1)))
            .collect()
    }

    #[test]
    fn fingerprint_shape_padded_to_max_phases() {
        // feature 0: two phases; feature 1: stationary
        let a = resource_rfd(vec![step(60, 60, 0.0, 5.0), vec![1.0; 120]]);
        let fps = phasefp(&[a], &PhaseFpConfig::default());
        assert_eq!(fps.len(), 1);
        let m = &fps[0];
        assert_eq!(m.rows(), 2);
        assert!(m.cols() >= 2 * 3, "expect at least 2 phases x 3 stats");
        // stationary feature zero-padded beyond phase 0
        for c in 3..m.cols() {
            assert_eq!(m[(1, c)], 0.0);
        }
    }

    #[test]
    fn two_phase_feature_has_distinct_phase_means() {
        let a = resource_rfd(vec![step(60, 60, 0.0, 5.0)]);
        let fps = phasefp(&[a], &PhaseFpConfig::default());
        let m = &fps[0];
        let mean0 = m[(0, 0)];
        let mean1 = m[(0, 3)];
        assert!(mean1 > mean0 + 0.3, "phase means: {mean0} vs {mean1}");
    }

    #[test]
    fn plan_features_are_single_phase() {
        let run = RunFeatureData {
            features: vec![FeatureId::Plan(PlanFeature::AvgRowSize)],
            series: vec![step(30, 30, 0.0, 5.0)], // would be 2 phases if resource
        };
        let fps = phasefp(&[run], &PhaseFpConfig::default());
        let m = &fps[0];
        assert_eq!(m.cols(), 3, "single phase x 3 stats");
    }

    #[test]
    fn runs_share_max_phase_dimension() {
        let a = resource_rfd(vec![step(60, 60, 0.0, 5.0)]);
        let b = resource_rfd(vec![vec![0.5; 120]]);
        let fps = phasefp(&[a, b], &PhaseFpConfig::default());
        assert_eq!(fps[0].shape(), fps[1].shape());
    }

    #[test]
    fn identical_runs_identical_fingerprints() {
        let a = resource_rfd(vec![step(50, 50, 1.0, 3.0)]);
        let b = resource_rfd(vec![step(50, 50, 1.0, 3.0)]);
        let fps = phasefp(&[a, b], &PhaseFpConfig::default());
        assert_eq!(fps[0], fps[1]);
    }

    #[test]
    fn custom_stat_set() {
        let a = resource_rfd(vec![vec![1.0, 2.0, 3.0, 4.0]]);
        let cfg = PhaseFpConfig {
            stats: vec![PhaseStat::Mean],
            ..PhaseFpConfig::default()
        };
        let fps = phasefp(&[a], &cfg);
        assert_eq!(fps[0].cols(), 1);
    }
}

//! Perturbation utilities for the robustness dimension (§5.2): "an
//! approach's resilience to noise, outliers, and missing data. In
//! real-world use cases, we often observe measurement irregularities."
//!
//! Each injector takes extracted [`RunFeatureData`] and returns a
//! perturbed copy; the robustness experiment measures how each
//! representation × measure combination degrades as the perturbation
//! grows.

use crate::repr::RunFeatureData;

/// splitmix64 → uniform in `[0, 1)`.
fn uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Approximate standard normal (sum of 12 uniforms, Irwin–Hall).
fn gauss(state: &mut u64) -> f64 {
    (0..12).map(|_| uniform(state)).sum::<f64>() - 6.0
}

/// Multiplicative Gaussian measurement noise: every observation is
/// scaled by `1 + sigma·N(0,1)`.
pub fn inject_noise(data: &RunFeatureData, sigma: f64, seed: u64) -> RunFeatureData {
    assert!(sigma >= 0.0, "noise level must be non-negative");
    let mut state = seed | 1;
    let mut out = data.clone();
    for series in &mut out.series {
        for v in series {
            *v *= 1.0 + sigma * gauss(&mut state);
        }
    }
    out
}

/// Outlier injection: a `fraction` of observations is replaced by
/// `magnitude ×` the series' maximum (measurement glitches, perf-counter
/// wraparounds).
pub fn inject_outliers(
    data: &RunFeatureData,
    fraction: f64,
    magnitude: f64,
    seed: u64,
) -> RunFeatureData {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
    assert!(magnitude > 0.0, "magnitude must be positive");
    let mut state = seed | 1;
    let mut out = data.clone();
    for series in &mut out.series {
        if series.is_empty() {
            continue;
        }
        let peak = series.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-9);
        for v in series.iter_mut() {
            if uniform(&mut state) < fraction {
                *v = peak * magnitude;
            }
        }
    }
    out
}

/// Missing data: drops a `fraction` of each feature's observations (the
/// collector missed samples). The remaining observations keep their
/// order; series lengths shrink, which fingerprint representations
/// tolerate by construction while fixed-shape representations do not.
pub fn drop_observations(data: &RunFeatureData, fraction: f64, seed: u64) -> RunFeatureData {
    assert!((0.0..1.0).contains(&fraction), "fraction in [0, 1)");
    let mut state = seed | 1;
    let mut out = data.clone();
    for series in &mut out.series {
        let kept: Vec<f64> = series
            .iter()
            .copied()
            .filter(|_| uniform(&mut state) >= fraction)
            .collect();
        // never drop a series to emptiness
        if !kept.is_empty() {
            *series = kept;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_telemetry::FeatureId;

    fn data() -> RunFeatureData {
        RunFeatureData {
            features: vec![
                FeatureId::from_global_index(0),
                FeatureId::from_global_index(1),
            ],
            series: vec![
                (0..100).map(|i| 10.0 + (i % 7) as f64).collect(),
                (0..100).map(|i| 100.0 + (i % 13) as f64).collect(),
            ],
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let d = data();
        let p = inject_noise(&d, 0.0, 1);
        assert_eq!(d.series, p.series);
    }

    #[test]
    fn noise_perturbs_at_expected_scale() {
        let d = data();
        let p = inject_noise(&d, 0.1, 2);
        let rel: Vec<f64> = d.series[0]
            .iter()
            .zip(&p.series[0])
            .map(|(a, b)| ((b - a) / a).abs())
            .collect();
        let mean_rel = wp_linalg::stats::mean(&rel);
        assert!(mean_rel > 0.02 && mean_rel < 0.25, "mean rel {mean_rel}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let d = data();
        assert_eq!(
            inject_noise(&d, 0.1, 7).series,
            inject_noise(&d, 0.1, 7).series
        );
        assert_ne!(
            inject_noise(&d, 0.1, 7).series,
            inject_noise(&d, 0.1, 8).series
        );
    }

    #[test]
    fn outliers_replace_roughly_the_requested_fraction() {
        let d = data();
        let p = inject_outliers(&d, 0.2, 10.0, 3);
        let n_outliers = p.series[0]
            .iter()
            .filter(|v| **v > 100.0) // peak 16 × 10 = 160
            .count();
        assert!((10..=35).contains(&n_outliers), "{n_outliers} outliers");
    }

    #[test]
    fn dropping_shrinks_series_but_never_empties() {
        let d = data();
        let p = drop_observations(&d, 0.5, 4);
        for (orig, dropped) in d.series.iter().zip(&p.series) {
            assert!(dropped.len() < orig.len());
            assert!(!dropped.is_empty());
        }
    }

    #[test]
    fn drop_preserves_order() {
        let d = RunFeatureData {
            features: vec![FeatureId::from_global_index(0)],
            series: vec![(0..50).map(|i| i as f64).collect()],
        };
        let p = drop_observations(&d, 0.3, 5);
        for w in p.series[0].windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "fraction in [0, 1]")]
    fn invalid_fraction_rejected() {
        let _ = inject_outliers(&data(), 1.5, 2.0, 0);
    }
}

//! Clustering over workload distance matrices.
//!
//! The pipeline's motivation for similarity computation (§2) is to
//! "group similar workloads and use clusters of workloads for downstream
//! prediction tasks", alleviating the per-workload training-data shortage.
//! This module provides the two standard tools for that grouping —
//! agglomerative hierarchical clustering and k-medoids — both operating
//! directly on a precomputed distance matrix (so any representation ×
//! measure combination plugs in), plus silhouette scoring to pick `k`.

use wp_linalg::Matrix;

fn check_square(d: &Matrix) {
    assert_eq!(d.rows(), d.cols(), "distance matrix must be square");
}

/// Linkage criterion for agglomerative clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Distance between clusters = min over cross pairs.
    Single,
    /// Distance between clusters = max over cross pairs.
    Complete,
    /// Distance between clusters = mean over cross pairs (UPGMA).
    Average,
}

/// One merge step of the hierarchical clustering: the two cluster ids
/// merged and the linkage distance at which they merged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster (cluster ids: `0..n` are leaves, `n + i` is
    /// the cluster created by merge `i`).
    pub a: usize,
    /// Second merged cluster.
    pub b: usize,
    /// Linkage distance of the merge.
    pub distance: f64,
}

/// The full merge history (a dendrogram in merge-list form).
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n: usize,
    /// `n − 1` merges, in order of increasing linkage distance.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cuts the dendrogram into `k` clusters, returning one label per
    /// leaf (labels are `0..k`, renumbered by first occurrence).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the leaf count.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n, "k must be in 1..=n");
        // replay merges until k clusters remain
        let mut parent: Vec<usize> = (0..2 * self.n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let stop_after = self.n - k;
        for (i, m) in self.merges.iter().take(stop_after).enumerate() {
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            let new_id = self.n + i;
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        // map roots to compact labels
        let mut labels = Vec::with_capacity(self.n);
        let mut seen: Vec<usize> = Vec::new();
        for leaf in 0..self.n {
            let root = find(&mut parent, leaf);
            let label = match seen.iter().position(|&r| r == root) {
                Some(i) => i,
                None => {
                    seen.push(root);
                    seen.len() - 1
                }
            };
            labels.push(label);
        }
        labels
    }
}

/// Agglomerative hierarchical clustering over a distance matrix.
pub fn hierarchical(d: &Matrix, linkage: Linkage) -> Dendrogram {
    check_square(d);
    let n = d.rows();
    assert!(n >= 1, "need at least one item");
    // active clusters: id → member leaves
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    let cluster_distance = |a: &[usize], b: &[usize]| -> f64 {
        let mut agg = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => f64::NEG_INFINITY,
            Linkage::Average => 0.0,
        };
        for &i in a {
            for &j in b {
                let v = d[(i, j)];
                match linkage {
                    Linkage::Single => agg = agg.min(v),
                    Linkage::Complete => agg = agg.max(v),
                    Linkage::Average => agg += v,
                }
            }
        }
        if linkage == Linkage::Average {
            agg /= (a.len() * b.len()) as f64;
        }
        agg
    };

    while active.len() > 1 {
        // find the closest active pair
        let mut best: Option<(usize, usize, f64)> = None;
        for (x, &ca) in active.iter().enumerate() {
            for &cb in &active[x + 1..] {
                let da = members[ca].as_ref().unwrap();
                let db = members[cb].as_ref().unwrap();
                let dist = cluster_distance(da, db);
                if best.is_none_or(|(_, _, bd)| dist < bd) {
                    best = Some((ca, cb, dist));
                }
            }
        }
        let (ca, cb, dist) = best.unwrap();
        let mut merged = members[ca].take().unwrap();
        merged.extend(members[cb].take().unwrap());
        let new_id = members.len();
        members.push(Some(merged));
        active.retain(|&c| c != ca && c != cb);
        active.push(new_id);
        merges.push(Merge {
            a: ca,
            b: cb,
            distance: dist,
        });
    }

    Dendrogram { n, merges }
}

/// K-medoids (PAM-style alternation) over a distance matrix with
/// deterministic farthest-point initialization. Returns one label per
/// item (`0..k`).
pub fn k_medoids(d: &Matrix, k: usize, max_iter: usize) -> Vec<usize> {
    check_square(d);
    let n = d.rows();
    assert!(k >= 1 && k <= n, "k must be in 1..=n");

    // farthest-point init: medoid 0 = item with minimal total distance,
    // each next = farthest from current medoids
    let mut medoids = Vec::with_capacity(k);
    let totals: Vec<f64> = (0..n).map(|i| (0..n).map(|j| d[(i, j)]).sum()).collect();
    medoids.push(wp_linalg::ops::argmin(&totals).unwrap());
    while medoids.len() < k {
        let next = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let da = medoids
                    .iter()
                    .map(|&m| d[(a, m)])
                    .fold(f64::INFINITY, f64::min);
                let db = medoids
                    .iter()
                    .map(|&m| d[(b, m)])
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap();
        medoids.push(next);
    }

    let assign = |medoids: &[usize]| -> Vec<usize> {
        (0..n)
            .map(|i| {
                medoids
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        d[(i, a)]
                            .partial_cmp(&d[(i, b)])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(ci, _)| ci)
                    .unwrap()
            })
            .collect()
    };

    let mut labels = assign(&medoids);
    for _ in 0..max_iter {
        let mut changed = false;
        for (ci, medoid) in medoids.iter_mut().enumerate() {
            // best medoid within the cluster
            let cluster: Vec<usize> = (0..n).filter(|&i| labels[i] == ci).collect();
            if cluster.is_empty() {
                continue;
            }
            let best = cluster
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ca: f64 = cluster.iter().map(|&j| d[(a, j)]).sum();
                    let cb: f64 = cluster.iter().map(|&j| d[(b, j)]).sum();
                    ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap();
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        let new_labels = assign(&medoids);
        if !changed && new_labels == labels {
            break;
        }
        labels = new_labels;
    }
    labels
}

/// Mean silhouette coefficient of a labeling under a distance matrix, in
/// `[-1, 1]`; higher = tighter, better-separated clusters. Items in
/// singleton clusters contribute 0 (the standard convention).
pub fn silhouette(d: &Matrix, labels: &[usize]) -> f64 {
    check_square(d);
    assert_eq!(d.rows(), labels.len(), "one label per item");
    let n = labels.len();
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().max().map_or(0, |m| m + 1);
    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        let own_size = labels.iter().filter(|&&l| l == own).count();
        if own_size <= 1 {
            continue; // contributes 0
        }
        // a = mean intra-cluster distance
        let a: f64 = (0..n)
            .filter(|&j| j != i && labels[j] == own)
            .map(|j| d[(i, j)])
            .sum::<f64>()
            / (own_size - 1) as f64;
        // b = min over other clusters of mean distance
        let mut b = f64::INFINITY;
        for c in 0..k {
            if c == own {
                continue;
            }
            let members: Vec<usize> = (0..n).filter(|&j| labels[j] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mean = members.iter().map(|&j| d[(i, j)]).sum::<f64>() / members.len() as f64;
            b = b.min(mean);
        }
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

/// Picks the `k ∈ [2, k_max]` with the best k-medoids silhouette.
pub fn best_k(d: &Matrix, k_max: usize) -> (usize, Vec<usize>, f64) {
    check_square(d);
    let k_max = k_max.min(d.rows());
    assert!(k_max >= 2, "need k_max >= 2");
    let mut best: Option<(usize, Vec<usize>, f64)> = None;
    for k in 2..=k_max {
        let labels = k_medoids(d, k, 50);
        let score = silhouette(d, &labels);
        if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
            best = Some((k, labels, score));
        }
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix with three obvious groups of three points on a line.
    fn three_groups() -> (Matrix, Vec<usize>) {
        let pos: [f64; 9] = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 20.0, 20.1, 20.2];
        let n = pos.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                d[(i, j)] = (pos[i] - pos[j]).abs();
            }
        }
        (d, vec![0, 0, 0, 1, 1, 1, 2, 2, 2])
    }

    fn same_partition(a: &[usize], b: &[usize]) -> bool {
        // label-permutation-invariant comparison
        let n = a.len();
        for i in 0..n {
            for j in 0..n {
                if (a[i] == a[j]) != (b[i] == b[j]) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn hierarchical_recovers_groups_any_linkage() {
        let (d, truth) = three_groups();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dendro = hierarchical(&d, linkage);
            assert_eq!(dendro.merges.len(), 8);
            let labels = dendro.cut(3);
            assert!(same_partition(&labels, &truth), "{linkage:?}: {labels:?}");
        }
    }

    #[test]
    fn dendrogram_cut_extremes() {
        let (d, _) = three_groups();
        let dendro = hierarchical(&d, Linkage::Average);
        let all_one = dendro.cut(1);
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = dendro.cut(9);
        let mut sorted = singletons.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
    }

    #[test]
    fn merge_distances_grow_for_average_linkage() {
        let (d, _) = three_groups();
        let dendro = hierarchical(&d, Linkage::Average);
        // the last two merges join groups, at much larger distances
        assert!(dendro.merges[7].distance > dendro.merges[0].distance * 10.0);
    }

    #[test]
    fn k_medoids_recovers_groups() {
        let (d, truth) = three_groups();
        let labels = k_medoids(&d, 3, 50);
        assert!(same_partition(&labels, &truth), "{labels:?}");
    }

    #[test]
    fn silhouette_prefers_true_k() {
        let (d, truth) = three_groups();
        let good = silhouette(&d, &truth);
        let merged = vec![0, 0, 0, 1, 1, 1, 1, 1, 1];
        let bad = silhouette(&d, &merged);
        assert!(good > bad, "good {good} vs bad {bad}");
        assert!(good > 0.9);
    }

    #[test]
    fn best_k_finds_three() {
        let (d, _) = three_groups();
        let (k, labels, score) = best_k(&d, 5);
        assert_eq!(k, 3, "labels {labels:?} score {score}");
        assert!(score > 0.9);
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let d = Matrix::from_rows(&[
            vec![0.0, 1.0, 9.0],
            vec![1.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ]);
        let s = silhouette(&d, &[0, 0, 1]);
        assert!(s > 0.0, "pair cluster dominates: {s}");
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn k_zero_rejected() {
        let (d, _) = three_groups();
        let _ = k_medoids(&d, 0, 10);
    }
}

//! Unified dispatch over all similarity measures and pairwise distance
//! matrices.

use wp_linalg::Matrix;
use wp_obs::LazyCounter;

use crate::{dtw, lcss, norms};

/// Exact pairwise distance evaluations through [`Measure::apply`] /
/// [`Measure::apply_banded`] — the pipeline's hottest operation.
static OBS_DISTANCE_CALLS: LazyCounter = LazyCounter::new("wp_similarity_distance_calls_total");

/// A matrix norm usable with any representation (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Norm {
    /// Σ |aᵢⱼ − bᵢⱼ|
    L11,
    /// Σⱼ ‖column difference‖₂
    L21,
    /// ‖A − B‖_F
    Frobenius,
    /// Canberra distance.
    Canberra,
    /// Chi-square distance.
    Chi2,
    /// 1 − Pearson correlation of the flattened matrices.
    Correlation,
}

impl Norm {
    /// Every norm the paper evaluates.
    pub const ALL: [Norm; 6] = [
        Norm::L11,
        Norm::L21,
        Norm::Frobenius,
        Norm::Canberra,
        Norm::Chi2,
        Norm::Correlation,
    ];

    /// Applies the norm to a pair of fingerprints.
    pub fn apply(self, a: &Matrix, b: &Matrix) -> f64 {
        match self {
            Norm::L11 => norms::l11(a, b),
            Norm::L21 => norms::l21(a, b),
            Norm::Frobenius => norms::frobenius(a, b),
            Norm::Canberra => norms::canberra(a, b),
            Norm::Chi2 => norms::chi2(a, b),
            Norm::Correlation => norms::correlation(a, b),
        }
    }

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Norm::L11 => "L1,1-Norm",
            Norm::L21 => "L2,1-Norm",
            Norm::Frobenius => "Fro-Norm",
            Norm::Canberra => "Canb-Norm",
            Norm::Chi2 => "Chi2-Norm",
            Norm::Correlation => "Corr-Norm",
        }
    }
}

/// A complete similarity measure: either a norm (requires equally shaped
/// fingerprints) or an elastic time-series measure (tolerates different
/// lengths; MTS only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// A matrix norm.
    Norm(Norm),
    /// Dependent multivariate DTW.
    DtwDependent,
    /// Independent multivariate DTW.
    DtwIndependent,
    /// Dependent multivariate LCSS with matching tolerance ε.
    LcssDependent {
        /// Point-match tolerance.
        epsilon: f64,
    },
    /// Independent multivariate LCSS with matching tolerance ε.
    LcssIndependent {
        /// Point-match tolerance.
        epsilon: f64,
    },
}

/// Default LCSS tolerance on `[0, 1]`-normalized data.
pub const DEFAULT_LCSS_EPSILON: f64 = 0.1;

impl Measure {
    /// The measures the paper evaluates on the MTS representation
    /// (Table 4a): four norms plus DTW and LCSS variants.
    pub fn mts_suite() -> Vec<Measure> {
        vec![
            Measure::Norm(Norm::L21),
            Measure::Norm(Norm::L11),
            Measure::Norm(Norm::Frobenius),
            Measure::Norm(Norm::Canberra),
            Measure::DtwDependent,
            Measure::DtwIndependent,
            Measure::LcssDependent {
                epsilon: DEFAULT_LCSS_EPSILON,
            },
            Measure::LcssIndependent {
                epsilon: DEFAULT_LCSS_EPSILON,
            },
        ]
    }

    /// Applies the measure to a pair of fingerprints.
    pub fn apply(self, a: &Matrix, b: &Matrix) -> f64 {
        OBS_DISTANCE_CALLS.add(1);
        match self {
            Measure::Norm(n) => n.apply(a, b),
            Measure::DtwDependent => dtw::dtw_dependent(a, b),
            Measure::DtwIndependent => dtw::dtw_independent(a, b),
            Measure::LcssDependent { epsilon } => lcss::lcss_dependent(a, b, epsilon),
            Measure::LcssIndependent { epsilon } => lcss::lcss_independent(a, b, epsilon),
        }
    }

    /// Applies the measure with an optional Sakoe-Chiba window.
    ///
    /// The window only constrains the DTW variants; every other measure
    /// ignores it. `band = None` is bit-identical to [`Measure::apply`].
    /// This is the exact measure `wp-index` serves when it is configured
    /// with a band — its LB_Keogh envelopes lower-bound the *banded*
    /// distance, so bound and exact fallback must agree on the window.
    pub fn apply_banded(self, a: &Matrix, b: &Matrix, band: Option<usize>) -> f64 {
        match self {
            // `other.apply` below counts itself; count only the banded
            // DTW paths here so no call is recorded twice.
            Measure::DtwDependent => {
                OBS_DISTANCE_CALLS.add(1);
                dtw::dtw_dependent_banded(a, b, band)
            }
            Measure::DtwIndependent => {
                OBS_DISTANCE_CALLS.add(1);
                dtw::dtw_independent_banded(a, b, band)
            }
            other => other.apply(a, b),
        }
    }

    /// Display label matching the paper's tables.
    pub fn label(self) -> String {
        match self {
            Measure::Norm(n) => n.label().to_string(),
            Measure::DtwDependent => "Dependent-DTW".to_string(),
            Measure::DtwIndependent => "Independent-DTW".to_string(),
            Measure::LcssDependent { .. } => "Dependent-LCSS".to_string(),
            Measure::LcssIndependent { .. } => "Independent-LCSS".to_string(),
        }
    }
}

/// Checks that a fingerprint set is usable with `measure`: the set must
/// be non-empty, norms need identically shaped fingerprints, and elastic
/// measures need a shared feature count (column dimension).
pub fn validate_fingerprints(fingerprints: &[Matrix], measure: Measure) -> Result<(), String> {
    if fingerprints.is_empty() {
        return Err("distance matrix needs at least one fingerprint".to_string());
    }
    let (rows0, cols0) = fingerprints[0].shape();
    for (i, fp) in fingerprints.iter().enumerate().skip(1) {
        let (rows, cols) = fp.shape();
        match measure {
            Measure::Norm(_) => {
                if (rows, cols) != (rows0, cols0) {
                    return Err(format!(
                        "fingerprint {i} has shape {rows}x{cols} but fingerprint 0 has \
                         {rows0}x{cols0}; norms need identical shapes"
                    ));
                }
            }
            _ => {
                if cols != cols0 {
                    return Err(format!(
                        "fingerprint {i} has {cols} features but fingerprint 0 has {cols0}; \
                         elastic measures need a shared feature count"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Full pairwise distance matrix over a set of fingerprints (symmetric,
/// zero diagonal), validated first. Pairs are evaluated in parallel on
/// the [`wp_runtime`] pool and written back in row-major order, so the
/// result is bit-identical to a sequential double loop.
pub fn try_distance_matrix(fingerprints: &[Matrix], measure: Measure) -> Result<Matrix, String> {
    validate_fingerprints(fingerprints, measure)?;
    let n = fingerprints.len();
    let mut d = Matrix::zeros(n, n);
    for (i, j, v) in
        wp_runtime::par_pairs(n, |i, j| measure.apply(&fingerprints[i], &fingerprints[j]))
    {
        d[(i, j)] = v;
        d[(j, i)] = v;
    }
    Ok(d)
}

/// Min-max normalizes a distance matrix's off-diagonal entries into
/// `[0, 1]` (the paper reports "mean normalized distances").
pub fn normalize_distances(d: &Matrix) -> Matrix {
    let n = d.rows();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                lo = lo.min(d[(i, j)]);
                hi = hi.max(d[(i, j)]);
            }
        }
    }
    let mut out = d.clone();
    if hi > lo {
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    out[(i, j)] = (d[(i, j)] - lo) / (hi - lo);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: f64) -> Matrix {
        Matrix::filled(3, 2, v)
    }

    #[test]
    fn all_norms_dispatch() {
        let a = fp(1.0);
        let b = fp(2.0);
        for n in Norm::ALL {
            let d = n.apply(&a, &b);
            assert!(d >= 0.0, "{}: {d}", n.label());
        }
    }

    #[test]
    fn distance_matrix_symmetric_zero_diagonal() {
        let fps = vec![fp(0.0), fp(1.0), fp(3.0)];
        let d = try_distance_matrix(&fps, Measure::Norm(Norm::L21)).unwrap();
        for i in 0..3 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..3 {
                assert_eq!(d[(i, j)], d[(j, i)]);
            }
        }
        // 0 is closer to 1 than to 3
        assert!(d[(0, 1)] < d[(0, 2)]);
    }

    #[test]
    fn normalize_maps_offdiagonal_to_unit_interval() {
        let fps = vec![fp(0.0), fp(1.0), fp(5.0)];
        let d = try_distance_matrix(&fps, Measure::Norm(Norm::Frobenius)).unwrap();
        let n = normalize_distances(&d);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    lo = lo.min(n[(i, j)]);
                    hi = hi.max(n[(i, j)]);
                }
            }
        }
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn mts_suite_contains_paper_measures() {
        let suite = Measure::mts_suite();
        assert_eq!(suite.len(), 8);
        assert!(suite.contains(&Measure::DtwDependent));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Norm::L21.label(), "L2,1-Norm");
        assert_eq!(Measure::DtwIndependent.label(), "Independent-DTW");
    }

    #[test]
    fn empty_fingerprint_set_is_rejected() {
        let err = try_distance_matrix(&[], Measure::Norm(Norm::L11)).unwrap_err();
        assert!(err.contains("at least one fingerprint"), "{err}");
    }

    #[test]
    fn norm_shape_mismatch_is_rejected() {
        let fps = vec![Matrix::zeros(3, 2), Matrix::zeros(4, 2)];
        let err = try_distance_matrix(&fps, Measure::Norm(Norm::Frobenius)).unwrap_err();
        assert!(err.contains("identical shapes"), "{err}");
    }

    #[test]
    fn elastic_feature_count_mismatch_is_rejected() {
        let fps = vec![Matrix::zeros(3, 2), Matrix::zeros(5, 3)];
        let err = try_distance_matrix(&fps, Measure::DtwIndependent).unwrap_err();
        assert!(err.contains("shared feature count"), "{err}");
        // unequal row counts alone are fine for elastic measures
        let ok = vec![Matrix::zeros(3, 2), Matrix::zeros(5, 2)];
        assert!(try_distance_matrix(&ok, Measure::DtwIndependent).is_ok());
    }

    #[test]
    fn parallel_distance_matrix_matches_sequential() {
        let fps: Vec<Matrix> = (0..7).map(|i| fp(i as f64 * 0.7)).collect();
        let par = wp_runtime::with_thread_count(4, || {
            try_distance_matrix(&fps, Measure::Norm(Norm::Canberra)).unwrap()
        });
        let seq = wp_runtime::with_thread_count(1, || {
            try_distance_matrix(&fps, Measure::Norm(Norm::Canberra)).unwrap()
        });
        assert_eq!(par, seq);
    }

    #[test]
    fn apply_banded_without_band_matches_apply() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.5], vec![2.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![0.5, 0.9], vec![1.5, 0.4], vec![2.5, 0.1]]);
        for m in Measure::mts_suite() {
            assert_eq!(
                m.apply(&a, &b).to_bits(),
                m.apply_banded(&a, &b, None).to_bits(),
                "{}",
                m.label()
            );
        }
    }

    #[test]
    fn apply_banded_only_constrains_dtw() {
        let a = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![0.0], vec![5.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![0.0], vec![5.0], vec![0.0]]);
        // norms ignore the band entirely
        let l21 = Measure::Norm(Norm::L21);
        assert_eq!(
            l21.apply(&a, &b).to_bits(),
            l21.apply_banded(&a, &b, Some(0)).to_bits()
        );
        // a zero-width band pins the diagonal path: distance can only grow
        assert!(
            Measure::DtwDependent.apply_banded(&a, &b, Some(0))
                >= Measure::DtwDependent.apply(&a, &b)
        );
    }

    #[test]
    fn elastic_measures_tolerate_unequal_lengths() {
        let a = Matrix::zeros(5, 2);
        let b = Matrix::zeros(8, 2);
        assert!(Measure::DtwDependent.apply(&a, &b).is_finite());
        assert!(Measure::LcssIndependent { epsilon: 0.1 }
            .apply(&a, &b)
            .is_finite());
    }
}

//! The unified strategy enum covering every Table 3 row.

use wp_linalg::Matrix;
use wp_telemetry::FeatureId;

use crate::ranking::Ranking;
use crate::wrapper::{Estimator, WrapperConfig};
use crate::{embedded, filter, wrapper};

/// Strategy families (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyCategory {
    /// Scores predictors before any model fit.
    Filter,
    /// Importance emerges from model training.
    Embedded,
    /// Iteratively adds/removes predictors around a model.
    Wrapper,
    /// No selection: catalog order.
    Baseline,
}

/// One feature-selection strategy from Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Variance threshold (filter).
    Variance,
    /// Functional ANOVA F-statistic (filter).
    FAnova,
    /// Mutual information gain (filter).
    MiGain,
    /// Pearson correlation (filter).
    Pearson,
    /// Lasso coefficients (embedded).
    Lasso,
    /// Elastic-net coefficients (embedded).
    ElasticNet,
    /// Random-forest impurity importance (embedded).
    RandomForest,
    /// Recursive feature elimination (wrapper).
    Rfe(Estimator),
    /// Forward sequential feature selection (wrapper).
    SfsForward(Estimator),
    /// Backward sequential feature selection (wrapper).
    SfsBackward(Estimator),
    /// Catalog-order baseline.
    Baseline,
}

impl Strategy {
    /// Every Table 3 row, in table order.
    pub fn all() -> Vec<Strategy> {
        use Estimator::*;
        vec![
            Strategy::Variance,
            Strategy::FAnova,
            Strategy::MiGain,
            Strategy::Pearson,
            Strategy::Lasso,
            Strategy::ElasticNet,
            Strategy::RandomForest,
            Strategy::Rfe(Linear),
            Strategy::Rfe(DecisionTree),
            Strategy::Rfe(LogisticRegression),
            Strategy::SfsForward(Linear),
            Strategy::SfsForward(DecisionTree),
            Strategy::SfsForward(LogisticRegression),
            Strategy::SfsBackward(Linear),
            Strategy::SfsBackward(DecisionTree),
            Strategy::SfsBackward(LogisticRegression),
            Strategy::Baseline,
        ]
    }

    /// The strategy's family.
    pub fn category(self) -> StrategyCategory {
        match self {
            Strategy::Variance | Strategy::FAnova | Strategy::MiGain | Strategy::Pearson => {
                StrategyCategory::Filter
            }
            Strategy::Lasso | Strategy::ElasticNet | Strategy::RandomForest => {
                StrategyCategory::Embedded
            }
            Strategy::Rfe(_) | Strategy::SfsForward(_) | Strategy::SfsBackward(_) => {
                StrategyCategory::Wrapper
            }
            Strategy::Baseline => StrategyCategory::Baseline,
        }
    }

    /// Display label matching Table 3.
    pub fn label(self) -> String {
        match self {
            Strategy::Variance => "Variance".into(),
            Strategy::FAnova => "fANOVA".into(),
            Strategy::MiGain => "MIGain".into(),
            Strategy::Pearson => "Pearson".into(),
            Strategy::Lasso => "Lasso".into(),
            Strategy::ElasticNet => "Elastic Net".into(),
            Strategy::RandomForest => "RandomForest".into(),
            Strategy::Rfe(e) => format!("RFE {}", e.label()),
            Strategy::SfsForward(e) => format!("Fw SFS {}", e.label()),
            Strategy::SfsBackward(e) => format!("Bw SFS {}", e.label()),
            Strategy::Baseline => "Baseline".into(),
        }
    }

    /// Runs the strategy on an observation matrix with workload labels.
    pub fn rank(
        self,
        x: &Matrix,
        labels: &[usize],
        features: &[FeatureId],
        config: &WrapperConfig,
    ) -> Ranking {
        // Cold path (stage 1 runs once per corpus): the label allocation
        // only happens when observability is enabled.
        let _span = if wp_obs::is_enabled() {
            wp_obs::time_labeled("wp_featsel_rank", "strategy", &self.label())
        } else {
            wp_obs::SpanGuard::inert()
        };
        match self {
            Strategy::Variance => filter::variance(x, features),
            Strategy::FAnova => filter::fanova(x, labels, features),
            Strategy::MiGain => filter::mi_gain(x, labels, features),
            Strategy::Pearson => filter::pearson(x, labels, features),
            Strategy::Lasso => embedded::lasso(x, labels, features, embedded::DEFAULT_ALPHA),
            Strategy::ElasticNet => {
                embedded::elastic_net(x, labels, features, embedded::DEFAULT_ALPHA)
            }
            Strategy::RandomForest => embedded::random_forest(x, labels, features, 60, config.seed),
            Strategy::Rfe(e) => wrapper::rfe(x, labels, features, e, config),
            Strategy::SfsForward(e) => wrapper::sfs_forward(x, labels, features, e, config),
            Strategy::SfsBackward(e) => wrapper::sfs_backward(x, labels, features, e, config),
            Strategy::Baseline => {
                Ranking::from_order(features.to_vec(), (0..features.len()).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_17_rows() {
        assert_eq!(Strategy::all().len(), 17);
    }

    #[test]
    fn categories_match_paper() {
        assert_eq!(Strategy::Variance.category(), StrategyCategory::Filter);
        assert_eq!(Strategy::Lasso.category(), StrategyCategory::Embedded);
        assert_eq!(
            Strategy::Rfe(Estimator::Linear).category(),
            StrategyCategory::Wrapper
        );
        assert_eq!(Strategy::Baseline.category(), StrategyCategory::Baseline);
    }

    #[test]
    fn labels_match_table3() {
        assert_eq!(
            Strategy::SfsBackward(Estimator::LogisticRegression).label(),
            "Bw SFS LogReg"
        );
        assert_eq!(
            Strategy::Rfe(Estimator::DecisionTree).label(),
            "RFE DecTree"
        );
        assert_eq!(Strategy::ElasticNet.label(), "Elastic Net");
    }

    #[test]
    fn every_strategy_produces_full_ranking() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            let class = i % 2;
            rows.push(vec![
                class as f64 * 5.0 + (i % 3) as f64 * 0.1,
                ((i * 17) % 11) as f64,
            ]);
            labels.push(class);
        }
        let x = Matrix::from_rows(&rows);
        let features: Vec<FeatureId> = (0..2).map(FeatureId::from_global_index).collect();
        let config = WrapperConfig {
            cv_folds: 2,
            logreg_iters: 40,
            ..WrapperConfig::default()
        };
        for s in Strategy::all() {
            let r = s.rank(&x, &labels, &features, &config);
            assert_eq!(r.len(), 2, "{}", s.label());
            let mut sorted = r.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1], "{}", s.label());
        }
    }

    #[test]
    fn baseline_is_catalog_order() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let features: Vec<FeatureId> = (0..2).map(FeatureId::from_global_index).collect();
        let r = Strategy::Baseline.rank(&x, &[0, 1], &features, &WrapperConfig::default());
        assert_eq!(r.order, vec![0, 1]);
    }
}

//! Wrapper-approach strategies (§4.1.3): Recursive Feature Elimination
//! and Sequential Feature Selection, each over three base estimators
//! (linear regression, decision tree, logistic regression).
//!
//! Both wrappers produce *rank-based* output (§4.2): RFE ranks by reverse
//! elimination order; SFS ranks by greedy addition order (forward) or by
//! reverse removal order (backward).

use wp_linalg::Matrix;
use wp_ml::cv::KFold;
use wp_ml::logreg::{LogisticConfig, LogisticRegression};
use wp_ml::traits::{Classifier, Regressor};
use wp_ml::tree::{DecisionTreeRegressor, TreeConfig};
use wp_telemetry::FeatureId;

use crate::ranking::Ranking;

/// Base estimator driving a wrapper strategy (Table 3's Linear / DecTree /
/// LogReg columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Ordinary least squares on the numeric label target.
    Linear,
    /// CART regression tree on the numeric label target.
    DecisionTree,
    /// One-vs-rest logistic regression on the class labels.
    LogisticRegression,
}

impl Estimator {
    /// Display label matching Table 3.
    pub fn label(self) -> &'static str {
        match self {
            Estimator::Linear => "Linear",
            Estimator::DecisionTree => "DecTree",
            Estimator::LogisticRegression => "LogReg",
        }
    }
}

/// Wrapper tuning knobs; the defaults trade a little fidelity for speed
/// (the paper's SFS runtimes reach hours — see Table 3).
#[derive(Debug, Clone)]
pub struct WrapperConfig {
    /// Folds for the SFS scoring cross-validation.
    pub cv_folds: usize,
    /// Gradient steps for the logistic estimator inside wrappers.
    pub logreg_iters: usize,
    /// Depth cap for the decision-tree estimator.
    pub tree_depth: usize,
    /// CV shuffle seed.
    pub seed: u64,
}

impl Default for WrapperConfig {
    fn default() -> Self {
        Self {
            cv_folds: 3,
            logreg_iters: 120,
            tree_depth: 6,
            seed: 0,
        }
    }
}

fn numeric_target(labels: &[usize]) -> Vec<f64> {
    labels.iter().map(|&l| l as f64).collect()
}

/// Importances of one estimator fit on a column subset.
fn fit_importances(
    est: Estimator,
    x: &Matrix,
    labels: &[usize],
    config: &WrapperConfig,
) -> Vec<f64> {
    match est {
        Estimator::Linear => {
            // standardize so coefficient magnitudes are comparable
            let (_, xs) = wp_linalg::StandardScaler::fit_transform(x);
            let mut m = wp_ml::linreg::LinearRegression::new();
            m.fit(&xs, &numeric_target(labels));
            m.feature_importances().unwrap()
        }
        Estimator::DecisionTree => {
            let mut m = DecisionTreeRegressor::with_config(TreeConfig {
                max_depth: config.tree_depth,
                ..TreeConfig::default()
            });
            m.fit(x, &numeric_target(labels));
            m.feature_importances().unwrap()
        }
        Estimator::LogisticRegression => {
            let mut m = LogisticRegression::with_config(LogisticConfig {
                max_iter: config.logreg_iters,
                ..LogisticConfig::default()
            });
            m.fit(x, labels);
            m.feature_importances().unwrap()
        }
    }
}

/// Cross-validated score of a feature subset: classification accuracy for
/// the logistic estimator, negative RMSE for the regressors (higher is
/// always better).
fn cv_score(est: Estimator, x: &Matrix, labels: &[usize], config: &WrapperConfig) -> f64 {
    let folds = KFold::new(config.cv_folds, config.seed).split(x.rows());
    let mut total = 0.0;
    for (train, test) in &folds {
        let xtr = x.select_rows(train);
        let xte = x.select_rows(test);
        match est {
            Estimator::LogisticRegression => {
                let ytr: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
                let yte: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
                // a CV fold can collapse to one class; skip the fold then
                let distinct = {
                    let mut v = ytr.clone();
                    v.sort_unstable();
                    v.dedup();
                    v.len()
                };
                if distinct < 2 {
                    continue;
                }
                let mut m = LogisticRegression::with_config(LogisticConfig {
                    max_iter: config.logreg_iters,
                    ..LogisticConfig::default()
                });
                m.fit(&xtr, &ytr);
                total += wp_ml::metrics::accuracy(&yte, &m.predict(&xte));
            }
            Estimator::Linear => {
                let y = numeric_target(labels);
                let ytr: Vec<f64> = train.iter().map(|&i| y[i]).collect();
                let yte: Vec<f64> = test.iter().map(|&i| y[i]).collect();
                let mut m = wp_ml::linreg::LinearRegression::new();
                m.fit(&xtr, &ytr);
                total -= wp_ml::metrics::rmse(&yte, &m.predict(&xte));
            }
            Estimator::DecisionTree => {
                let y = numeric_target(labels);
                let ytr: Vec<f64> = train.iter().map(|&i| y[i]).collect();
                let yte: Vec<f64> = test.iter().map(|&i| y[i]).collect();
                let mut m = DecisionTreeRegressor::with_config(TreeConfig {
                    max_depth: config.tree_depth,
                    ..TreeConfig::default()
                });
                m.fit(&xtr, &ytr);
                total -= wp_ml::metrics::rmse(&yte, &m.predict(&xte));
            }
        }
    }
    total / folds.len() as f64
}

/// Recursive Feature Elimination: repeatedly fit the estimator on the
/// surviving features and eliminate the least important one; the ranking
/// is the reverse elimination order (last survivor = most important).
pub fn rfe(
    x: &Matrix,
    labels: &[usize],
    features: &[FeatureId],
    est: Estimator,
    config: &WrapperConfig,
) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let p = features.len();
    let mut surviving: Vec<usize> = (0..p).collect();
    let mut eliminated: Vec<usize> = Vec::with_capacity(p);
    while surviving.len() > 1 {
        let xs = x.select_cols(&surviving);
        let imp = fit_importances(est, &xs, labels, config);
        let worst_local = wp_linalg::ops::argmin(&imp).unwrap();
        eliminated.push(surviving.remove(worst_local));
    }
    eliminated.push(surviving[0]);
    eliminated.reverse(); // best first
    Ranking::from_order(features.to_vec(), eliminated)
}

/// Sequential Feature Selection, forward variant: greedily add the
/// feature that maximizes the cross-validated score; the ranking is the
/// addition order.
pub fn sfs_forward(
    x: &Matrix,
    labels: &[usize],
    features: &[FeatureId],
    est: Estimator,
    config: &WrapperConfig,
) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let p = features.len();
    let mut selected: Vec<usize> = Vec::with_capacity(p);
    let mut remaining: Vec<usize> = (0..p).collect();
    while !remaining.is_empty() {
        // Score every candidate subset in parallel, then reduce in
        // candidate order with a strict `>` so ties resolve to the
        // lowest index — exactly what the sequential loop did.
        let scores = wp_runtime::par_map_indexed(remaining.len(), |ri| {
            let mut cols = selected.clone();
            cols.push(remaining[ri]);
            cv_score(est, &x.select_cols(&cols), labels, config)
        });
        let mut best: Option<(usize, f64)> = None;
        for (ri, &score) in scores.iter().enumerate() {
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((ri, score));
            }
        }
        let (ri, _) = best.unwrap();
        selected.push(remaining.remove(ri));
    }
    Ranking::from_order(features.to_vec(), selected)
}

/// Sequential Feature Selection, backward variant: greedily remove the
/// feature whose removal maximizes the cross-validated score; the ranking
/// is the reverse removal order.
pub fn sfs_backward(
    x: &Matrix,
    labels: &[usize],
    features: &[FeatureId],
    est: Estimator,
    config: &WrapperConfig,
) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let p = features.len();
    let mut surviving: Vec<usize> = (0..p).collect();
    let mut removed: Vec<usize> = Vec::with_capacity(p);
    while surviving.len() > 1 {
        // Same parallel-score / ordered-argmax shape as `sfs_forward`.
        let scores = wp_runtime::par_map_indexed(surviving.len(), |drop| {
            let mut cols = surviving.clone();
            cols.remove(drop);
            cv_score(est, &x.select_cols(&cols), labels, config)
        });
        let mut best: Option<(usize, f64)> = None;
        for (drop, &score) in scores.iter().enumerate() {
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((drop, score));
            }
        }
        let (drop, _) = best.unwrap();
        removed.push(surviving.remove(drop));
    }
    removed.push(surviving[0]);
    removed.reverse();
    Ranking::from_order(features.to_vec(), removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0 strongly separates the classes, feature 1 weakly,
    /// feature 2 is noise.
    fn dataset() -> (Matrix, Vec<usize>, Vec<FeatureId>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..36 {
            let class = i % 2;
            rows.push(vec![
                class as f64 * 8.0 + ((i * 13) % 5) as f64 * 0.1,
                class as f64 * 1.0 + ((i * 31) % 7) as f64 * 0.4,
                ((i * 7919) % 23) as f64,
            ]);
            labels.push(class);
        }
        let features = (0..3).map(FeatureId::from_global_index).collect();
        (Matrix::from_rows(&rows), labels, features)
    }

    fn fast() -> WrapperConfig {
        WrapperConfig {
            cv_folds: 2,
            logreg_iters: 60,
            ..WrapperConfig::default()
        }
    }

    #[test]
    fn rfe_linear_keeps_strong_feature_longest() {
        let (x, y, f) = dataset();
        let r = rfe(&x, &y, &f, Estimator::Linear, &fast());
        assert_eq!(r.order[0], 0, "order: {:?}", r.order);
    }

    #[test]
    fn rfe_tree_keeps_strong_feature_longest() {
        let (x, y, f) = dataset();
        let r = rfe(&x, &y, &f, Estimator::DecisionTree, &fast());
        assert_eq!(r.order[0], 0, "order: {:?}", r.order);
    }

    #[test]
    fn rfe_logreg_keeps_strong_feature_longest() {
        let (x, y, f) = dataset();
        let r = rfe(&x, &y, &f, Estimator::LogisticRegression, &fast());
        assert_eq!(r.order[0], 0, "order: {:?}", r.order);
    }

    #[test]
    fn sfs_forward_adds_strong_feature_first() {
        let (x, y, f) = dataset();
        for est in [
            Estimator::Linear,
            Estimator::DecisionTree,
            Estimator::LogisticRegression,
        ] {
            let r = sfs_forward(&x, &y, &f, est, &fast());
            assert_eq!(r.order[0], 0, "{}: order {:?}", est.label(), r.order);
        }
    }

    #[test]
    fn sfs_backward_produces_full_permutation() {
        let (x, y, f) = dataset();
        let r = sfs_backward(&x, &y, &f, Estimator::Linear, &fast());
        let mut sorted = r.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        // noise feature should not win
        assert_ne!(r.order[0], 2, "order: {:?}", r.order);
    }

    #[test]
    fn rankings_are_full_permutations() {
        let (x, y, f) = dataset();
        let r = rfe(&x, &y, &f, Estimator::Linear, &fast());
        let mut sorted = r.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn estimator_labels() {
        assert_eq!(Estimator::Linear.label(), "Linear");
        assert_eq!(Estimator::DecisionTree.label(), "DecTree");
        assert_eq!(Estimator::LogisticRegression.label(), "LogReg");
    }
}

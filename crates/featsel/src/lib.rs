//! Feature selection (§4): the sixteen strategies of Table 3 across the
//! filter, embedded, and wrapper families, plus rank aggregation and the
//! similarity-based evaluation of selected subsets.
//!
//! All strategies implement the same contract — given an observation
//! matrix, workload labels, and the feature identities behind the
//! columns, produce a [`Ranking`] (best feature first). *Score-based*
//! strategies (filters, embedded models) rank by a continuous importance
//! score; *rank-based* strategies (RFE, SFS) assign an integer rank
//! directly (§4.2).

#![warn(missing_docs)]

pub mod aggregate;
pub mod embedded;
pub mod evaluate;
pub mod filter;
pub mod lasso_path;
pub mod ranking;
pub mod strategy;
pub mod wrapper;

pub use ranking::Ranking;
pub use strategy::{Strategy, StrategyCategory};

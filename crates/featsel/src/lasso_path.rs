//! Per-experiment Lasso paths (Figure 3).
//!
//! For one experiment — observations of one workload on one hardware
//! setting — the path regresses the observed throughput on the 29
//! features across a decreasing grid of penalties. Features entering the
//! path early (with large standardized coefficients) are that workload's
//! characteristic features; the figure labels the top-7 by maximum
//! absolute coefficient along the path.

use wp_linalg::Matrix;
use wp_ml::lasso::{lasso_path as ml_lasso_path, PathPoint};
use wp_telemetry::FeatureId;

use crate::ranking::Ranking;

/// A computed Lasso path with feature identities attached.
#[derive(Debug, Clone)]
pub struct LassoPath {
    /// Feature universe in column order.
    pub features: Vec<FeatureId>,
    /// Path points, from the largest alpha (all zero) to the smallest.
    pub points: Vec<PathPoint>,
}

impl LassoPath {
    /// Computes a path over `n_alphas` log-spaced penalties down to
    /// `alpha_max · eps`.
    pub fn compute(
        x: &Matrix,
        target: &[f64],
        features: &[FeatureId],
        n_alphas: usize,
        eps: f64,
    ) -> Self {
        assert_eq!(x.cols(), features.len(), "one feature id per column");
        Self {
            features: features.to_vec(),
            points: ml_lasso_path(x, target, n_alphas, eps),
        }
    }

    /// Maximum absolute coefficient each feature reaches along the path —
    /// the Figure 3 importance measure.
    pub fn peak_importance(&self) -> Vec<f64> {
        let p = self.features.len();
        let mut peak = vec![0.0_f64; p];
        for point in &self.points {
            for (j, &c) in point.coefficients.iter().enumerate() {
                peak[j] = peak[j].max(c.abs());
            }
        }
        peak
    }

    /// Ranking by peak importance.
    pub fn ranking(&self) -> Ranking {
        Ranking::from_scores(self.features.clone(), self.peak_importance())
    }

    /// The top-k features by peak importance (Figure 3's labels).
    pub fn top_k(&self, k: usize) -> Vec<FeatureId> {
        self.ranking().top_k(k)
    }

    /// Coefficient trajectory of one feature across the path (one value
    /// per alpha, largest alpha first).
    pub fn trajectory(&self, f: FeatureId) -> Option<Vec<f64>> {
        let col = self.features.iter().position(|x| *x == f)?;
        Some(self.points.iter().map(|p| p.coefficients[col]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_linalg::Rng64;

    /// Throughput depends on features 0 and 2; 1 and 3 are noise.
    fn experiment() -> (Matrix, Vec<f64>, Vec<FeatureId>) {
        let mut rng = Rng64::new(9);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..40 {
            let f: Vec<f64> = (0..4).map(|_| rng.range(-1.0, 1.0)).collect();
            y.push(100.0 + 10.0 * f[0] + 4.0 * f[2] + rng.range(-0.1, 0.1));
            rows.push(f);
        }
        let features = (0..4).map(FeatureId::from_global_index).collect();
        (Matrix::from_rows(&rows), y, features)
    }

    #[test]
    fn top_features_are_the_coupled_ones() {
        let (x, y, f) = experiment();
        let path = LassoPath::compute(&x, &y, &f, 30, 1e-3);
        let top2 = path.top_k(2);
        assert!(top2.contains(&FeatureId::from_global_index(0)), "{top2:?}");
        assert!(top2.contains(&FeatureId::from_global_index(2)), "{top2:?}");
        // strongest coupling enters first
        assert_eq!(top2[0], FeatureId::from_global_index(0));
    }

    #[test]
    fn trajectory_starts_at_zero_and_grows() {
        let (x, y, f) = experiment();
        let path = LassoPath::compute(&x, &y, &f, 25, 1e-3);
        let traj = path.trajectory(FeatureId::from_global_index(0)).unwrap();
        assert_eq!(traj.len(), 25);
        assert_eq!(traj[0], 0.0, "alpha_max zeroes everything");
        assert!(traj.last().unwrap().abs() > 0.5);
    }

    #[test]
    fn noise_features_peak_low() {
        let (x, y, f) = experiment();
        let path = LassoPath::compute(&x, &y, &f, 30, 1e-3);
        let peaks = path.peak_importance();
        assert!(peaks[0] > 5.0 * peaks[1], "{peaks:?}");
        assert!(peaks[2] > 2.0 * peaks[3], "{peaks:?}");
    }

    #[test]
    fn trajectory_of_unknown_feature_is_none() {
        let (x, y, f) = experiment();
        let path = LassoPath::compute(&x, &y, &f, 10, 1e-2);
        assert!(path.trajectory(FeatureId::from_global_index(20)).is_none());
    }
}

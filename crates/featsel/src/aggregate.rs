//! Rank aggregation across experiments (§4.2): "For top-k feature
//! selection, we aggregate the ranks across experiments and select the
//! top-k features with the lowest aggregate rank."

use wp_telemetry::FeatureId;

use crate::ranking::Ranking;

/// Aggregates per-experiment rankings into one ranking by summing each
/// feature's rank positions (lower sum = more important overall).
///
/// All rankings must share the same feature universe (any order).
pub fn aggregate_rankings(rankings: &[Ranking]) -> Ranking {
    assert!(!rankings.is_empty(), "need at least one ranking");
    let universe = rankings[0].features.clone();
    let p = universe.len();
    let mut rank_sums = vec![0usize; p];
    for r in rankings {
        assert_eq!(r.len(), p, "rankings must share the feature universe");
        for (i, &f) in universe.iter().enumerate() {
            let rank = r
                .rank_of(f)
                .unwrap_or_else(|| panic!("feature {} missing from a ranking", f.name()));
            rank_sums[i] += rank;
        }
    }
    // lower sum = better; convert to descending scores
    let scores: Vec<f64> = rank_sums
        .iter()
        .map(|&s| (p * rankings.len()) as f64 - s as f64)
        .collect();
    Ranking::from_scores(universe, scores)
}

/// Convenience: the top-k features by aggregate rank.
pub fn aggregate_top_k(rankings: &[Ranking], k: usize) -> Vec<FeatureId> {
    aggregate_rankings(rankings).top_k(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(n: usize) -> Vec<FeatureId> {
        (0..n).map(FeatureId::from_global_index).collect()
    }

    #[test]
    fn unanimous_rankings_aggregate_to_same_order() {
        let r = Ranking::from_order(universe(3), vec![2, 0, 1]);
        let agg = aggregate_rankings(&[r.clone(), r.clone(), r]);
        assert_eq!(agg.order, vec![2, 0, 1]);
    }

    #[test]
    fn majority_wins_on_disagreement() {
        let a = Ranking::from_order(universe(3), vec![0, 1, 2]);
        let b = Ranking::from_order(universe(3), vec![0, 2, 1]);
        let c = Ranking::from_order(universe(3), vec![1, 0, 2]);
        let agg = aggregate_rankings(&[a, b, c]);
        // feature 0 ranks 0,0,1 (sum 1) — clearly first
        assert_eq!(agg.order[0], 0);
    }

    #[test]
    fn aggregation_handles_permuted_universes() {
        let u1 = universe(3);
        let mut u2 = universe(3);
        u2.swap(0, 2);
        let a = Ranking::from_order(u1, vec![0, 1, 2]);
        // in u2's coordinates, global feature 0 is column 2
        let b = Ranking::from_order(u2, vec![2, 1, 0]);
        let agg = aggregate_rankings(&[a, b]);
        assert_eq!(agg.top_k(1), vec![FeatureId::from_global_index(0)]);
    }

    #[test]
    fn top_k_convenience() {
        let a = Ranking::from_order(universe(4), vec![3, 1, 0, 2]);
        let top = aggregate_top_k(&[a], 2);
        assert_eq!(
            top,
            vec![
                FeatureId::from_global_index(3),
                FeatureId::from_global_index(1)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least one ranking")]
    fn empty_input_rejected() {
        let _ = aggregate_rankings(&[]);
    }
}

//! Filter-approach strategies (§4.1.1): variance threshold, Pearson
//! correlation, fANOVA, and mutual information gain. All score features
//! independently of any model fit.

use wp_linalg::{Matrix, MinMaxScaler};
use wp_telemetry::FeatureId;

use crate::ranking::Ranking;

/// Variance scoring on `[0, 1]`-normalized features.
///
/// Raw variances would be dominated by unit choices (IOPS in the
/// thousands vs utilizations in `[0, 1]`), so each feature is min-max
/// normalized first — this matches how the variance-threshold filter is
/// applied to heterogeneous telemetry in practice.
pub fn variance(x: &Matrix, features: &[FeatureId]) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let (_, xn) = MinMaxScaler::fit_transform(x);
    let scores: Vec<f64> = (0..xn.cols())
        .map(|j| wp_linalg::stats::variance(&xn.col(j)))
        .collect();
    Ranking::from_scores(features.to_vec(), scores)
}

/// Absolute Pearson correlation of each feature with the class label
/// treated as a numeric target (§4.1.1 measures "linear dependency of a
/// predictor with the target variable").
pub fn pearson(x: &Matrix, labels: &[usize], features: &[FeatureId]) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    assert_eq!(x.rows(), labels.len(), "one label per row");
    let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
    let scores: Vec<f64> = (0..x.cols())
        .map(|j| wp_linalg::stats::pearson(&x.col(j), &y).abs())
        .collect();
    Ranking::from_scores(features.to_vec(), scores)
}

/// Functional ANOVA: one-way F-statistic of each feature grouped by the
/// class label — features that explain between-class variance score high.
pub fn fanova(x: &Matrix, labels: &[usize], features: &[FeatureId]) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let scores = wp_ml::info::f_statistic_matrix(x, labels);
    Ranking::from_scores(features.to_vec(), scores)
}

/// Default discretization bins for mutual information.
pub const MI_BINS: usize = 10;

/// Mutual information gain between each (discretized) feature and the
/// class label.
pub fn mi_gain(x: &Matrix, labels: &[usize], features: &[FeatureId]) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let scores = wp_ml::info::mutual_information_matrix(x, labels, MI_BINS);
    Ranking::from_scores(features.to_vec(), scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three features: [0] separates the two classes, [1] is noise with
    /// large scale, [2] is constant.
    fn dataset() -> (Matrix, Vec<usize>, Vec<FeatureId>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            rows.push(vec![
                class as f64 * 10.0 + (i % 5) as f64 * 0.1,
                ((i * 7919) % 100) as f64 * 1000.0,
                5.0,
            ]);
            labels.push(class);
        }
        let features = (0..3).map(FeatureId::from_global_index).collect();
        (Matrix::from_rows(&rows), labels, features)
    }

    #[test]
    fn variance_ignores_constant_features() {
        let (x, _, f) = dataset();
        let r = variance(&x, &f);
        assert_eq!(r.scores[2], 0.0);
        assert_eq!(*r.order.last().unwrap(), 2);
    }

    #[test]
    fn variance_is_scale_free() {
        let (x, _, f) = dataset();
        let r = variance(&x, &f);
        // feature 1 has huge raw variance but only because of its unit;
        // after normalization both informative features are comparable,
        // and neither dwarfs the other by orders of magnitude.
        assert!(r.scores[1] < r.scores[0] * 50.0);
    }

    #[test]
    fn pearson_top_ranks_separating_feature() {
        let (x, y, f) = dataset();
        let r = pearson(&x, &y, &f);
        assert_eq!(r.order[0], 0);
        assert_eq!(r.scores[2], 0.0);
    }

    #[test]
    fn fanova_top_ranks_separating_feature() {
        let (x, y, f) = dataset();
        let r = fanova(&x, &y, &f);
        assert_eq!(r.order[0], 0);
        assert!(r.scores[0] > r.scores[1] * 10.0);
    }

    #[test]
    fn mi_gain_top_ranks_separating_feature() {
        let (x, y, f) = dataset();
        let r = mi_gain(&x, &y, &f);
        assert_eq!(r.order[0], 0);
        assert!(r.scores[0] > r.scores[2]);
    }

    #[test]
    #[should_panic(expected = "one feature id per column")]
    fn column_mismatch_rejected() {
        let (x, _, _) = dataset();
        let _ = variance(&x, &[FeatureId::from_global_index(0)]);
    }
}

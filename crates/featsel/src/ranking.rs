//! The common output type of every feature-selection strategy.

use wp_telemetry::FeatureId;

/// A feature importance ranking: features ordered best-first, with the
/// score that produced the ordering (for rank-based strategies the score
/// is a synthetic `p − rank`).
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    /// The feature universe, in the order of the input matrix columns.
    pub features: Vec<FeatureId>,
    /// Importance score per feature (parallel to `features`); higher is
    /// more important.
    pub scores: Vec<f64>,
    /// Column indices into `features`, most important first.
    pub order: Vec<usize>,
}

impl Ranking {
    /// Builds a ranking from per-column scores (higher = better). Ties
    /// break toward the lower column index, making rankings stable.
    pub fn from_scores(features: Vec<FeatureId>, scores: Vec<f64>) -> Self {
        assert_eq!(features.len(), scores.len(), "one score per feature");
        let order = wp_linalg::ops::argsort_desc(&scores);
        Self {
            features,
            scores,
            order,
        }
    }

    /// Builds a ranking from an explicit best-first ordering of column
    /// indices, synthesizing scores `p − position`.
    pub fn from_order(features: Vec<FeatureId>, order: Vec<usize>) -> Self {
        assert_eq!(features.len(), order.len(), "order must be a permutation");
        let p = features.len();
        let mut scores = vec![0.0; p];
        for (pos, &col) in order.iter().enumerate() {
            assert!(col < p, "order index out of range");
            scores[col] = (p - pos) as f64;
        }
        Self {
            features,
            scores,
            order,
        }
    }

    /// The `k` most important features, best first (all features when
    /// `k ≥ p`).
    pub fn top_k(&self, k: usize) -> Vec<FeatureId> {
        self.order
            .iter()
            .take(k)
            .map(|&i| self.features[i])
            .collect()
    }

    /// 0-based rank of a feature (0 = most important); `None` when the
    /// feature is not in the universe.
    pub fn rank_of(&self, f: FeatureId) -> Option<usize> {
        let col = self.features.iter().position(|x| *x == f)?;
        self.order.iter().position(|&i| i == col)
    }

    /// Number of features in the universe.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True for an empty universe.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(n: usize) -> Vec<FeatureId> {
        (0..n).map(FeatureId::from_global_index).collect()
    }

    #[test]
    fn from_scores_orders_descending() {
        let r = Ranking::from_scores(universe(3), vec![0.1, 0.9, 0.5]);
        assert_eq!(r.order, vec![1, 2, 0]);
        assert_eq!(
            r.top_k(2),
            vec![
                FeatureId::from_global_index(1),
                FeatureId::from_global_index(2)
            ]
        );
    }

    #[test]
    fn from_order_synthesizes_scores() {
        let r = Ranking::from_order(universe(3), vec![2, 0, 1]);
        assert_eq!(r.scores, vec![2.0, 1.0, 3.0]);
        assert_eq!(r.rank_of(FeatureId::from_global_index(2)), Some(0));
    }

    #[test]
    fn rank_of_missing_feature_is_none() {
        let r = Ranking::from_scores(universe(2), vec![1.0, 2.0]);
        assert_eq!(r.rank_of(FeatureId::from_global_index(10)), None);
    }

    #[test]
    fn top_k_saturates() {
        let r = Ranking::from_scores(universe(2), vec![1.0, 2.0]);
        assert_eq!(r.top_k(99).len(), 2);
    }

    #[test]
    fn ties_break_to_lower_index() {
        let r = Ranking::from_scores(universe(3), vec![1.0, 1.0, 1.0]);
        assert_eq!(r.order, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "one score per feature")]
    fn mismatched_scores_rejected() {
        let _ = Ranking::from_scores(universe(2), vec![1.0]);
    }
}

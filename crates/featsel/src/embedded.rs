//! Embedded-approach strategies (§4.1.2): Lasso, Elastic Net, and random
//! forest importance — models whose training process itself produces
//! feature importances.

use wp_linalg::Matrix;
use wp_ml::forest::{ForestConfig, RandomForestClassifier};
use wp_ml::lasso::{ElasticNet, Lasso};
use wp_ml::traits::{Classifier, Regressor};
use wp_telemetry::FeatureId;

use crate::ranking::Ranking;

/// Default Lasso / Elastic-Net penalty for label-target selection.
///
/// The label target is standardized inside the models, so one moderate
/// penalty works across datasets; too large zeroes everything, too small
/// keeps noise features alive.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Lasso selection: fit on the class label as a numeric target, rank by
/// `|coefficient|` (standardized scale).
pub fn lasso(x: &Matrix, labels: &[usize], features: &[FeatureId], alpha: f64) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
    let mut model = Lasso::new(alpha);
    model.fit(x, &y);
    let scores = model.feature_importances().unwrap();
    Ranking::from_scores(features.to_vec(), scores)
}

/// Elastic-Net selection (`l1_ratio = 0.5`): like Lasso but spreads
/// weight across correlated predictors instead of picking one arbitrarily.
pub fn elastic_net(x: &Matrix, labels: &[usize], features: &[FeatureId], alpha: f64) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
    let mut model = ElasticNet::new(alpha, 0.5);
    model.fit(x, &y);
    let scores = model.feature_importances().unwrap();
    Ranking::from_scores(features.to_vec(), scores)
}

/// Random-forest selection: mean impurity-decrease importance of a
/// classification forest over the workload labels.
pub fn random_forest(
    x: &Matrix,
    labels: &[usize],
    features: &[FeatureId],
    n_trees: usize,
    seed: u64,
) -> Ranking {
    assert_eq!(x.cols(), features.len(), "one feature id per column");
    let mut model = RandomForestClassifier::with_config(ForestConfig {
        n_trees,
        seed,
        ..ForestConfig::default()
    });
    model.fit(x, labels);
    let scores = model
        .feature_importances()
        .expect("forest exposes importances");
    Ranking::from_scores(features.to_vec(), scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0 separates classes; 1 and 2 are correlated copies of a
    /// weaker signal; 3 is noise.
    fn dataset() -> (Matrix, Vec<usize>, Vec<FeatureId>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let class = i % 3;
            let weak = class as f64 + ((i * 31) % 7) as f64 * 0.15;
            rows.push(vec![
                class as f64 * 4.0 + ((i * 13) % 5) as f64 * 0.05,
                weak,
                weak + 0.01,
                ((i * 7919) % 97) as f64,
            ]);
            labels.push(class);
        }
        let features = (0..4).map(FeatureId::from_global_index).collect();
        (Matrix::from_rows(&rows), labels, features)
    }

    #[test]
    fn lasso_ranks_signal_over_noise() {
        let (x, y, f) = dataset();
        let r = lasso(&x, &y, &f, DEFAULT_ALPHA);
        assert_eq!(r.order[0], 0, "scores: {:?}", r.scores);
        assert!(r.scores[0] > r.scores[3]);
    }

    #[test]
    fn elastic_net_balances_correlated_pair() {
        let (x, y, f) = dataset();
        let e = elastic_net(&x, &y, &f, 0.05);
        // the L2 component keeps both correlated features active with
        // nearly equal weight
        let gap = (e.scores[1] - e.scores[2]).abs();
        assert!(gap < 0.05, "enet gap {gap}");
        assert!(e.scores[1] > 0.0 && e.scores[2] > 0.0, "{:?}", e.scores);
    }

    #[test]
    fn forest_importance_ranks_signal_over_noise() {
        let (x, y, f) = dataset();
        let r = random_forest(&x, &y, &f, 25, 7);
        assert!(r.scores[0] > r.scores[3], "scores: {:?}", r.scores);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (x, y, f) = dataset();
        let a = random_forest(&x, &y, &f, 10, 3);
        let b = random_forest(&x, &y, &f, 10, 3);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn huge_alpha_zeroes_all_scores() {
        let (x, y, f) = dataset();
        let r = lasso(&x, &y, &f, 1e6);
        assert!(r.scores.iter().all(|s| *s == 0.0));
    }
}

//! Evaluating feature subsets via similarity computation (§4.1, §4.3):
//! "we base our similarity computation on the selected feature set and
//! compare it with the ground truth" — the accuracy of a strategy's top-k
//! subset is the 1-NN workload-identification accuracy using the L2,1
//! norm on Hist-FP fingerprints built from those features.

use wp_similarity::histfp::histfp;
use wp_similarity::measure::{try_distance_matrix, Measure, Norm};
use wp_similarity::repr::extract;
use wp_telemetry::{ExperimentRun, FeatureId};

use crate::ranking::Ranking;

/// Default histogram bins (paper: n = 10).
pub const EVAL_BINS: usize = 10;

/// 1-NN workload-identification accuracy of a feature subset over a set
/// of runs. `labels[i]` is the ground-truth workload index of `runs[i]`.
pub fn subset_accuracy(runs: &[ExperimentRun], labels: &[usize], features: &[FeatureId]) -> f64 {
    assert_eq!(runs.len(), labels.len(), "one label per run");
    assert!(!features.is_empty(), "need at least one feature");
    let data: Vec<_> = runs.iter().map(|r| extract(r, features)).collect();
    let fps = histfp(&data, EVAL_BINS);
    let d =
        try_distance_matrix(&fps, Measure::Norm(Norm::L21)).expect("fingerprints share a shape");
    wp_similarity::eval::one_nn_accuracy(&d, labels)
}

/// Accuracy of a ranking's top-k subset (Table 3 cells).
pub fn topk_accuracy(runs: &[ExperimentRun], labels: &[usize], ranking: &Ranking, k: usize) -> f64 {
    subset_accuracy(runs, labels, &ranking.top_k(k))
}

/// The Figure 4 accuracy-development patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyPattern {
    /// Accuracy keeps improving as features are added.
    Increasing,
    /// Accuracy peaks at an intermediate subset size, then declines.
    Peaking,
    /// No conclusive relationship.
    Inconclusive,
}

/// Classifies an accuracy-vs-k curve into the paper's three patterns.
///
/// `curve` holds `(k, accuracy)` pairs in increasing `k`. The heuristic:
/// a `Peaking` curve rises to an interior maximum that beats both
/// endpoints by more than `tol`; an `Increasing` curve is (weakly)
/// monotone with its final value within `tol` of the maximum; everything
/// else is `Inconclusive`.
pub fn classify_pattern(curve: &[(usize, f64)], tol: f64) -> AccuracyPattern {
    assert!(curve.len() >= 2, "need at least two points");
    let first = curve[0].1;
    let last = curve.last().unwrap().1;
    let (peak_idx, peak) = curve
        .iter()
        .enumerate()
        .map(|(i, (_, a))| (i, *a))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap();
    let interior = peak_idx > 0 && peak_idx + 1 < curve.len();
    let monotone = curve.windows(2).all(|w| w[1].1 >= w[0].1 - tol);
    if interior && peak > last + tol && peak > first + tol {
        AccuracyPattern::Peaking
    } else if monotone && last >= peak - tol {
        AccuracyPattern::Increasing
    } else {
        AccuracyPattern::Inconclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_workloads::engine::Simulator;
    use wp_workloads::{benchmarks, Sku};

    fn runs_and_labels() -> (Vec<ExperimentRun>, Vec<usize>) {
        let mut sim = Simulator::new(17);
        sim.config.samples = 60;
        let sku = Sku::new("cpu16", 16, 64.0);
        let specs = [
            benchmarks::tpcc(),
            benchmarks::tpch(),
            benchmarks::twitter(),
        ];
        let mut runs = Vec::new();
        let mut labels = Vec::new();
        for (li, spec) in specs.iter().enumerate() {
            let terminals = if spec.name == "TPC-H" { 1 } else { 8 };
            for r in 0..3 {
                runs.push(sim.simulate(spec, &sku, terminals, r, r % 3));
                labels.push(li);
            }
        }
        (runs, labels)
    }

    #[test]
    fn all_features_identify_workloads() {
        let (runs, labels) = runs_and_labels();
        let acc = subset_accuracy(&runs, &labels, &FeatureId::all());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn discriminative_single_feature_beats_lock_wait() {
        use wp_telemetry::{PlanFeature, ResourceFeature};
        let (runs, labels) = runs_and_labels();
        let good = subset_accuracy(
            &runs,
            &labels,
            &[FeatureId::Plan(PlanFeature::TableCardinality)],
        );
        let bad = subset_accuracy(
            &runs,
            &labels,
            &[FeatureId::Resource(ResourceFeature::LockWaitAbs)],
        );
        assert!(good > bad, "good {good} vs bad {bad}");
    }

    #[test]
    fn pattern_classification() {
        let inc = [(1, 0.5), (3, 0.7), (7, 0.9), (15, 0.95)];
        assert_eq!(classify_pattern(&inc, 0.01), AccuracyPattern::Increasing);
        let peak = [(1, 0.5), (3, 0.9), (7, 0.95), (15, 0.8)];
        assert_eq!(classify_pattern(&peak, 0.01), AccuracyPattern::Peaking);
        let noisy = [(1, 0.9), (3, 0.5), (7, 0.8), (15, 0.85)];
        assert_eq!(
            classify_pattern(&noisy, 0.01),
            AccuracyPattern::Inconclusive
        );
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn empty_subset_rejected() {
        let (runs, labels) = runs_and_labels();
        let _ = subset_accuracy(&runs, &labels, &[]);
    }
}

//! Randomized property tests for the feature-selection strategies: every
//! strategy must produce a complete, stable ranking and respect basic
//! information-ordering invariants on synthetic data. Seeded [`Rng64`]
//! case loops replace the former external property-testing dependency.

use wp_featsel::aggregate::aggregate_rankings;
use wp_featsel::wrapper::WrapperConfig;
use wp_featsel::{Ranking, Strategy};
use wp_linalg::{Matrix, Rng64};
use wp_telemetry::FeatureId;

const CASES: usize = 12;

/// Builds a dataset where column 0 separates two classes with gap
/// `signal`, and the remaining columns are deterministic pseudo-noise.
fn dataset(n: usize, p: usize, signal: f64) -> (Matrix, Vec<usize>) {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let mut row = Vec::with_capacity(p);
        row.push(class as f64 * signal + ((i * 13) % 5) as f64 * 0.05);
        for j in 1..p {
            row.push((((i * 31 + j * 17) * 2654435761) % 997) as f64 / 100.0);
        }
        rows.push(row);
        labels.push(class);
    }
    (Matrix::from_rows(&rows), labels)
}

fn universe(p: usize) -> Vec<FeatureId> {
    (0..p).map(FeatureId::from_global_index).collect()
}

fn fast() -> WrapperConfig {
    WrapperConfig {
        cv_folds: 2,
        logreg_iters: 40,
        ..WrapperConfig::default()
    }
}

fn is_permutation(r: &Ranking, p: usize) -> bool {
    let mut sorted = r.order.clone();
    sorted.sort_unstable();
    sorted == (0..p).collect::<Vec<_>>()
}

#[test]
fn every_strategy_emits_a_permutation() {
    let mut rng = Rng64::new(0x51);
    for _ in 0..CASES {
        let n = {
            let n = 12 + rng.below(28);
            n - n % 2 // balanced classes
        };
        let p = 2 + rng.below(4);
        let (x, labels) = dataset(n, p, 5.0);
        let u = universe(p);
        for strategy in Strategy::all() {
            let r = strategy.rank(&x, &labels, &u, &fast());
            assert!(is_permutation(&r, p), "{}", strategy.label());
            assert_eq!(r.top_k(p).len(), p);
        }
    }
}

#[test]
fn filters_put_a_strong_signal_first() {
    let mut rng = Rng64::new(0x52);
    for _ in 0..CASES {
        let n = {
            let n = 20 + rng.below(40);
            n - n % 2
        };
        let p = 3 + rng.below(5);
        let (x, labels) = dataset(n, p, 50.0);
        let u = universe(p);
        for strategy in [Strategy::FAnova, Strategy::MiGain, Strategy::Pearson] {
            let r = strategy.rank(&x, &labels, &u, &fast());
            assert_eq!(r.order[0], 0, "{}: {:?}", strategy.label(), r.order);
        }
    }
}

#[test]
fn rankings_are_deterministic() {
    let mut rng = Rng64::new(0x53);
    for _ in 0..CASES {
        let n = {
            let n = 16 + rng.below(24);
            n - n % 2
        };
        let p = 2 + rng.below(3);
        let (x, labels) = dataset(n, p, 5.0);
        let u = universe(p);
        for strategy in [Strategy::Lasso, Strategy::RandomForest, Strategy::Variance] {
            let a = strategy.rank(&x, &labels, &u, &fast());
            let b = strategy.rank(&x, &labels, &u, &fast());
            assert_eq!(a.order, b.order, "{}", strategy.label());
        }
    }
}

#[test]
fn aggregation_of_identical_rankings_is_identity() {
    let mut rng = Rng64::new(0x54);
    for _ in 0..CASES {
        let p = 2 + rng.below(8);
        let copies = 1 + rng.below(4);
        let u = universe(p);
        let order: Vec<usize> = (0..p).rev().collect();
        let r = Ranking::from_order(u, order.clone());
        let agg = aggregate_rankings(&vec![r; copies]);
        assert_eq!(agg.order, order);
    }
}

#[test]
fn top_k_is_a_prefix_of_top_k_plus_one() {
    let mut rng = Rng64::new(0x55);
    for _ in 0..CASES {
        let n = {
            let n = 16 + rng.below(24);
            n - n % 2
        };
        let p = 3 + rng.below(4);
        let (x, labels) = dataset(n, p, 5.0);
        let u = universe(p);
        let r = Strategy::FAnova.rank(&x, &labels, &u, &fast());
        for k in 1..p {
            let a = r.top_k(k);
            let b = r.top_k(k + 1);
            assert_eq!(&a[..], &b[..k]);
        }
    }
}

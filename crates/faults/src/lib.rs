//! `wp-faults` — seeded, deterministic fault injection for the serving
//! path.
//!
//! Chaos testing is only useful when a failing run can be replayed, so
//! every fault decision here is a pure function of `(plan seed, fault
//! site, event ordinal)` through the workspace's [`Rng64`] generator:
//! two runs of the same plan against the same request sequence inject
//! the same faults at the same points, bit for bit. Wall-clock time
//! never feeds a decision.
//!
//! The unit of injection is a [`FaultPlan`] — one probability (and, for
//! the timed sites, a duration parameter) per fault site, plus the seed.
//! A plan is parsed from the compact `key=value` spec accepted by the
//! `WP_FAULTS` environment variable and the `--faults` / `--plan` CLI
//! flags:
//!
//! ```text
//! seed=7,reset=0.05,latency=0.25,latency_ms=1..10,error=0.15,
//! error:/similar=0.3,slow=0.1,truncate=0.05,stall=0.02,stall_ms=1500
//! ```
//!
//! Sites (all probabilities default to `0`, i.e. disabled):
//!
//! | key | site | effect |
//! |---|---|---|
//! | `reset` | accept | connection dropped right after accept |
//! | `latency` | handler | `latency_ms` sleep before the handler runs |
//! | `stall` | response | `stall_ms` hold before writing (client times out) |
//! | `error` | handler | handler replaced by `503` + `Retry-After` |
//! | `error:<path>` | handler | per-endpoint override of `error` |
//! | `slow` | write | response dribbled in `slow_chunks` chunks |
//! | `truncate` | write | only half the response bytes written, then close |
//! | `corrupt` | corpus | reference corpus corrupted before startup |
//!
//! The per-request sites (`latency`, `stall`, `error`, `slow`,
//! `truncate`) are all drawn from **one** stream keyed by the request
//! ordinal, at the moment the request is read — so a request's complete
//! fault fate is fixed before any handler or writer races with other
//! workers. With a single closed-loop client the request (and
//! connection) ordinals are reproducible, which is what makes whole
//! chaos runs byte-identical (see `wp chaos` and `tests/chaos_e2e.rs`).
//!
//! A disabled plan (`!plan.is_enabled()`) costs the server exactly one
//! `Option` check per connection: no injector is even constructed.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use wp_core::offline::OfflineCorpus;
use wp_linalg::Rng64;

/// Stream salts: decisions of different sites never share a stream.
const SALT_ACCEPT: u64 = 0xACC3_97C0;
const SALT_REQUEST: u64 = 0x9E06_E571;
const SALT_CORPUS: u64 = 0xC02B_0515;

/// One seeded fault-injection configuration: a probability per fault
/// site plus the duration parameters of the timed sites.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every decision stream.
    pub seed: u64,
    /// P(drop a connection right after accept).
    pub reset: f64,
    /// P(artificial latency before the handler).
    pub latency: f64,
    /// Inclusive range the injected latency is drawn from, milliseconds.
    pub latency_ms: (u64, u64),
    /// P(hold the response long enough for the client to time out).
    pub stall: f64,
    /// Stall duration, milliseconds (pick it above the client timeout).
    pub stall_ms: u64,
    /// P(replace the handler with a `503` + `Retry-After: 0`).
    pub error: f64,
    /// Per-endpoint overrides of `error`, e.g. `("/similar", 0.3)`.
    pub error_paths: Vec<(String, f64)>,
    /// P(dribble the response out in small delayed chunks).
    pub slow: f64,
    /// Chunks a slow write is split into.
    pub slow_chunks: usize,
    /// Pause between slow-write chunks, milliseconds.
    pub slow_chunk_ms: u64,
    /// P(write only half the response bytes, then close).
    pub truncate: f64,
    /// P(corrupt a corpus reference before startup), per reference.
    pub corrupt: f64,
}

impl Default for FaultPlan {
    /// All sites disabled; parameter defaults suit fast test runs.
    fn default() -> Self {
        Self {
            seed: 0,
            reset: 0.0,
            latency: 0.0,
            latency_ms: (1, 10),
            stall: 0.0,
            stall_ms: 1500,
            error: 0.0,
            error_paths: Vec::new(),
            slow: 0.0,
            slow_chunks: 4,
            slow_chunk_ms: 2,
            truncate: 0.0,
            corrupt: 0.0,
        }
    }
}

impl FaultPlan {
    /// True when any site has a positive probability — a disabled plan
    /// must add no overhead to the serving path.
    pub fn is_enabled(&self) -> bool {
        self.reset > 0.0
            || self.latency > 0.0
            || self.stall > 0.0
            || self.error > 0.0
            || self.error_paths.iter().any(|(_, p)| *p > 0.0)
            || self.slow > 0.0
            || self.truncate > 0.0
            || self.corrupt > 0.0
    }

    /// Parses the compact `key=value[,key=value…]` spec (see the module
    /// docs for the key table). Unknown keys and out-of-range
    /// probabilities are errors, never silently ignored — a typo in a
    /// chaos spec must not quietly run a fault-free "chaos" suite.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry '{part}' is not key=value"))?;
            let prob = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("'{key}': probability '{value}' not in [0, 1]"))
            };
            let millis = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("'{key}': '{value}' is not a millisecond count"))
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("'seed': '{value}' is not a u64"))?;
                }
                "reset" => plan.reset = prob()?,
                "latency" => plan.latency = prob()?,
                "stall" => plan.stall = prob()?,
                "error" => plan.error = prob()?,
                "slow" => plan.slow = prob()?,
                "truncate" => plan.truncate = prob()?,
                "corrupt" => plan.corrupt = prob()?,
                "latency_ms" => {
                    let (lo, hi) = match value.split_once("..") {
                        Some((lo, hi)) => (lo.parse::<u64>().ok(), hi.parse::<u64>().ok()),
                        None => {
                            let v = value.parse::<u64>().ok();
                            (v, v)
                        }
                    };
                    match (lo, hi) {
                        (Some(lo), Some(hi)) if lo <= hi => plan.latency_ms = (lo, hi),
                        _ => {
                            return Err(format!(
                                "'latency_ms': '{value}' is not N or LO..HI with LO <= HI"
                            ))
                        }
                    }
                }
                "stall_ms" => plan.stall_ms = millis()?,
                "slow_chunk_ms" => plan.slow_chunk_ms = millis()?,
                "slow_chunks" => {
                    plan.slow_chunks =
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| {
                                format!("'slow_chunks': '{value}' is not a positive count")
                            })?;
                }
                _ => match key.strip_prefix("error:") {
                    Some(path) if path.starts_with('/') => {
                        let p = prob()?;
                        plan.error_paths.push((path.to_string(), p));
                    }
                    _ => return Err(format!("unknown fault spec key '{key}'")),
                },
            }
        }
        Ok(plan)
    }

    /// Renders the plan back to a spec string that [`Self::parse`] would
    /// accept — the canonical form recorded in `BENCH_chaos.json`.
    pub fn render(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        let mut prob = |key: &str, p: f64| {
            if p > 0.0 {
                parts.push(format!("{key}={p}"));
            }
        };
        prob("reset", self.reset);
        prob("latency", self.latency);
        prob("stall", self.stall);
        prob("error", self.error);
        prob("slow", self.slow);
        prob("truncate", self.truncate);
        prob("corrupt", self.corrupt);
        for (path, p) in &self.error_paths {
            parts.push(format!("error:{path}={p}"));
        }
        if self.latency > 0.0 {
            parts.push(format!(
                "latency_ms={}..{}",
                self.latency_ms.0, self.latency_ms.1
            ));
        }
        if self.stall > 0.0 {
            parts.push(format!("stall_ms={}", self.stall_ms));
        }
        if self.slow > 0.0 {
            parts.push(format!(
                "slow_chunks={},slow_chunk_ms={}",
                self.slow_chunks, self.slow_chunk_ms
            ));
        }
        parts.join(",")
    }

    /// Reads a plan from the `WP_FAULTS` environment variable.
    /// `Ok(None)` when unset or empty.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("WP_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec)
                .map(Some)
                .map_err(|e| format!("WP_FAULTS: {e}")),
            _ => Ok(None),
        }
    }

    /// The effective `503`-injection probability of one endpoint.
    fn error_prob(&self, path: &str) -> f64 {
        self.error_paths
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, p)| *p)
            .unwrap_or(self.error)
    }
}

/// What to do with the bytes of one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write the response normally.
    Clean,
    /// Write in `chunks` pieces with `pause_ms` between them (a slow
    /// peer-facing NIC, a congested path). The response still completes.
    Slow {
        /// Number of chunks the byte stream is split into.
        chunks: usize,
        /// Pause between chunks, milliseconds.
        pause_ms: u64,
    },
    /// Write only the first half of the bytes, then close the
    /// connection — the client sees a short read.
    Truncate,
}

/// The complete fault fate of one request, drawn in one deterministic
/// shot when the request is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestFaults {
    /// Sleep before the handler runs.
    pub pre_latency: Option<Duration>,
    /// Sleep after the handler, before the response bytes go out (long
    /// enough to trip a client-side timeout).
    pub stall: Option<Duration>,
    /// Replace the handler with a `503` + `Retry-After: 0`.
    pub error_503: bool,
    /// How the response bytes are written.
    pub write: WriteFault,
}

impl RequestFaults {
    /// The fault-free fate.
    pub const CLEAN: RequestFaults = RequestFaults {
        pre_latency: None,
        stall: None,
        error_503: false,
        write: WriteFault::Clean,
    };
}

/// Draws fault decisions for a live server from a [`FaultPlan`].
///
/// Ordinal counters make each decision a pure function of
/// `(seed, site, ordinal)`; the counters themselves are the only mutable
/// state and are advanced with relaxed atomics (the ordinal *assignment*
/// is deterministic whenever events are sequenced — e.g. by a single
/// closed-loop client — and merely racy, never unsound, otherwise).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    connections: AtomicU64,
    requests: AtomicU64,
}

impl FaultInjector {
    /// Wraps a plan. (A disabled plan injects nothing; callers normally
    /// skip constructing an injector for one.)
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// `(connections seen, requests seen)` — introspection for tests.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.connections.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
        )
    }

    /// One fresh decision stream for event `n` of a site.
    fn stream(&self, salt: u64, n: u64) -> Rng64 {
        Rng64::new(
            self.plan
                .seed
                .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ salt,
        )
    }

    /// Accept-time decision: `true` drops the freshly accepted
    /// connection (the client sees a reset/EOF before any response).
    pub fn reset_connection(&self) -> bool {
        let n = self.connections.fetch_add(1, Ordering::Relaxed);
        self.plan.reset > 0.0 && self.stream(SALT_ACCEPT, n).unit() < self.plan.reset
    }

    /// Read-time decision: the complete fate of request `n`. Drawn
    /// before any handler work so no later scheduling race can reorder
    /// the draws of concurrent requests.
    pub fn request_faults(&self, path: &str) -> RequestFaults {
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        let mut rng = self.stream(SALT_REQUEST, n);
        // Fixed draw order — the stream layout is part of the replay
        // contract. Every site consumes its probability draw even when
        // disabled, so enabling one site never shifts another's stream.
        let latency_draw = rng.unit();
        let (lo, hi) = self.plan.latency_ms;
        let latency_ms = lo + (rng.unit() * (hi - lo + 1) as f64) as u64;
        let stall_draw = rng.unit();
        let error_draw = rng.unit();
        let slow_draw = rng.unit();
        let truncate_draw = rng.unit();
        let write = if truncate_draw < self.plan.truncate {
            WriteFault::Truncate
        } else if slow_draw < self.plan.slow {
            WriteFault::Slow {
                chunks: self.plan.slow_chunks,
                pause_ms: self.plan.slow_chunk_ms,
            }
        } else {
            WriteFault::Clean
        };
        RequestFaults {
            pre_latency: (latency_draw < self.plan.latency)
                .then(|| Duration::from_millis(latency_ms.min(hi))),
            stall: (stall_draw < self.plan.stall)
                .then(|| Duration::from_millis(self.plan.stall_ms)),
            error_503: error_draw < self.plan.error_prob(path),
            write,
        }
    }
}

/// The corpus corruptions the `corrupt` site smuggles into references —
/// exactly the adversarial shapes `OfflineCorpus::validate` must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Poke a `NaN` into one resource-series sample.
    NanSample,
    /// Replace one run's resource series with a zero-length series.
    EmptySeries,
    /// Drop one `runs_to` entry so the from/to pair counts mismatch.
    DroppedPair,
}

impl Corruption {
    /// All corruption modes, in draw order.
    pub const ALL: [Corruption; 3] = [
        Corruption::NanSample,
        Corruption::EmptySeries,
        Corruption::DroppedPair,
    ];
}

/// Applies one corruption to reference `r`, using `rng` to pick the run
/// and sample. The result must fail `OfflineReference::validate`.
pub fn corrupt_reference(
    r: &mut wp_core::offline::OfflineReference,
    rng: &mut Rng64,
    mode: Corruption,
) {
    match mode {
        Corruption::NanSample => {
            let run = rng.below(r.runs_from.len());
            let data = &mut r.runs_from[run].resources.data;
            if data.rows() > 0 {
                let row = rng.below(data.rows());
                let col = rng.below(data.cols());
                data.row_mut(row)[col] = f64::NAN;
            }
        }
        Corruption::EmptySeries => {
            let run = rng.below(r.runs_from.len());
            let cols = r.runs_from[run].resources.data.cols();
            r.runs_from[run].resources.data = wp_linalg::Matrix::zeros(0, cols);
        }
        Corruption::DroppedPair => {
            r.runs_to.pop();
        }
    }
}

/// Applies the plan's `corrupt` site to a corpus: each reference is
/// independently corrupted with probability `plan.corrupt`, mode and
/// position drawn from the reference's own seeded stream. Returns which
/// references were hit (empty means the corpus is untouched).
pub fn apply_corpus_corruption(
    plan: &FaultPlan,
    corpus: &mut OfflineCorpus,
) -> Vec<(String, Corruption)> {
    let mut hit = Vec::new();
    if plan.corrupt <= 0.0 {
        return hit;
    }
    for (i, r) in corpus.references.iter_mut().enumerate() {
        let mut rng = Rng64::new(
            plan.seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ SALT_CORPUS,
        );
        if rng.unit() < plan.corrupt {
            let mode = Corruption::ALL[rng.below(Corruption::ALL.len())];
            corrupt_reference(r, &mut rng, mode);
            hit.push((r.name.clone(), mode));
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> &'static str {
        "seed=7,reset=0.05,latency=0.25,latency_ms=1..10,error=0.15,\
         error:/similar=0.3,slow=0.1,truncate=0.05,stall=0.02,stall_ms=900"
    }

    #[test]
    fn parse_render_round_trip() {
        let plan = FaultPlan::parse(full_spec()).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.reset, 0.05);
        assert_eq!(plan.latency_ms, (1, 10));
        assert_eq!(plan.stall_ms, 900);
        assert_eq!(plan.error_prob("/similar"), 0.3);
        assert_eq!(plan.error_prob("/predict"), 0.15);
        assert!(plan.is_enabled());

        let back = FaultPlan::parse(&plan.render()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::parse("reset=1.5").is_err());
        assert!(FaultPlan::parse("reset=-0.1").is_err());
        assert!(FaultPlan::parse("nonsense=0.1").is_err());
        assert!(FaultPlan::parse("reset").is_err());
        assert!(FaultPlan::parse("latency_ms=9..2").is_err());
        assert!(
            FaultPlan::parse("error:similar=0.2").is_err(),
            "path must start with /"
        );
        assert!(FaultPlan::parse("slow_chunks=0").is_err());
    }

    #[test]
    fn empty_and_default_plans_are_disabled() {
        assert!(!FaultPlan::default().is_enabled());
        let plan = FaultPlan::parse("seed=3").unwrap();
        assert!(!plan.is_enabled());
        // zero-probability entries keep the plan disabled
        let plan = FaultPlan::parse("reset=0,error=0.0").unwrap();
        assert!(!plan.is_enabled());
    }

    #[test]
    fn decisions_are_pure_functions_of_the_ordinal() {
        let plan = FaultPlan::parse(full_spec()).unwrap();
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let fates_a: Vec<RequestFaults> = (0..200).map(|_| a.request_faults("/similar")).collect();
        let fates_b: Vec<RequestFaults> = (0..200).map(|_| b.request_faults("/similar")).collect();
        assert_eq!(fates_a, fates_b);
        let resets_a: Vec<bool> = (0..200).map(|_| a.reset_connection()).collect();
        let resets_b: Vec<bool> = (0..200).map(|_| b.reset_connection()).collect();
        assert_eq!(resets_a, resets_b);
        // the plan actually fires at these probabilities
        assert!(fates_a.iter().any(|f| f.error_503));
        assert!(fates_a.iter().any(|f| f.pre_latency.is_some()));
        assert!(resets_a.iter().any(|r| *r));
    }

    #[test]
    fn disabled_sites_never_fire_and_streams_do_not_shift() {
        let quiet = FaultInjector::new(FaultPlan::parse("seed=7,latency=0.5").unwrap());
        for _ in 0..100 {
            let f = quiet.request_faults("/similar");
            assert!(!f.error_503);
            assert!(f.stall.is_none());
            assert_eq!(f.write, WriteFault::Clean);
        }
        // enabling an unrelated site leaves the latency decisions intact
        let noisy = FaultInjector::new(FaultPlan::parse("seed=7,latency=0.5,error=0.9").unwrap());
        let quiet = FaultInjector::new(FaultPlan::parse("seed=7,latency=0.5").unwrap());
        for _ in 0..100 {
            assert_eq!(
                quiet.request_faults("/x").pre_latency,
                noisy.request_faults("/x").pre_latency
            );
        }
    }

    #[test]
    fn injected_latency_respects_the_configured_range() {
        let plan = FaultPlan::parse("seed=1,latency=1.0,latency_ms=3..9").unwrap();
        let inj = FaultInjector::new(plan);
        for _ in 0..300 {
            let d = inj.request_faults("/similar").pre_latency.unwrap();
            let ms = d.as_millis() as u64;
            assert!((3..=9).contains(&ms), "latency {ms} ms outside 3..=9");
        }
    }

    #[test]
    fn corruption_modes_break_validation() {
        use wp_core::offline::{OfflineCorpus, OfflineReference};
        use wp_linalg::Matrix;

        let reference = || {
            let run = |v: f64| {
                let mut r = test_run();
                r.resources.data = Matrix::filled(4, r.resources.data.cols(), v);
                r
            };
            OfflineReference {
                name: "R".to_string(),
                runs_from: vec![run(1.0), run(2.0)],
                runs_to: vec![run(3.0), run(4.0)],
            }
        };
        for mode in Corruption::ALL {
            let mut r = reference();
            corrupt_reference(&mut r, &mut Rng64::new(5), mode);
            assert!(r.validate().is_err(), "{mode:?} must fail validation");
        }

        // plan-driven corruption is deterministic and reported
        let mut corpus = OfflineCorpus {
            references: vec![reference()],
        };
        let plan = FaultPlan::parse("seed=11,corrupt=1.0").unwrap();
        let hit = apply_corpus_corruption(&plan, &mut corpus);
        assert_eq!(hit.len(), 1);
        assert!(corpus.validate().is_err());

        let mut corpus2 = OfflineCorpus {
            references: vec![reference()],
        };
        let hit2 = apply_corpus_corruption(&plan, &mut corpus2);
        assert_eq!(hit, hit2, "same seed must corrupt identically");
    }

    fn test_run() -> wp_telemetry::ExperimentRun {
        // A minimal structurally-valid run for corruption tests.
        use wp_telemetry::{ExperimentRun, PlanStats, ResourceSeries, RunKey};
        let n_res = wp_telemetry::ResourceFeature::ALL.len();
        let n_plan = wp_telemetry::PlanFeature::ALL.len();
        ExperimentRun {
            key: RunKey {
                workload: "W".to_string(),
                sku: "cpu2".to_string(),
                terminals: 1,
                run_index: 0,
                data_group: 0,
            },
            resources: ResourceSeries::new(wp_linalg::Matrix::filled(4, n_res, 0.5), 10.0),
            plans: PlanStats::new(
                wp_linalg::Matrix::filled(1, n_plan, 0.5),
                vec!["q".to_string()],
            ),
            throughput: 100.0,
            latency_ms: 1.0,
            per_query_latency_ms: vec![1.0],
        }
    }
}

//! A minimal slab allocator: stable `usize` keys for connection state,
//! reusing freed slots through a free list so keys stay dense and the
//! backing vector stops growing once the connection count plateaus.

#[derive(Debug)]
pub(crate) struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Stores `value` and returns its key. Freed slots are reused
    /// before the backing vector grows.
    pub(crate) fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(key) => {
                debug_assert!(self.entries[key].is_none());
                self.entries[key] = Some(value);
                key
            }
            None => {
                self.entries.push(Some(value));
                self.entries.len() - 1
            }
        }
    }

    pub(crate) fn remove(&mut self, key: usize) -> Option<T> {
        let slot = self.entries.get_mut(key)?;
        let value = slot.take();
        if value.is_some() {
            self.len -= 1;
            self.free.push(key);
        }
        value
    }

    pub(crate) fn get(&self, key: usize) -> Option<&T> {
        self.entries.get(key).and_then(|slot| slot.as_ref())
    }

    pub(crate) fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        self.entries.get_mut(key).and_then(|slot| slot.as_mut())
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Keys of every live entry, in slot order.
    pub(crate) fn keys(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(key, slot)| slot.as_ref().map(|_| key))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::Slab;

    #[test]
    fn insert_reuses_freed_slots() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert!(!slab.is_empty());
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double-remove is a no-op");
        let c = slab.insert("c");
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.get(c), Some(&"c"));
        assert_eq!(slab.keys(), vec![a, b]);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let slab: Slab<u8> = Slab::new();
        assert!(slab.get(7).is_none());
        assert!(slab.is_empty());
    }
}

//! A fixed-tick deadline wheel. Each slot holds the connection tokens
//! whose deadline falls inside that tick, so arming a timeout is a
//! `Vec::push` and the event loop learns its next wake-up time without
//! a heap or a sorted structure.
//!
//! Entries are hints, not facts: the connection itself stores the
//! authoritative `deadline`, and the loop re-checks it when an entry
//! fires. Deadlines beyond the wheel horizon are clamped to the last
//! slot and lazily re-inserted when they fire early; stale entries for
//! re-armed or recycled tokens fall out the same way. That makes a
//! token's fire event mean exactly "check this token's deadline now" —
//! always safe, never a missed timeout.

use std::time::{Duration, Instant};

#[derive(Debug)]
pub(crate) struct DeadlineWheel {
    slots: Vec<Vec<usize>>,
    tick: Duration,
    origin: Instant,
    /// Absolute tick index of the next slot that has not fired yet.
    cursor: u64,
}

impl DeadlineWheel {
    pub(crate) fn new(tick: Duration, slots: usize, origin: Instant) -> Self {
        assert!(!tick.is_zero() && slots > 0);
        DeadlineWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            origin,
            cursor: 0,
        }
    }

    /// Absolute tick at which a deadline is guaranteed to have passed.
    fn tick_for_deadline(&self, deadline: Instant) -> u64 {
        let nanos = deadline.saturating_duration_since(self.origin).as_nanos();
        let tick = self.tick.as_nanos();
        (nanos.div_ceil(tick)).min(u64::MAX as u128) as u64
    }

    /// Last tick whose slot time has fully elapsed by `now`.
    fn tick_for_now(&self, now: Instant) -> u64 {
        let nanos = now.saturating_duration_since(self.origin).as_nanos();
        ((nanos / self.tick.as_nanos()).min(u64::MAX as u128)) as u64
    }

    /// Arms an entry so `token` fires no later than `deadline` (earlier
    /// when the deadline lies past the wheel horizon — the fire check
    /// re-inserts it then).
    pub(crate) fn insert(&mut self, token: usize, deadline: Instant) {
        let len = self.slots.len() as u64;
        let idx = self
            .tick_for_deadline(deadline)
            .clamp(self.cursor, self.cursor + len - 1);
        self.slots[(idx % len) as usize].push(token);
    }

    /// Drains every slot whose tick has elapsed into `out`.
    pub(crate) fn expired(&mut self, now: Instant, out: &mut Vec<usize>) {
        let target = self.tick_for_now(now);
        if target < self.cursor {
            return;
        }
        let len = self.slots.len() as u64;
        let steps = (target - self.cursor + 1).min(len);
        for _ in 0..steps {
            let slot = (self.cursor % len) as usize;
            out.append(&mut self.slots[slot]);
            self.cursor += 1;
        }
        // Anything further ahead had no slot to live in, so nothing to
        // drain: jump the cursor straight to the present.
        self.cursor = self.cursor.max(target + 1);
    }

    /// Wall-clock instant of the next nonempty slot, if any.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        let len = self.slots.len() as u64;
        (self.cursor..self.cursor + len)
            .find(|idx| !self.slots[(idx % len) as usize].is_empty())
            .map(|idx| self.origin + self.tick.mul_f64(idx as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_deadline_not_before() {
        let origin = Instant::now();
        let mut wheel = DeadlineWheel::new(Duration::from_millis(5), 16, origin);
        wheel.insert(7, origin + Duration::from_millis(12));

        let mut out = Vec::new();
        wheel.expired(origin + Duration::from_millis(11), &mut out);
        assert!(out.is_empty(), "deadline has not passed yet");
        wheel.expired(origin + Duration::from_millis(15), &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn horizon_clamp_fires_early_for_reinsert() {
        let origin = Instant::now();
        let mut wheel = DeadlineWheel::new(Duration::from_millis(5), 8, origin);
        // 10s is far past the 40ms horizon: the entry must still fire
        // (early), so the caller can re-insert it.
        wheel.insert(3, origin + Duration::from_secs(10));
        let next = wheel.next_deadline().expect("entry is armed");
        assert!(next <= origin + Duration::from_millis(40));

        let mut out = Vec::new();
        wheel.expired(origin + Duration::from_millis(40), &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn cursor_recovers_after_a_long_stall() {
        let origin = Instant::now();
        let mut wheel = DeadlineWheel::new(Duration::from_millis(5), 8, origin);
        wheel.insert(1, origin + Duration::from_millis(5));

        let mut out = Vec::new();
        // The loop slept far past the whole wheel; one drain pass must
        // still surface the entry and leave the cursor in the present.
        wheel.expired(origin + Duration::from_secs(2), &mut out);
        assert_eq!(out, vec![1]);

        out.clear();
        wheel.insert(2, origin + Duration::from_millis(2005));
        wheel.expired(origin + Duration::from_millis(2010), &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn next_deadline_is_none_when_empty() {
        let wheel = DeadlineWheel::new(Duration::from_millis(5), 8, Instant::now());
        assert!(wheel.next_deadline().is_none());
    }
}

//! Readiness poller behind one small API: `epoll(7)` on Linux (O(1)
//! per-event dispatch, the production path) or `poll(2)` (portable
//! fallback for other Unix targets, also forceable on Linux via
//! `WP_REACTOR_POLLER=poll` or a config flag so CI exercises both
//! backends on the same box).

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

pub(crate) const INTEREST_NONE: u8 = 0;
pub(crate) const INTEREST_READ: u8 = 1;
pub(crate) const INTEREST_WRITE: u8 = 2;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

pub(crate) enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Poll(PollTable),
}

impl Poller {
    /// Picks the backend: epoll on Linux unless `force_poll` or the
    /// `WP_REACTOR_POLLER=poll` environment override asks for the
    /// portable path.
    pub(crate) fn new(force_poll: bool) -> io::Result<Poller> {
        let env_poll = std::env::var("WP_REACTOR_POLLER")
            .map(|v| v.eq_ignore_ascii_case("poll"))
            .unwrap_or(false);
        let _ = force_poll || env_poll;
        #[cfg(target_os = "linux")]
        {
            if !(force_poll || env_poll) {
                return Ok(Poller::Epoll(Epoll::new()?));
            }
        }
        Ok(Poller::Poll(PollTable::new()))
    }

    pub(crate) fn backend_name(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    pub(crate) fn add(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(sys::epoll::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(p) => p.add(fd, token, interest),
        }
    }

    pub(crate) fn modify(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(sys::epoll::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(p) => p.modify(fd, interest),
        }
    }

    pub(crate) fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ctl(sys::epoll::EPOLL_CTL_DEL, fd, 0, INTEREST_NONE),
            Poller::Poll(p) => p.remove(fd),
        }
    }

    /// Waits for readiness, appending into `out`. Error/hangup
    /// conditions surface as `readable` so the connection's next read
    /// observes them and runs the ordinary close path.
    pub(crate) fn wait(
        &mut self,
        out: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(out, timeout),
            Poller::Poll(p) => p.wait(out, timeout),
        }
    }
}

#[cfg(target_os = "linux")]
pub(crate) struct Epoll {
    epfd: RawFd,
    buf: Vec<sys::epoll::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            epfd: sys::epoll::create()?,
            buf: vec![sys::epoll::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(interest: u8) -> u32 {
        let mut events = 0;
        if interest & INTEREST_READ != 0 {
            events |= sys::epoll::EPOLLIN;
        }
        if interest & INTEREST_WRITE != 0 {
            events |= sys::epoll::EPOLLOUT;
        }
        events
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        sys::epoll::ctl(self.epfd, op, fd, Self::mask(interest), token)
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let n = sys::epoll::wait(self.epfd, &mut self.buf, sys::timeout_ms(timeout))?;
        for raw in &self.buf[..n] {
            let events = raw.events;
            let token = raw.data;
            out.push(Event {
                token,
                readable: events
                    & (sys::epoll::EPOLLIN | sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP)
                    != 0,
                writable: events
                    & (sys::epoll::EPOLLOUT | sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP)
                    != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        sys::epoll::close_fd(self.epfd);
    }
}

/// The `poll(2)` backend keeps an explicit registration table and
/// rebuilds the `pollfd` array per wait — O(n) per call, which is the
/// cost of portability; the epoll backend is the scaling path.
pub(crate) struct PollTable {
    regs: Vec<(RawFd, u64, u8)>,
    fds: Vec<sys::pollsys::PollFd>,
}

impl PollTable {
    fn new() -> PollTable {
        PollTable {
            regs: Vec::new(),
            fds: Vec::new(),
        }
    }

    fn add(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        if self.regs.iter().any(|(f, _, _)| *f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.regs.push((fd, token, interest));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, interest: u8) -> io::Result<()> {
        for reg in &mut self.regs {
            if reg.0 == fd {
                reg.2 = interest;
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.regs.len();
        self.regs.retain(|(f, _, _)| *f != fd);
        if self.regs.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        use sys::pollsys::{PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};
        self.fds.clear();
        for (fd, _, interest) in &self.regs {
            let mut events = 0;
            if interest & INTEREST_READ != 0 {
                events |= POLLIN;
            }
            if interest & INTEREST_WRITE != 0 {
                events |= POLLOUT;
            }
            // Zero-interest fds stay in the set: POLLERR/POLLHUP are
            // always reported, matching epoll's behaviour.
            self.fds.push(PollFd {
                fd: *fd,
                events,
                revents: 0,
            });
        }
        let n = sys::pollsys::poll_fds(&mut self.fds, sys::timeout_ms(timeout))?;
        if n == 0 {
            return Ok(());
        }
        for (slot, (_, token, _)) in self.fds.iter().zip(self.regs.iter()) {
            let revents = slot.revents;
            if revents == 0 {
                continue;
            }
            out.push(Event {
                token: *token,
                readable: revents & (POLLIN | POLLERR | POLLHUP) != 0,
                writable: revents & (POLLOUT | POLLERR | POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

//! `wp-reactor`: a std-only, zero-dependency nonblocking reactor that
//! multiplexes thousands of keep-alive HTTP/1.1 connections over a
//! small number of event-loop threads.
//!
//! Design:
//!
//! - **Readiness, not threads.** Each event-loop thread (a *shard*)
//!   owns an OS poller — `epoll(7)` on Linux through raw FFI syscall
//!   wrappers, portable `poll(2)` elsewhere (or when forced via
//!   `WP_REACTOR_POLLER=poll`) — and drives every connection it has
//!   accepted as a state machine: reading a request, running the
//!   handler, writing the response (possibly in fault-injected chunks
//!   or truncated), or sitting in idle keep-alive.
//! - **Shards own their connections.** The listener is registered with
//!   every shard; whichever shard's `accept` wins keeps the connection
//!   for its whole life, so per-shard application state needs no
//!   cross-shard locking on the hot path.
//! - **Timers are a deadline wheel.** Idle keep-alive deadlines,
//!   injected latency, and inter-chunk write pauses all live in a
//!   fixed-tick wheel ([`wheel`]), so a slow or silent client costs a
//!   timer entry instead of a blocked thread.
//! - **The application is a trait.** The reactor knows nothing about
//!   HTTP: an [`App`] supplies incremental parsing, request handling,
//!   and timeout responses, keyed by shard so state can be partitioned.
//!
//! The crate is Unix-only at runtime (epoll or poll); on other targets
//! it still compiles and [`Reactor::start`] reports an unsupported-
//! platform error so callers can fall back to a blocking backend.

use std::sync::Arc;
use std::time::Duration;

pub mod sys;

#[cfg(unix)]
mod engine;
#[cfg(unix)]
mod poller;
#[cfg(unix)]
mod slab;
#[cfg(unix)]
mod wheel;

pub use sys::raise_nofile_limit;
#[cfg(unix)]
pub use sys::wait_readable;

#[cfg(unix)]
pub use engine::ReactorHandle;

/// Outcome of asking the [`App`] to frame a request out of a
/// connection's read buffer.
#[derive(Debug)]
pub enum Parse<R> {
    /// No full request yet — keep the buffer and wait for more bytes.
    Incomplete,
    /// One request framed, consuming `consumed` buffer bytes (any
    /// remainder is the start of a pipelined successor).
    Complete { request: R, consumed: usize },
    /// Framing error: write `response` verbatim, then close.
    Reject { response: Vec<u8> },
    /// Clean end of stream — close without writing anything.
    Close,
}

/// How a response's bytes should leave the socket. `Chunked` and
/// `Truncate` exist for fault injection: the slow-write and truncated-
/// write faults become write-side state-machine transitions instead of
/// thread sleeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write everything as fast as the socket accepts it.
    Full,
    /// Write in `chunks` equal slices with `pause` between them.
    Chunked { chunks: u32, pause: Duration },
    /// Write only the first half of the bytes, then close.
    TruncateHalf,
}

/// A fully rendered response plus its delivery instructions.
#[derive(Debug)]
pub struct Response {
    /// The exact bytes to put on the wire (status line through body).
    pub bytes: Vec<u8>,
    /// Keep the connection open for another request afterwards.
    pub keep_alive: bool,
    /// Delay before the first byte is written (injected latency).
    pub delay: Duration,
    pub write: WriteMode,
}

impl Response {
    /// A plain full write with no delay.
    pub fn new(bytes: Vec<u8>, keep_alive: bool) -> Response {
        Response {
            bytes,
            keep_alive,
            delay: Duration::ZERO,
            write: WriteMode::Full,
        }
    }
}

/// The application driven by the reactor. All methods may be called
/// concurrently from different shard threads, but calls for one
/// connection always come from its single owning shard.
pub trait App: Send + Sync + 'static {
    type Request: Send;

    /// Called once per accepted connection before it is registered.
    /// Returning `false` drops the socket immediately (the accept-reset
    /// fault site).
    fn on_accept(&self) -> bool {
        true
    }

    /// Tries to frame one request from the buffered bytes. `eof` is
    /// true once the peer has shut down its write side; the app must
    /// then resolve to something other than [`Parse::Incomplete`].
    fn parse(&self, shard: usize, buf: &[u8], eof: bool) -> Parse<Self::Request>;

    /// Handles one framed request. `force_close` is set while the
    /// reactor drains for shutdown, so the response should announce
    /// `Connection: close`.
    fn respond(&self, shard: usize, request: Self::Request, force_close: bool) -> Response;

    /// A connection sat past the idle deadline. `partial` is true when
    /// it stalled mid-request (bytes are buffered but unframed); the
    /// returned bytes are written before closing, `None` closes
    /// silently.
    fn on_idle_timeout(&self, shard: usize, partial: bool) -> Option<Vec<u8>>;
}

/// Tuning for [`Reactor::start`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop shard count.
    pub threads: usize,
    /// Close keep-alive connections idle longer than this.
    pub idle_timeout: Duration,
    /// How long shutdown waits for in-flight connections to finish
    /// before force-closing them.
    pub drain_timeout: Duration,
    /// Use the portable `poll(2)` backend even where epoll exists
    /// (testing aid; `WP_REACTOR_POLLER=poll` does the same).
    pub force_poll: bool,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            threads: 4,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            force_poll: false,
        }
    }
}

/// Entry point: spawn the event-loop shards over a bound listener.
pub struct Reactor;

impl Reactor {
    #[cfg(unix)]
    pub fn start<A: App>(
        listener: std::net::TcpListener,
        app: Arc<A>,
        config: ReactorConfig,
    ) -> std::io::Result<ReactorHandle> {
        // A multiplexing tier exists to hold thousands of sockets; the
        // default 1024 soft NOFILE limit would cap it at a few hundred.
        // Only the soft limit moves, and never past the hard limit.
        sys::raise_nofile_limit(8192);
        engine::start(listener, app, config)
    }

    #[cfg(not(unix))]
    pub fn start<A: App>(
        _listener: std::net::TcpListener,
        _app: Arc<A>,
        _config: ReactorConfig,
    ) -> std::io::Result<ReactorHandle> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "wp-reactor needs a Unix readiness poller; use the blocking workers backend",
        ))
    }
}

/// Non-Unix placeholder so downstream signatures stay uniform; never
/// constructed because `Reactor::start` fails first.
#[cfg(not(unix))]
pub struct ReactorHandle;

#[cfg(not(unix))]
impl ReactorHandle {
    pub fn backend(&self) -> &'static str {
        "unsupported"
    }
    pub fn shutdown(self) {}
    pub fn wait(self) {}
}

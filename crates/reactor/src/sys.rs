//! Raw syscall wrappers for the reactor: `epoll(7)` on Linux, the
//! portable `poll(2)` everywhere else on Unix, and `RLIMIT_NOFILE`
//! manipulation so a process can actually hold thousands of sockets.
//!
//! std already links the platform C library, so plain `extern "C"`
//! declarations are enough — no external crate is pulled in.

#[cfg(unix)]
use std::io;
#[cfg(unix)]
use std::time::Duration;

/// Converts a wait budget to the millisecond argument `epoll_wait` and
/// `poll` take: `None` blocks forever, sub-millisecond budgets round up
/// so a pending deadline never turns into a busy spin.
#[cfg(unix)]
pub(crate) fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) if t.is_zero() => 0,
        Some(t) => t.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
pub(crate) mod epoll {
    use std::io;
    use std::os::raw::c_int;

    pub(crate) const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub(crate) const EPOLL_CTL_ADD: c_int = 1;
    pub(crate) const EPOLL_CTL_DEL: c_int = 2;
    pub(crate) const EPOLL_CTL_MOD: c_int = 3;
    pub(crate) const EPOLLIN: u32 = 0x1;
    pub(crate) const EPOLLOUT: u32 = 0x4;
    pub(crate) const EPOLLERR: u32 = 0x8;
    pub(crate) const EPOLLHUP: u32 = 0x10;

    /// Mirrors the kernel's `struct epoll_event`. On x86-64 the ABI
    /// packs `data` directly after `events`; other architectures use
    /// natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub(crate) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub(crate) fn create() -> io::Result<c_int> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub(crate) fn ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, data };
        let event_ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event as *mut EpollEvent
        };
        if unsafe { epoll_ctl(epfd, op, fd, event_ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn wait(
        epfd: c_int,
        buf: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        loop {
            let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub(crate) fn close_fd(fd: c_int) {
        unsafe {
            close(fd);
        }
    }
}

#[cfg(unix)]
pub(crate) mod pollsys {
    use std::io;
    use std::os::raw::{c_int, c_short};

    pub(crate) const POLLIN: c_short = 0x1;
    pub(crate) const POLLOUT: c_short = 0x4;
    pub(crate) const POLLERR: c_short = 0x8;
    pub(crate) const POLLHUP: c_short = 0x10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(crate) struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        loop {
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(unix)]
mod rlimit {
    use std::os::raw::c_int;

    #[repr(C)]
    pub(super) struct RLimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    #[cfg(target_os = "linux")]
    pub(super) const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    pub(super) const RLIMIT_NOFILE: c_int = 8;

    extern "C" {
        pub(super) fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub(super) fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

/// Raises the soft `RLIMIT_NOFILE` toward `target` (capped at the hard
/// limit) and returns the resulting soft limit. Never lowers it and
/// never fails: on any syscall error the current (or requested) value
/// is reported and the caller proceeds — running out of descriptors
/// later produces an ordinary `accept`/`connect` error.
#[cfg(unix)]
pub fn raise_nofile_limit(target: u64) -> u64 {
    let mut lim = rlimit::RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { rlimit::getrlimit(rlimit::RLIMIT_NOFILE, &mut lim) } != 0 {
        return target;
    }
    if lim.rlim_cur >= target {
        return lim.rlim_cur;
    }
    let wanted = target.min(lim.rlim_max);
    let new = rlimit::RLimit {
        rlim_cur: wanted,
        rlim_max: lim.rlim_max,
    };
    if unsafe { rlimit::setrlimit(rlimit::RLIMIT_NOFILE, &new) } == 0 {
        wanted
    } else {
        lim.rlim_cur
    }
}

/// No-op off Unix: the blocking fallback server does not hold enough
/// descriptors to need it.
#[cfg(not(unix))]
pub fn raise_nofile_limit(target: u64) -> u64 {
    target
}

/// Blocks until `fd` is readable or `timeout` elapses; returns whether
/// it became readable. Lets a blocking accept loop wait on the listener
/// *and* still observe a shutdown flag on a bounded cadence.
#[cfg(unix)]
pub fn wait_readable<T: std::os::unix::io::AsRawFd>(fd: &T, timeout: Duration) -> io::Result<bool> {
    let mut fds = [pollsys::PollFd {
        fd: fd.as_raw_fd(),
        events: pollsys::POLLIN,
        revents: 0,
    }];
    let n = pollsys::poll_fds(&mut fds, timeout_ms(Some(timeout)))?;
    Ok(n > 0)
}

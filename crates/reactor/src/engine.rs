//! The event-loop shards: accept, per-connection state machines,
//! deadline wheel, and drain-on-shutdown.
//!
//! Connection lifecycle (half-duplex — a pipelined successor request
//! is parsed only after the current response is fully written):
//!
//! ```text
//!           accept
//!             │
//!             ▼          bytes          framed           delay=0
//!     ┌─► Idle/Reading ───────► parse ────────► respond ────────┐
//!     │        │                  │                │delay>0     │
//!     │        │idle deadline     │Reject          ▼            ▼
//!     │        ▼                  │              Delay ────► Writing ◄─┐
//!     │   timeout response        └──────────────────────────►  │      │pause
//!     │   (or silent close)                                     │      │
//!     │                                           keep-alive    │  WritePause
//!     └─────────────────────────────────────────────────────────┤
//!                                                               │close/truncate
//!                                                               ▼
//!                                                             closed
//! ```

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::poller::{Event, Poller, INTEREST_NONE, INTEREST_READ, INTEREST_WRITE};
use crate::slab::Slab;
use crate::wheel::DeadlineWheel;
use crate::{App, Parse, ReactorConfig, Response, WriteMode};

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Wheel resolution: 5ms ticks over 2048 slots gives a ~10s horizon;
/// longer deadlines (the 30s idle default) ride the lazy re-insert.
const WHEEL_TICK: Duration = Duration::from_millis(5);
const WHEEL_SLOTS: usize = 2048;

/// Upper bound on one poll sleep, so the shutdown flag is observed on
/// a bounded cadence even if a wake byte is lost.
const MAX_WAIT: Duration = Duration::from_millis(500);

/// Per-readiness-event read budget: keeps one firehose connection from
/// starving the rest of the shard (level-triggered polling re-reports
/// the remainder).
const READ_BUDGET: usize = 256 * 1024;

pub(crate) fn start<A: App>(
    listener: TcpListener,
    app: Arc<A>,
    config: ReactorConfig,
) -> std::io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let threads = config.threads.max(1);
    let mut wakers = Vec::with_capacity(threads);
    let mut joins = Vec::with_capacity(threads);
    let mut backend = "poll";
    for id in 0..threads {
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        let shard_listener = listener.try_clone()?;
        let mut poller = Poller::new(config.force_poll)?;
        backend = poller.backend_name();
        poller.add(shard_listener.as_raw_fd(), TOKEN_LISTENER, INTEREST_READ)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, INTEREST_READ)?;
        let shard = Shard {
            id,
            app: Arc::clone(&app),
            listener: shard_listener,
            wake: wake_rx,
            poller,
            conns: Slab::new(),
            wheel: DeadlineWheel::new(WHEEL_TICK, WHEEL_SLOTS, Instant::now()),
            idle_timeout: config.idle_timeout,
            drain_timeout: config.drain_timeout,
            draining: false,
            drain_deadline: None,
            shutdown: Arc::clone(&shutdown),
        };
        joins.push(
            std::thread::Builder::new()
                .name(format!("wp-reactor-{id}"))
                .spawn(move || shard.run())?,
        );
        wakers.push(wake_tx);
    }
    Ok(ReactorHandle {
        shutdown,
        wakers,
        joins,
        backend,
    })
}

/// Owns the shard threads. `shutdown` drains gracefully; `wait` parks
/// until the reactor exits on its own (it never does unless shut down
/// from elsewhere or every shard dies).
pub struct ReactorHandle {
    shutdown: Arc<AtomicBool>,
    wakers: Vec<UnixStream>,
    joins: Vec<std::thread::JoinHandle<()>>,
    backend: &'static str,
}

impl ReactorHandle {
    /// Which readiness backend the shards run on ("epoll" or "poll").
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Signals every shard, then joins them. Idle connections close
    /// immediately; in-flight ones get the drain window to finish.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            let _ = (&*waker).write(&[1]);
        }
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }

    pub fn wait(mut self) {
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Keep-alive, no buffered request bytes.
    Idle,
    /// Partial request bytes buffered.
    Reading,
    /// Response rendered, injected latency pending.
    Delay,
    /// Response bytes draining to the socket.
    Writing,
    /// Between fault-injected write chunks.
    WritePause,
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    eof: bool,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// End of the current write segment (chunked writes advance it).
    segment_end: usize,
    /// Total bytes that will ever be written (truncation stops short).
    write_end: usize,
    /// Chunk length for paced writes; 0 means a single segment.
    chunk: usize,
    pause: Duration,
    keep_alive: bool,
    phase: Phase,
    interest: u8,
    deadline: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, deadline: Instant) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            eof: false,
            write_buf: Vec::new(),
            write_pos: 0,
            segment_end: 0,
            write_end: 0,
            chunk: 0,
            pause: Duration::ZERO,
            keep_alive: false,
            phase: Phase::Idle,
            interest: INTEREST_READ,
            deadline: Some(deadline),
        }
    }

    /// Loads a response and its delivery plan; the caller sets the
    /// phase (Delay or Writing).
    fn load_response(&mut self, response: Response) {
        let len = response.bytes.len();
        self.write_buf = response.bytes;
        self.write_pos = 0;
        self.keep_alive = response.keep_alive;
        self.pause = Duration::ZERO;
        self.chunk = 0;
        self.write_end = len;
        self.segment_end = len;
        match response.write {
            WriteMode::Full => {}
            WriteMode::Chunked { chunks, pause } => {
                self.chunk = len.div_ceil(chunks.max(1) as usize).max(1);
                self.segment_end = self.chunk.min(len);
                self.pause = pause;
            }
            WriteMode::TruncateHalf => {
                self.write_end = len / 2;
                self.segment_end = self.write_end;
                self.keep_alive = false;
            }
        }
    }

    /// Loads raw bytes (reject/timeout responses) that always close.
    fn load_final_bytes(&mut self, bytes: Vec<u8>) {
        self.load_response(Response::new(bytes, false));
    }
}

enum WriteStep {
    Blocked,
    Finished,
    Pause,
    Closed,
}

struct Shard<A: App> {
    id: usize,
    app: Arc<A>,
    listener: TcpListener,
    wake: UnixStream,
    poller: Poller,
    conns: Slab<Conn>,
    wheel: DeadlineWheel,
    idle_timeout: Duration,
    drain_timeout: Duration,
    draining: bool,
    drain_deadline: Option<Instant>,
    shutdown: Arc<AtomicBool>,
}

impl<A: App> Shard<A> {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(1024);
        loop {
            let now = Instant::now();
            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain(now);
            }
            if self.draining {
                let expired = self.drain_deadline.is_some_and(|d| now >= d);
                if self.conns.is_empty() || expired {
                    for token in self.conns.keys() {
                        self.close(token);
                    }
                    return;
                }
            }
            let timeout = self.wait_budget(now);
            events.clear();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A transient poller failure must not spin the loop.
                std::thread::sleep(Duration::from_millis(1));
            }
            let now = Instant::now();
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(now),
                    TOKEN_WAKE => self.drain_wake(),
                    token => self.on_event(token as usize, *ev, now),
                }
            }
            events = batch;
            self.fire_timers(Instant::now());
        }
    }

    fn wait_budget(&self, now: Instant) -> Duration {
        let mut budget = MAX_WAIT;
        if let Some(next) = self.wheel.next_deadline() {
            budget = budget.min(next.saturating_duration_since(now));
        }
        if let Some(drain) = self.drain_deadline {
            budget = budget.min(drain.saturating_duration_since(now));
        }
        budget
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match self.wake.read(&mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        if self.draining {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if !self.app.on_accept() {
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let deadline = now + self.idle_timeout;
                    let fd = stream.as_raw_fd();
                    let token = self.conns.insert(Conn::new(stream, deadline));
                    if self.poller.add(fd, token as u64, INTEREST_READ).is_err() {
                        self.conns.remove(token);
                        continue;
                    }
                    self.wheel.insert(token, deadline);
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // EMFILE and friends: back off, level-triggered polling
                // re-reports the pending accept next iteration.
                Err(_) => return,
            }
        }
    }

    fn on_event(&mut self, token: usize, ev: Event, now: Instant) {
        let Some(phase) = self.conns.get(token).map(|c| c.phase) else {
            return; // closed earlier in this batch
        };
        match phase {
            Phase::Idle | Phase::Reading => {
                if ev.readable && self.read_some(token, now) {
                    self.drive(token, now);
                }
            }
            Phase::Writing => {
                if ev.writable {
                    self.drive(token, now);
                }
            }
            // Timer-driven phases: a hangup here surfaces when the
            // write resumes and fails.
            Phase::Delay | Phase::WritePause => {}
        }
    }

    /// Appends available bytes to the read buffer. Returns false when
    /// the connection was closed on a read error.
    fn read_some(&mut self, token: usize, now: Instant) -> bool {
        let mut scratch = [0u8; 16 * 1024];
        let mut failed = false;
        let mut progressed = false;
        {
            let Some(conn) = self.conns.get_mut(token) else {
                return false;
            };
            let mut budget = READ_BUDGET;
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&scratch[..n]);
                        progressed = true;
                        budget = budget.saturating_sub(n);
                        if budget == 0 {
                            break;
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if progressed && !failed {
                // Activity refreshes the idle deadline; the stale wheel
                // entry re-inserts itself when it fires early.
                conn.deadline = Some(now + self.idle_timeout);
            }
        }
        if failed {
            self.close(token);
            return false;
        }
        true
    }

    /// The state pump: parse → respond → write, looping across
    /// keep-alive boundaries until the connection blocks, waits on a
    /// timer, or closes.
    fn drive(&mut self, token: usize, now: Instant) {
        loop {
            let Some(phase) = self.conns.get(token).map(|c| c.phase) else {
                return;
            };
            match phase {
                Phase::Idle | Phase::Reading => {
                    if !self.parse_step(token, now) {
                        return;
                    }
                }
                Phase::Writing => match self.pump_write(token) {
                    WriteStep::Finished => {
                        let keep = self.conns.get(token).map(|c| c.keep_alive).unwrap_or(false);
                        if !keep || self.draining {
                            self.close(token);
                            return;
                        }
                        let deadline = now + self.idle_timeout;
                        if let Some(conn) = self.conns.get_mut(token) {
                            conn.phase = Phase::Idle;
                            conn.deadline = Some(deadline);
                            conn.write_buf = Vec::new();
                            conn.write_pos = 0;
                        }
                        self.wheel.insert(token, deadline);
                        self.set_interest(token, INTEREST_READ);
                        // Loop: a pipelined request may already be
                        // buffered.
                    }
                    WriteStep::Blocked => {
                        // Cap how long an unread response may pin the
                        // connection (a never-reading client).
                        let deadline = now + self.idle_timeout;
                        if let Some(conn) = self.conns.get_mut(token) {
                            if conn.deadline.is_none() {
                                conn.deadline = Some(deadline);
                            }
                        }
                        self.wheel.insert(token, deadline);
                        self.set_interest(token, INTEREST_WRITE);
                        return;
                    }
                    WriteStep::Pause => {
                        let deadline =
                            now + self.conns.get(token).map(|c| c.pause).unwrap_or_default();
                        if let Some(conn) = self.conns.get_mut(token) {
                            conn.phase = Phase::WritePause;
                            conn.deadline = Some(deadline);
                        }
                        self.wheel.insert(token, deadline);
                        self.set_interest(token, INTEREST_NONE);
                        return;
                    }
                    WriteStep::Closed => {
                        self.close(token);
                        return;
                    }
                },
                Phase::Delay | Phase::WritePause => return,
            }
        }
    }

    /// Parses at most one request and stages its response. Returns
    /// true when `drive` should keep pumping (a response is staged or
    /// the connection advanced), false when it should yield.
    fn parse_step(&mut self, token: usize, now: Instant) -> bool {
        let app = Arc::clone(&self.app);
        let outcome = {
            let Some(conn) = self.conns.get_mut(token) else {
                return false;
            };
            if conn.read_buf.is_empty() && !conn.eof {
                conn.phase = Phase::Idle;
                None
            } else {
                let eof = conn.eof;
                Some(app.parse(self.id, &conn.read_buf, eof))
            }
        };
        let Some(outcome) = outcome else {
            self.set_interest(token, INTEREST_READ);
            return false;
        };
        match outcome {
            Parse::Incomplete => {
                let eof = self.conns.get(token).map(|c| c.eof).unwrap_or(true);
                if eof {
                    // Contract violation fallback: nothing more will
                    // arrive, so an incomplete frame can only close.
                    self.close(token);
                    return false;
                }
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.phase = Phase::Reading;
                }
                self.set_interest(token, INTEREST_READ);
                false
            }
            Parse::Close => {
                self.close(token);
                false
            }
            Parse::Reject { response } => {
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.read_buf.clear();
                    conn.load_final_bytes(response);
                    conn.phase = Phase::Writing;
                    conn.deadline = None;
                }
                true
            }
            Parse::Complete { request, consumed } => {
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.read_buf.drain(..consumed.min(conn.read_buf.len()));
                }
                let force_close = self.draining;
                let shard = self.id;
                let response = match catch_unwind(AssertUnwindSafe(|| {
                    app.respond(shard, request, force_close)
                })) {
                    Ok(response) => response,
                    Err(_) => {
                        // A panicking handler forfeits the
                        // connection, like a panicking worker
                        // thread in the blocking pool.
                        self.close(token);
                        return false;
                    }
                };
                let delay = response.delay;
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.load_response(response);
                    if delay.is_zero() {
                        conn.phase = Phase::Writing;
                        conn.deadline = None;
                    } else {
                        conn.phase = Phase::Delay;
                        conn.deadline = Some(now + delay);
                    }
                }
                if !delay.is_zero() {
                    self.wheel.insert(token, now + delay);
                    self.set_interest(token, INTEREST_NONE);
                    return false;
                }
                true
            }
        }
    }

    fn pump_write(&mut self, token: usize) -> WriteStep {
        let Some(conn) = self.conns.get_mut(token) else {
            return WriteStep::Closed;
        };
        loop {
            if conn.write_pos >= conn.segment_end {
                if conn.write_pos >= conn.write_end {
                    return WriteStep::Finished;
                }
                conn.segment_end = (conn.segment_end + conn.chunk.max(1)).min(conn.write_end);
                if !conn.pause.is_zero() {
                    return WriteStep::Pause;
                }
                continue;
            }
            match conn
                .stream
                .write(&conn.write_buf[conn.write_pos..conn.segment_end])
            {
                Ok(0) => return WriteStep::Closed,
                Ok(n) => conn.write_pos += n,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return WriteStep::Blocked
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return WriteStep::Closed,
            }
        }
    }

    fn fire_timers(&mut self, now: Instant) {
        let mut expired = Vec::new();
        self.wheel.expired(now, &mut expired);
        for token in expired {
            let Some((deadline, phase)) = self.conns.get(token).map(|c| (c.deadline, c.phase))
            else {
                continue;
            };
            let Some(deadline) = deadline else { continue };
            if deadline > now {
                // Re-armed or clamped-to-horizon entry: push it back
                // out to its real deadline.
                self.wheel.insert(token, deadline);
                continue;
            }
            match phase {
                Phase::Delay | Phase::WritePause => {
                    if let Some(conn) = self.conns.get_mut(token) {
                        conn.phase = Phase::Writing;
                        conn.deadline = None;
                    }
                    self.drive(token, now);
                }
                Phase::Idle | Phase::Reading => {
                    let partial = self
                        .conns
                        .get(token)
                        .map(|c| !c.read_buf.is_empty())
                        .unwrap_or(false);
                    match self.app.on_idle_timeout(self.id, partial) {
                        None => self.close(token),
                        Some(bytes) => {
                            if let Some(conn) = self.conns.get_mut(token) {
                                conn.read_buf.clear();
                                conn.load_final_bytes(bytes);
                                conn.phase = Phase::Writing;
                                conn.deadline = None;
                            }
                            self.drive(token, now);
                        }
                    }
                }
                // A write that blocked past the idle budget: the
                // client is not reading — give up on it.
                Phase::Writing => self.close(token),
            }
        }
    }

    fn set_interest(&mut self, token: usize, want: u8) {
        let Some((fd, current)) = self
            .conns
            .get(token)
            .map(|c| (c.stream.as_raw_fd(), c.interest))
        else {
            return;
        };
        if current == want {
            return;
        }
        if self.poller.modify(fd, token as u64, want).is_err() {
            self.close(token);
            return;
        }
        if let Some(conn) = self.conns.get_mut(token) {
            conn.interest = want;
        }
    }

    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(token) {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
        }
    }

    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = Some(now + self.drain_timeout);
        let _ = self.poller.remove(self.listener.as_raw_fd());
        for token in self.conns.keys() {
            let idle = self
                .conns
                .get(token)
                .map(|c| c.phase == Phase::Idle && c.read_buf.is_empty())
                .unwrap_or(false);
            if idle {
                self.close(token);
            }
        }
    }
}

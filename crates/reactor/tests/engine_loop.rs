//! Engine-level tests over a minimal line-based protocol app: one
//! request is one `\n`-terminated line, the response echoes it back
//! uppercased. Exercises keep-alive cycling, pipelining, fault write
//! modes, idle timeouts, and graceful drain on both poller backends.
#![cfg(unix)]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wp_reactor::{App, Parse, Reactor, ReactorConfig, Response, WriteMode};

/// `quit\n` closes after responding; `slow\n` answers in paced chunks;
/// `half\n` truncates mid-response; `bad!` anywhere in a line rejects.
struct EchoApp {
    accepted: AtomicUsize,
    timeouts: AtomicUsize,
}

impl App for EchoApp {
    type Request = String;

    fn on_accept(&self) -> bool {
        self.accepted.fetch_add(1, Ordering::SeqCst);
        true
    }

    fn parse(&self, _shard: usize, buf: &[u8], eof: bool) -> Parse<String> {
        match buf.iter().position(|b| *b == b'\n') {
            Some(pos) => {
                let line = String::from_utf8_lossy(&buf[..pos]).into_owned();
                if line.contains("bad!") {
                    Parse::Reject {
                        response: b"REJECT\n".to_vec(),
                    }
                } else {
                    Parse::Complete {
                        request: line,
                        consumed: pos + 1,
                    }
                }
            }
            None if eof => {
                if buf.is_empty() {
                    Parse::Close
                } else {
                    Parse::Reject {
                        response: b"PARTIAL\n".to_vec(),
                    }
                }
            }
            None => Parse::Incomplete,
        }
    }

    fn respond(&self, shard: usize, request: String, force_close: bool) -> Response {
        let keep_alive = request != "quit" && !force_close;
        let mut response = Response::new(
            format!("{}#{shard}\n", request.to_uppercase()).into_bytes(),
            keep_alive,
        );
        if request == "slow" {
            response.write = WriteMode::Chunked {
                chunks: 3,
                pause: Duration::from_millis(10),
            };
        }
        if request == "half" {
            response.write = WriteMode::TruncateHalf;
        }
        response
    }

    fn on_idle_timeout(&self, _shard: usize, partial: bool) -> Option<Vec<u8>> {
        self.timeouts.fetch_add(1, Ordering::SeqCst);
        partial.then(|| b"TIMEOUT\n".to_vec())
    }
}

struct Rig {
    addr: std::net::SocketAddr,
    app: Arc<EchoApp>,
    handle: wp_reactor::ReactorHandle,
}

fn start(threads: usize, idle: Duration, force_poll: bool) -> Rig {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let app = Arc::new(EchoApp {
        accepted: AtomicUsize::new(0),
        timeouts: AtomicUsize::new(0),
    });
    let handle = Reactor::start(
        listener,
        Arc::clone(&app),
        ReactorConfig {
            threads,
            idle_timeout: idle,
            drain_timeout: Duration::from_secs(2),
            force_poll,
        },
    )
    .expect("reactor starts");
    Rig { addr, app, handle }
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => line.push(byte[0]),
            Err(e) => panic!("read_line: {e}"),
        }
    }
    String::from_utf8(line).expect("utf-8 line")
}

/// Reads until EOF, returning everything seen.
fn read_to_end(stream: &mut TcpStream) -> Vec<u8> {
    let mut all = Vec::new();
    stream.read_to_end(&mut all).expect("read_to_end");
    all
}

fn keep_alive_roundtrips(force_poll: bool) {
    let rig = start(2, Duration::from_secs(30), force_poll);
    let mut stream = connect(rig.addr);
    for i in 0..50 {
        let msg = format!("hello-{i}\n");
        stream.write_all(msg.as_bytes()).expect("write");
        let line = read_line(&mut stream);
        assert!(
            line.starts_with(&format!("HELLO-{i}#")),
            "request {i} echoed: {line:?}"
        );
    }
    // All 50 requests rode one connection.
    assert_eq!(rig.app.accepted.load(Ordering::SeqCst), 1);
    rig.handle.shutdown();
}

#[test]
fn keep_alive_roundtrips_epoll() {
    keep_alive_roundtrips(false);
}

#[test]
fn keep_alive_roundtrips_poll_backend() {
    keep_alive_roundtrips(true);
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let rig = start(1, Duration::from_secs(30), false);
    let mut stream = connect(rig.addr);
    stream.write_all(b"a\nb\nc\nquit\n").expect("write");
    let body = read_to_end(&mut stream);
    let text = String::from_utf8(body).expect("utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "four responses: {text:?}");
    assert!(lines[0].starts_with("A#"));
    assert!(lines[1].starts_with("B#"));
    assert!(lines[2].starts_with("C#"));
    assert!(lines[3].starts_with("QUIT#"));
    rig.handle.shutdown();
}

#[test]
fn chunked_and_truncated_write_modes() {
    let rig = start(1, Duration::from_secs(30), false);

    let mut stream = connect(rig.addr);
    stream.write_all(b"slow\n").expect("write");
    let started = Instant::now();
    let line = read_line(&mut stream);
    assert!(line.starts_with("SLOW#"), "paced response intact: {line:?}");
    assert!(
        started.elapsed() >= Duration::from_millis(15),
        "two inter-chunk pauses of 10ms each"
    );

    let mut stream = connect(rig.addr);
    stream.write_all(b"half\n").expect("write");
    let body = read_to_end(&mut stream);
    let expected = b"HALF#0\n";
    assert_eq!(body, expected[..expected.len() / 2].to_vec());
    rig.handle.shutdown();
}

#[test]
fn reject_writes_response_then_closes() {
    let rig = start(1, Duration::from_secs(30), false);
    let mut stream = connect(rig.addr);
    stream.write_all(b"this is bad!\n").expect("write");
    assert_eq!(read_to_end(&mut stream), b"REJECT\n".to_vec());
    rig.handle.shutdown();
}

#[test]
fn idle_connection_is_closed_silently_and_partial_gets_a_response() {
    let rig = start(1, Duration::from_millis(150), false);

    // Fully idle: closed with no bytes.
    let mut idle = connect(rig.addr);
    assert_eq!(read_to_end(&mut idle), Vec::<u8>::new());

    // Stalled mid-request: the timeout response is written first.
    let mut partial = connect(rig.addr);
    partial.write_all(b"no newline yet").expect("write");
    assert_eq!(read_to_end(&mut partial), b"TIMEOUT\n".to_vec());

    assert!(rig.app.timeouts.load(Ordering::SeqCst) >= 2);
    rig.handle.shutdown();
}

#[test]
fn shutdown_drains_idle_keepalive_connections_promptly() {
    let rig = start(2, Duration::from_secs(30), false);
    // Park several idle keep-alive connections (each has served one
    // request, so they are genuinely in the Idle phase).
    let mut parked = Vec::new();
    for _ in 0..4 {
        let mut stream = connect(rig.addr);
        stream.write_all(b"ping\n").expect("write");
        assert!(read_line(&mut stream).starts_with("PING#"));
        parked.push(stream);
    }
    let started = Instant::now();
    rig.handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown with idle keep-alive connections must not hang"
    );
    // The parked sockets were all closed by the drain.
    for stream in &mut parked {
        assert_eq!(read_to_end(stream), Vec::<u8>::new());
    }
}

#[test]
fn many_concurrent_keepalive_connections_on_two_shards() {
    wp_reactor::raise_nofile_limit(4096);
    let rig = start(2, Duration::from_secs(30), false);
    let count = 256;
    let mut streams: Vec<TcpStream> = Vec::with_capacity(count);
    for _ in 0..count {
        streams.push(connect(rig.addr));
    }
    // Two full rounds over every connection proves they all stay open
    // concurrently and keep-alive works on each.
    for round in 0..2 {
        for (i, stream) in streams.iter_mut().enumerate() {
            let msg = format!("r{round}-c{i}\n");
            stream.write_all(msg.as_bytes()).expect("write");
        }
        for (i, stream) in streams.iter_mut().enumerate() {
            let line = read_line(stream);
            assert!(
                line.starts_with(&format!("R{round}-C{i}#")),
                "round {round} conn {i}: {line:?}"
            );
        }
    }
    assert_eq!(rig.app.accepted.load(Ordering::SeqCst), count);
    rig.handle.shutdown();
}

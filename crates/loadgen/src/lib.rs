//! `wp-loadgen` — a wrkr-style closed-loop load generator for
//! `wp-server`.
//!
//! Closed loop means each connection keeps exactly one request in
//! flight: send, wait for the full response, record the latency, send
//! the next. `connections` threads each own one keep-alive connection
//! and draw their request mix from a seeded [`Rng64`] stream, so the
//! request *sequence* per connection is deterministic even though
//! wall-clock timing is not.
//!
//! A run has two phases, following the standard load-testing
//! methodology: a warmup phase whose latencies are discarded (caches
//! fill, branch predictors settle), then a measurement phase that feeds
//! the report. The report — throughput plus nearest-rank p50/p95/p99/max
//! latency — is written to `BENCH_server.json` in the same flat-object
//! shape as `BENCH_runtime.json`.

#![warn(missing_docs)]

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use wp_json::{obj, Json};
use wp_linalg::Rng64;
use wp_telemetry::io::run_to_json;
use wp_workloads::engine::Simulator;
use wp_workloads::{benchmarks, Sku};

/// One weighted request template in the generated mix.
#[derive(Debug, Clone)]
pub struct MixEntry {
    /// HTTP method (`GET` or `POST`).
    pub method: &'static str,
    /// Request path, e.g. `/similar`.
    pub path: &'static str,
    /// Request body (empty for `GET`).
    pub body: String,
    /// Relative draw weight (integer lottery tickets).
    pub weight: u32,
}

/// How a load run connects, paces, and seeds itself.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Concurrent closed-loop connections (threads).
    pub connections: usize,
    /// Warmup phase; latencies are discarded.
    pub warmup: Duration,
    /// Measurement phase; latencies feed the report.
    pub measure: Duration,
    /// Seed for the per-connection request-mix streams.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            connections: 4,
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(2),
            seed: 42,
        }
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Connections the run used.
    pub connections: usize,
    /// Configured warmup length in seconds.
    pub warmup_s: f64,
    /// Configured measurement length in seconds.
    pub measure_s: f64,
    /// Requests completed during the measurement phase.
    pub requests: u64,
    /// Requests that failed (I/O error or non-2xx status), both phases.
    pub errors: u64,
    /// Measured requests divided by the measurement wall time.
    pub throughput_rps: f64,
    /// Median latency, milliseconds (nearest rank).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds (nearest rank).
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds (nearest rank).
    pub p99_ms: f64,
    /// Worst measured latency, milliseconds.
    pub max_ms: f64,
}

impl Report {
    /// Renders the report in the `BENCH_runtime.json` flat-object shape.
    pub fn to_json(&self) -> String {
        obj! {
            "experiment" => "server_loadgen",
            "connections" => self.connections as f64,
            "warmup_s" => self.warmup_s,
            "measure_s" => self.measure_s,
            "requests" => self.requests as f64,
            "errors" => self.errors as f64,
            "throughput_rps" => self.throughput_rps,
            "p50_ms" => self.p50_ms,
            "p95_ms" => self.p95_ms,
            "p99_ms" => self.p99_ms,
            "max_ms" => self.max_ms,
        }
        .pretty()
    }
}

/// The default request mix: every endpoint of the service, weighted
/// towards the compute-bearing `POST`s. Bodies carry `samples`-long
/// simulated YCSB target runs (two per body) drawn from `seed`, in the
/// `wp_telemetry::io` interchange schema.
pub fn default_mix(seed: u64, samples: usize) -> Vec<MixEntry> {
    let mut sim = Simulator::new(seed);
    sim.config.samples = samples;
    let spec = benchmarks::ycsb();
    let sku = Sku::new("cpu2", 2, 64.0);
    let runs: Vec<Json> = (0..2)
        .map(|r| run_to_json(&sim.simulate(&spec, &sku, 8, r, r % 3)))
        .collect();
    let runs_body = obj! { "runs" => runs.clone() }.compact();
    let predict_body = obj! {
        "runs" => runs,
        "from_cpus" => 2.0,
        "to_cpus" => 8.0,
    }
    .compact();
    vec![
        MixEntry {
            method: "GET",
            path: "/healthz",
            body: String::new(),
            weight: 1,
        },
        MixEntry {
            method: "GET",
            path: "/corpus",
            body: String::new(),
            weight: 1,
        },
        MixEntry {
            method: "GET",
            path: "/stats",
            body: String::new(),
            weight: 1,
        },
        MixEntry {
            method: "POST",
            path: "/fingerprint",
            body: runs_body.clone(),
            weight: 3,
        },
        MixEntry {
            method: "POST",
            path: "/similar",
            body: runs_body,
            weight: 3,
        },
        MixEntry {
            method: "POST",
            path: "/predict",
            body: predict_body,
            weight: 3,
        },
    ]
}

/// Runs the closed loop against `config.addr` and aggregates a
/// [`Report`]. Fails only on setup errors (no connection can be
/// established, empty mix); per-request failures are counted in
/// `Report::errors`.
pub fn run_load(config: &LoadConfig, mix: &[MixEntry]) -> Result<Report, String> {
    if mix.is_empty() {
        return Err("request mix is empty".to_string());
    }
    let total_weight: u32 = mix.iter().map(|e| e.weight).sum();
    if total_weight == 0 {
        return Err("request mix has zero total weight".to_string());
    }
    let connections = config.connections.max(1);
    // Fail fast before spawning if the server is not there at all.
    TcpStream::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;

    let start = Instant::now();
    let warmup_end = start + config.warmup;
    let measure_end = warmup_end + config.measure;

    let results: Vec<(Vec<u64>, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let addr = config.addr.clone();
                let seed = config.seed.wrapping_add(c as u64);
                s.spawn(move || {
                    connection_loop(&addr, mix, total_weight, seed, warmup_end, measure_end)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or((Vec::new(), 1)))
            .collect()
    });

    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for (lat, err) in results {
        latencies_ns.extend(lat);
        errors += err;
    }
    latencies_ns.sort_unstable();
    let measure_s = config.measure.as_secs_f64();
    let to_ms = |ns: u64| ns as f64 / 1e6;
    Ok(Report {
        connections,
        warmup_s: config.warmup.as_secs_f64(),
        measure_s,
        requests: latencies_ns.len() as u64,
        errors,
        throughput_rps: if measure_s > 0.0 {
            latencies_ns.len() as f64 / measure_s
        } else {
            0.0
        },
        p50_ms: to_ms(percentile(&latencies_ns, 50.0)),
        p95_ms: to_ms(percentile(&latencies_ns, 95.0)),
        p99_ms: to_ms(percentile(&latencies_ns, 99.0)),
        max_ms: to_ms(latencies_ns.last().copied().unwrap_or(0)),
    })
}

/// Nearest-rank percentile over an ascending-sorted sample (0 if empty).
///
/// Delegates to [`wp_linalg::stats::nearest_rank`] so the load
/// generator's report and the server's `/stats` endpoint agree on the
/// percentile convention.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    wp_linalg::stats::nearest_rank(sorted, p)
}

/// One connection's closed loop. Returns measured latencies (ns) and the
/// error count across both phases.
fn connection_loop(
    addr: &str,
    mix: &[MixEntry],
    total_weight: u32,
    seed: u64,
    warmup_end: Instant,
    measure_end: Instant,
) -> (Vec<u64>, u64) {
    let mut rng = Rng64::new(seed);
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    let mut conn: Option<Connection> = None;
    loop {
        let now = Instant::now();
        if now >= measure_end {
            break;
        }
        let entry = draw(mix, total_weight, &mut rng);
        let c = match conn
            .take()
            .map(Ok)
            .unwrap_or_else(|| Connection::open(addr))
        {
            Ok(c) => c,
            Err(_) => {
                errors += 1;
                continue;
            }
        };
        let started = Instant::now();
        match c.request(entry) {
            Ok((status, keep_alive, reusable)) => {
                let elapsed_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                if (200..300).contains(&status) {
                    if started >= warmup_end {
                        latencies.push(elapsed_ns);
                    }
                } else {
                    errors += 1;
                }
                if keep_alive {
                    conn = Some(reusable);
                }
            }
            Err(_) => errors += 1,
        }
    }
    (latencies, errors)
}

/// Weighted draw from the mix (integer lottery over `total_weight`).
fn draw<'m>(mix: &'m [MixEntry], total_weight: u32, rng: &mut Rng64) -> &'m MixEntry {
    let mut ticket = rng.below(total_weight as usize) as u32;
    for entry in mix {
        if ticket < entry.weight {
            return entry;
        }
        ticket -= entry.weight;
    }
    &mix[mix.len() - 1]
}

/// One keep-alive client connection with buffered reader/writer halves.
struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads the full response. Returns
    /// `(status, server_keeps_alive, self)` so the caller can decide
    /// whether to reuse the connection.
    fn request(mut self, entry: &MixEntry) -> Result<(u16, bool, Self), String> {
        write!(
            self.writer,
            "{} {} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            entry.method,
            entry.path,
            entry.body.len(),
            entry.body
        )
        .and_then(|()| self.writer.flush())
        .map_err(|e| format!("write failed: {e}"))?;
        let (status, keep_alive) = read_response(&mut self.reader)?;
        Ok((status, keep_alive, self))
    }
}

/// Reads one HTTP/1.1 response (status line, headers, `Content-Length`
/// body). Returns the status code and whether the server keeps the
/// connection open.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, bool), String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read failed: {e}"))?;
    if line.is_empty() {
        return Err("connection closed before response".to_string());
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {line:?}"))?;

    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read failed: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| format!("bad content-length: {value:?}"))?;
                }
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body read failed: {e}"))?;
    Ok((status, keep_alive))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn default_mix_is_deterministic_and_covers_all_endpoints() {
        let a = default_mix(9, 30);
        let b = default_mix(9, 30);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.body, y.body, "bodies must be seed-deterministic");
        }
        let posts = a.iter().filter(|e| e.method == "POST").count();
        assert_eq!(posts, 3);
        for entry in &a {
            if entry.method == "POST" {
                let doc = Json::parse(&entry.body).unwrap();
                assert!(doc.get("runs").is_some());
            }
        }
    }

    #[test]
    fn weighted_draw_respects_weights() {
        let mix = vec![
            MixEntry {
                method: "GET",
                path: "/a",
                body: String::new(),
                weight: 1,
            },
            MixEntry {
                method: "GET",
                path: "/b",
                body: String::new(),
                weight: 9,
            },
        ];
        let mut rng = Rng64::new(3);
        let mut b_count = 0;
        for _ in 0..1000 {
            if draw(&mix, 10, &mut rng).path == "/b" {
                b_count += 1;
            }
        }
        assert!((850..=950).contains(&b_count), "b_count={b_count}");
    }

    #[test]
    fn report_serializes_in_bench_shape() {
        let report = Report {
            connections: 2,
            warmup_s: 1.0,
            measure_s: 2.0,
            requests: 100,
            errors: 0,
            throughput_rps: 50.0,
            p50_ms: 1.5,
            p95_ms: 3.0,
            p99_ms: 4.0,
            max_ms: 5.0,
        };
        let doc = Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("experiment").unwrap().as_str(),
            Some("server_loadgen")
        );
        for key in [
            "connections",
            "warmup_s",
            "measure_s",
            "requests",
            "errors",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
    }
}

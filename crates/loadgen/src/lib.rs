//! `wp-loadgen` — a wrkr-style closed-loop load generator for
//! `wp-server`.
//!
//! Closed loop means each connection keeps exactly one request in
//! flight: send, wait for the full response, record the latency, send
//! the next. `connections` threads each own one keep-alive connection
//! and draw their request mix from a seeded [`Rng64`] stream, so the
//! request *sequence* per connection is deterministic even though
//! wall-clock timing is not.
//!
//! A run has two phases, following the standard load-testing
//! methodology: a warmup phase whose latencies are discarded (caches
//! fill, branch predictors settle), then a measurement phase that feeds
//! the report. The report — throughput plus nearest-rank p50/p95/p99/max
//! latency — is written to `BENCH_server.json` in the same flat-object
//! shape as `BENCH_runtime.json`.
//!
//! # Resilience
//!
//! The client is built to survive a faulty server (see `wp-faults`):
//! every request runs under a read timeout, every failed attempt is
//! classified into an error taxonomy ([`ErrorClass`]), and transient
//! failures are retried up to [`LoadConfig::retries`] times with
//! deterministic exponential backoff (jitter comes from a *separate*
//! seeded stream so retry timing never shifts the request-mix draws).
//! [`LoadConfig::requests_per_connection`] switches the run from
//! time-bounded phases to a fixed request count, which makes the
//! taxonomy a deterministic function of `(seed, fault plan)` for
//! single-connection runs — the property the chaos suite asserts.

#![warn(missing_docs)]

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use wp_json::{obj, Json};
use wp_linalg::Rng64;
use wp_telemetry::io::run_to_json;
use wp_workloads::engine::Simulator;
use wp_workloads::{benchmarks, Sku};

/// One weighted request template in the generated mix.
#[derive(Debug, Clone)]
pub struct MixEntry {
    /// HTTP method (`GET` or `POST`).
    pub method: &'static str,
    /// Request path, e.g. `/similar`.
    pub path: &'static str,
    /// Request body (empty for `GET`).
    pub body: String,
    /// Relative draw weight (integer lottery tickets).
    pub weight: u32,
}

/// How a load run connects, paces, and seeds itself.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Concurrent closed-loop connections (threads).
    pub connections: usize,
    /// Warmup phase; latencies are discarded. Ignored in fixed-request
    /// mode.
    pub warmup: Duration,
    /// Measurement phase; latencies feed the report. Ignored in
    /// fixed-request mode.
    pub measure: Duration,
    /// Seed for the per-connection request-mix streams.
    pub seed: u64,
    /// Per-request read timeout; an attempt exceeding it is classified
    /// [`ErrorClass::Timeout`].
    pub timeout: Duration,
    /// Retry budget per logical request: a retryable failure (reset,
    /// timeout, malformed response, 5xx) is retried up to this many
    /// times with exponential backoff before counting as an error.
    pub retries: u32,
    /// When set, each connection issues exactly this many logical
    /// requests instead of running the warmup/measure clock. Used by
    /// chaos runs, where the deterministic request count (not wall
    /// time) is what makes the error taxonomy reproducible.
    pub requests_per_connection: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            connections: 4,
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(2),
            seed: 42,
            timeout: Duration::from_secs(30),
            retries: 3,
            requests_per_connection: None,
        }
    }
}

/// Classification of one failed request attempt.
///
/// Everything except [`ErrorClass::ClientError`] is considered
/// transient and retryable: resets and timeouts are classic network
/// weather, a malformed (truncated / garbled) response means the bytes
/// on the wire can't be trusted, and a 5xx is the server asking for a
/// retry (`wp-server`'s injected `503` even says `Retry-After: 0`). A
/// 4xx means the request itself is wrong and retrying cannot help.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Connection refused / reset / broken mid-request.
    Reset,
    /// The read timeout elapsed before a full response arrived.
    Timeout,
    /// The server answered 5xx.
    ServerError,
    /// The server answered 4xx — the request is at fault; not retried.
    ClientError,
    /// The response violated HTTP framing (truncated, bad status line,
    /// bad `Content-Length`, non-UTF-8 body).
    Malformed,
}

impl ErrorClass {
    /// Whether a retry can plausibly succeed.
    pub fn retryable(self) -> bool {
        !matches!(self, ErrorClass::ClientError)
    }

    /// Stable lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Reset => "reset",
            ErrorClass::Timeout => "timeout",
            ErrorClass::ServerError => "server_error",
            ErrorClass::ClientError => "client_error",
            ErrorClass::Malformed => "malformed",
        }
    }
}

/// Per-class failure counters plus retry accounting for one run.
///
/// `resets + timeouts + server_errors + client_errors + malformed`
/// counts failed *attempts*; `retries` counts extra attempts made;
/// `recovered` counts logical requests that failed at least once and
/// then succeeded within the retry budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Taxonomy {
    /// Attempts that ended in a connection reset / refusal.
    pub resets: u64,
    /// Attempts that exceeded the read timeout.
    pub timeouts: u64,
    /// Attempts answered with a 5xx status.
    pub server_errors: u64,
    /// Attempts answered with a 4xx status (not retried).
    pub client_errors: u64,
    /// Attempts whose response violated HTTP framing.
    pub malformed: u64,
    /// Retry attempts performed (attempts beyond each request's first).
    pub retries: u64,
    /// Logical requests that succeeded after at least one failure.
    pub recovered: u64,
}

impl Taxonomy {
    /// `true` when no fault of any kind was observed (the legacy
    /// clean-run case; [`Report::to_json`] keys off this).
    pub fn is_clean(&self) -> bool {
        *self == Taxonomy::default()
    }

    /// Total failed attempts across all classes.
    pub fn failed_attempts(&self) -> u64 {
        self.resets + self.timeouts + self.server_errors + self.client_errors + self.malformed
    }

    fn count(&mut self, class: ErrorClass) {
        match class {
            ErrorClass::Reset => self.resets += 1,
            ErrorClass::Timeout => self.timeouts += 1,
            ErrorClass::ServerError => self.server_errors += 1,
            ErrorClass::ClientError => self.client_errors += 1,
            ErrorClass::Malformed => self.malformed += 1,
        }
    }

    fn merge(&mut self, other: &Taxonomy) {
        self.resets += other.resets;
        self.timeouts += other.timeouts;
        self.server_errors += other.server_errors;
        self.client_errors += other.client_errors;
        self.malformed += other.malformed;
        self.retries += other.retries;
        self.recovered += other.recovered;
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Connections the run used.
    pub connections: usize,
    /// Configured warmup length in seconds.
    pub warmup_s: f64,
    /// Configured measurement length in seconds (actual elapsed time in
    /// fixed-request mode).
    pub measure_s: f64,
    /// Requests completed during the measurement phase.
    pub requests: u64,
    /// Logical requests that failed (no 2xx within the retry budget).
    pub errors: u64,
    /// Measured requests divided by the measurement wall time.
    pub throughput_rps: f64,
    /// Median latency, milliseconds (nearest rank).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds (nearest rank).
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds (nearest rank).
    pub p99_ms: f64,
    /// Worst measured latency, milliseconds.
    pub max_ms: f64,
    /// Failure classification and retry accounting.
    pub taxonomy: Taxonomy,
}

impl Report {
    /// Renders the report in the `BENCH_runtime.json` flat-object shape.
    ///
    /// A clean run (no failed attempt, no retry) emits exactly the key
    /// set this report always had, byte-for-byte — so fault-free
    /// `BENCH_server.json` files are unchanged by the resilience work.
    /// Any observed fault appends the taxonomy counters.
    pub fn to_json(&self) -> String {
        let mut doc = obj! {
            "experiment" => "server_loadgen",
            "connections" => self.connections as f64,
            "warmup_s" => self.warmup_s,
            "measure_s" => self.measure_s,
            "requests" => self.requests as f64,
            "errors" => self.errors as f64,
            "throughput_rps" => self.throughput_rps,
            "p50_ms" => self.p50_ms,
            "p95_ms" => self.p95_ms,
            "p99_ms" => self.p99_ms,
            "max_ms" => self.max_ms,
        };
        if !self.taxonomy.is_clean() {
            if let Json::Obj(pairs) = &mut doc {
                let t = &self.taxonomy;
                for (key, value) in [
                    ("resets", t.resets),
                    ("timeouts", t.timeouts),
                    ("server_errors", t.server_errors),
                    ("client_errors", t.client_errors),
                    ("malformed", t.malformed),
                    ("retries", t.retries),
                    ("recovered", t.recovered),
                ] {
                    pairs.push((key.to_string(), Json::from(value as f64)));
                }
            }
        }
        doc.pretty()
    }

    /// Renders only the timing-free counters: requests, errors, and the
    /// taxonomy. For a fixed-request single-connection run these are a
    /// pure function of `(seed, fault plan)` — two identical chaos runs
    /// produce byte-identical output. Written to `BENCH_chaos.json`.
    pub fn taxonomy_json(&self) -> String {
        let t = &self.taxonomy;
        obj! {
            "experiment" => "server_chaos",
            "connections" => self.connections as f64,
            "requests" => self.requests as f64,
            "errors" => self.errors as f64,
            "resets" => t.resets as f64,
            "timeouts" => t.timeouts as f64,
            "server_errors" => t.server_errors as f64,
            "client_errors" => t.client_errors as f64,
            "malformed" => t.malformed as f64,
            "retries" => t.retries as f64,
            "recovered" => t.recovered as f64,
        }
        .pretty()
    }
}

/// The default request mix: every endpoint of the service, weighted
/// towards the compute-bearing `POST`s. Bodies carry `samples`-long
/// simulated YCSB target runs (two per body) drawn from `seed`, in the
/// `wp_telemetry::io` interchange schema.
pub fn default_mix(seed: u64, samples: usize) -> Vec<MixEntry> {
    let mut sim = Simulator::new(seed);
    sim.config.samples = samples;
    let spec = benchmarks::ycsb();
    let sku = Sku::new("cpu2", 2, 64.0);
    let runs: Vec<Json> = (0..2)
        .map(|r| run_to_json(&sim.simulate(&spec, &sku, 8, r, r % 3)))
        .collect();
    let runs_body = obj! { "runs" => runs.clone() }.compact();
    let predict_body = obj! {
        "runs" => runs,
        "from_cpus" => 2.0,
        "to_cpus" => 8.0,
    }
    .compact();
    vec![
        MixEntry {
            method: "GET",
            path: "/healthz",
            body: String::new(),
            weight: 1,
        },
        MixEntry {
            method: "GET",
            path: "/corpus",
            body: String::new(),
            weight: 1,
        },
        MixEntry {
            method: "GET",
            path: "/stats",
            body: String::new(),
            weight: 1,
        },
        MixEntry {
            method: "POST",
            path: "/fingerprint",
            body: runs_body.clone(),
            weight: 3,
        },
        MixEntry {
            method: "POST",
            path: "/similar",
            body: runs_body,
            weight: 3,
        },
        MixEntry {
            method: "POST",
            path: "/predict",
            body: predict_body,
            weight: 3,
        },
    ]
}

/// Runs the closed loop against `config.addr` and aggregates a
/// [`Report`]. Fails only on setup errors (no connection can be
/// established, empty mix); per-request failures are counted in
/// `Report::errors` and classified in `Report::taxonomy`.
pub fn run_load(config: &LoadConfig, mix: &[MixEntry]) -> Result<Report, String> {
    if mix.is_empty() {
        return Err("request mix is empty".to_string());
    }
    let total_weight: u32 = mix.iter().map(|e| e.weight).sum();
    if total_weight == 0 {
        return Err("request mix has zero total weight".to_string());
    }
    let connections = config.connections.max(1);
    // Fail fast before spawning if the server is not there at all.
    TcpStream::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;

    let start = Instant::now();
    let warmup_end = start + config.warmup;
    let measure_end = warmup_end + config.measure;

    let results: Vec<ConnResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let addr = config.addr.clone();
                let seed = config.seed.wrapping_add(c as u64);
                s.spawn(move || {
                    let mut client = Client {
                        addr,
                        timeout: config.timeout,
                        retries: config.retries,
                        // A dedicated jitter stream: backoff must never
                        // advance the request-mix rng.
                        jitter: Rng64::new(seed ^ 0x5EED_BACC_0FF5),
                        conn: None,
                    };
                    match config.requests_per_connection {
                        Some(n) => fixed_loop(&mut client, mix, total_weight, seed, n),
                        None => timed_loop(
                            &mut client,
                            mix,
                            total_weight,
                            seed,
                            warmup_end,
                            measure_end,
                        ),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| ConnResult::panicked()))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    let mut taxonomy = Taxonomy::default();
    for r in results {
        latencies_ns.extend(r.latencies);
        errors += r.errors;
        taxonomy.merge(&r.taxonomy);
    }
    latencies_ns.sort_unstable();
    // Fixed-request mode has no configured measurement window; report
    // the actual elapsed time so throughput still means something.
    let measure_s = match config.requests_per_connection {
        Some(_) => elapsed.as_secs_f64(),
        None => config.measure.as_secs_f64(),
    };
    let to_ms = |ns: u64| ns as f64 / 1e6;
    Ok(Report {
        connections,
        warmup_s: config.warmup.as_secs_f64(),
        measure_s,
        requests: latencies_ns.len() as u64,
        errors,
        throughput_rps: if measure_s > 0.0 {
            latencies_ns.len() as f64 / measure_s
        } else {
            0.0
        },
        p50_ms: to_ms(percentile(&latencies_ns, 50.0)),
        p95_ms: to_ms(percentile(&latencies_ns, 95.0)),
        p99_ms: to_ms(percentile(&latencies_ns, 99.0)),
        max_ms: to_ms(latencies_ns.last().copied().unwrap_or(0)),
        taxonomy,
    })
}

/// Performs one standalone request on a fresh connection and returns
/// `(status, body)`. Used by health probes and the chaos harness's
/// cache-equality checks, where the response *bytes* matter.
pub fn fetch(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), ErrorClass> {
    let mut conn = Connection::open(addr, timeout).map_err(|_| ErrorClass::Reset)?;
    let entry = MixEntry {
        method: if method.eq_ignore_ascii_case("POST") {
            "POST"
        } else {
            "GET"
        },
        path: "",
        body: body.to_string(),
        weight: 1,
    };
    conn.send(&entry, path)?;
    let (status, _keep_alive, response_body) = conn.read_response()?;
    Ok((status, response_body))
}

/// Nearest-rank percentile over an ascending-sorted sample (0 if empty).
///
/// Delegates to [`wp_linalg::stats::nearest_rank`] so the load
/// generator's report and the server's `/stats` endpoint agree on the
/// percentile convention.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    wp_linalg::stats::nearest_rank(sorted, p)
}

/// Deterministic exponential backoff with seeded jitter: 5 ms doubling
/// per retry, capped at 80 ms, plus up to half the base again in
/// jitter. Small enough for tests, shaped like the real thing.
pub fn backoff_delay(retry: u32, jitter: &mut Rng64) -> Duration {
    let base_ms = (5u64 << retry.min(4)).min(80);
    Duration::from_millis(base_ms + jitter.below((base_ms / 2 + 1) as usize) as u64)
}

/// How the streamer mode replays telemetry: multi-tenant `/ingest`
/// batches paced at a target rate, in the style of a multi-channel
/// telemetry simulator (each tenant is one channel emitting its own
/// seeded workload).
#[derive(Debug, Clone)]
pub struct StreamerConfig {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Target batch rate across all tenants, batches per second. The
    /// loop paces against absolute deadlines, so a slow request eats
    /// into the next slot instead of stretching the schedule.
    pub rate_hz: f64,
    /// Telemetry channels; tenant `i` streams as `tenant-i`.
    pub tenants: usize,
    /// Batches sent per tenant.
    pub batches: u64,
    /// Runs per batch.
    pub runs_per_batch: usize,
    /// Samples per simulated run.
    pub samples: usize,
    /// Seed for the per-tenant telemetry streams.
    pub seed: u64,
    /// When set, every tenant's stream shape-shifts to an analytics
    /// workload from this batch index on — the scripted drift scenario.
    pub shift_after: Option<u64>,
    /// Stream the scenario zoo instead of frozen benchmark mixes: tenant
    /// `i` replays `wp_workloads::zoo` scenario `i` (recurring/shifting
    /// time-evolving transaction mixes), one evolution step per batch.
    /// A `shift_after` still overrides with the TPC-H shape-shift.
    pub zoo: bool,
    /// Per-request read timeout.
    pub timeout: Duration,
}

impl Default for StreamerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            rate_hz: 40.0,
            tenants: 2,
            batches: 12,
            runs_per_batch: 2,
            samples: 30,
            seed: 0xEDB7_2025,
            shift_after: None,
            zoo: false,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Aggregated result of one streaming-ingest run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Tenants (channels) that streamed.
    pub tenants: usize,
    /// Configured target batch rate.
    pub rate_hz: f64,
    /// Ingest batches sent.
    pub batches_sent: u64,
    /// Batches the server accepted (2xx).
    pub batches_accepted: u64,
    /// Batches that failed (no 2xx within the retry budget).
    pub errors: u64,
    /// Wall time of the ingest loop, seconds.
    pub elapsed_s: f64,
    /// Sustained ingest throughput: accepted batches per second.
    pub ingest_rps: f64,
    /// Median ingest latency, milliseconds (nearest rank).
    pub p50_ms: f64,
    /// 95th-percentile ingest latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile ingest latency, milliseconds.
    pub p99_ms: f64,
    /// Worst ingest latency, milliseconds.
    pub max_ms: f64,
    /// Drift events the server's stream engine recorded.
    pub drift_events: u64,
    /// Runs evicted from tenant windows.
    pub evicted_runs: u64,
    /// Corpus generation after the run (== accepted batches server-side).
    pub generation: u64,
    /// Set by harnesses that replay the run and compare drift logs
    /// byte-for-byte; `None` when no verification was attempted.
    pub deterministic: Option<bool>,
}

impl StreamReport {
    /// Renders the report in the `BENCH_runtime.json` flat-object shape
    /// (written to `BENCH_stream.json`). The `deterministic` key only
    /// appears when a verification pass ran.
    pub fn to_json(&self) -> String {
        let mut doc = obj! {
            "experiment" => "server_stream",
            "tenants" => self.tenants as f64,
            "rate_hz" => self.rate_hz,
            "batches_sent" => self.batches_sent as f64,
            "batches_accepted" => self.batches_accepted as f64,
            "errors" => self.errors as f64,
            "elapsed_s" => self.elapsed_s,
            "ingest_rps" => self.ingest_rps,
            "p50_ms" => self.p50_ms,
            "p95_ms" => self.p95_ms,
            "p99_ms" => self.p99_ms,
            "max_ms" => self.max_ms,
            "drift_events" => self.drift_events as f64,
            "evicted_runs" => self.evicted_runs as f64,
            "generation" => self.generation as f64,
        };
        if let Some(verdict) = self.deterministic {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("deterministic".to_string(), Json::Bool(verdict)));
            }
        }
        doc.pretty()
    }
}

/// Deterministic `/ingest` bodies for one tenant: `batches` batches of
/// `runs_per_batch` simulated runs each, in the `wp_telemetry::io`
/// schema. Until `shift_after`, the tenant replays its home OLTP
/// workload (keyed by tenant index) — or, with `zoo` set, one step of
/// its `wp_workloads::zoo` scenario per batch, so the mix recurs or
/// drifts instead of freezing. From `shift_after` on, the stream
/// shape-shifts to TPC-H so the server's drift detector has a real
/// change to find. Same config → byte-identical bodies.
pub fn stream_bodies(config: &StreamerConfig, tenant: usize) -> Vec<String> {
    let mut sim = Simulator::new(
        config
            .seed
            .wrapping_add((tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    sim.config.samples = config.samples;
    let sku = Sku::new("cpu2", 2, 64.0);
    let scenario = config.zoo.then(|| {
        let zoo = wp_workloads::zoo::paper_zoo(config.seed);
        zoo[tenant % zoo.len()].clone()
    });
    let mut bodies = Vec::with_capacity(config.batches as usize);
    let mut run_index = 0usize;
    for batch in 0..config.batches {
        let shifted = config.shift_after.is_some_and(|s| batch >= s);
        let (spec, terminals) = if shifted {
            (benchmarks::tpch(), 1)
        } else if let Some(scenario) = &scenario {
            (scenario.spec_at(batch as usize), 8)
        } else {
            match tenant % 3 {
                0 => (benchmarks::tpcc(), 8),
                1 => (benchmarks::twitter(), 8),
                _ => (benchmarks::ycsb(), 8),
            }
        };
        let runs: Vec<Json> = (0..config.runs_per_batch)
            .map(|_| {
                let run = sim.simulate(&spec, &sku, terminals, run_index, run_index % 3);
                run_index += 1;
                run_to_json(&run)
            })
            .collect();
        bodies.push(
            obj! {
                "tenant" => format!("tenant-{tenant}"),
                "runs" => runs,
            }
            .compact(),
        );
    }
    bodies
}

/// Replays seeded multi-tenant telemetry into `POST /ingest` at the
/// target rate, then reads the server's `/stats` stream section for the
/// drift/eviction/generation counters. Fails only on setup errors or
/// when the post-run stats probe cannot complete; rejected batches are
/// counted in `StreamReport::errors`.
pub fn run_stream(config: &StreamerConfig) -> Result<StreamReport, String> {
    if config.tenants == 0 || config.batches == 0 || config.runs_per_batch == 0 {
        return Err("streamer needs tenants, batches, and runs per batch".to_string());
    }
    if !(config.rate_hz.is_finite() && config.rate_hz > 0.0) {
        return Err(format!("invalid target rate: {}", config.rate_hz));
    }
    let bodies: Vec<Vec<String>> = (0..config.tenants)
        .map(|t| stream_bodies(config, t))
        .collect();
    let mut client = Client {
        addr: config.addr.clone(),
        timeout: config.timeout,
        retries: 0,
        jitter: Rng64::new(config.seed ^ 0x5EED_BACC_0FF5),
        conn: None,
    };
    let interval = Duration::from_secs_f64(1.0 / config.rate_hz);
    let start = Instant::now();
    let mut next = start;
    let mut taxonomy = Taxonomy::default();
    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut sent = 0u64;
    let mut errors = 0u64;
    // Batch-major interleave: every tenant advances one batch per round,
    // the way independent telemetry channels interleave on the wire.
    for batch in 0..config.batches as usize {
        for tenant_bodies in &bodies {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            }
            next += interval;
            let entry = MixEntry {
                method: "POST",
                path: "/ingest",
                body: tenant_bodies[batch].clone(),
                weight: 1,
            };
            sent += 1;
            match client.logical_request(&entry, &mut taxonomy) {
                Some(latency) => latencies_ns.push(latency),
                None => errors += 1,
            }
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();

    let (status, stats_body) = fetch(&config.addr, "GET", "/stats", "", config.timeout)
        .map_err(|class| format!("post-run /stats probe failed: {}", class.label()))?;
    if status != 200 {
        return Err(format!("post-run /stats probe answered {status}"));
    }
    let stats = Json::parse(&stats_body).map_err(|e| format!("/stats body is not JSON: {e}"))?;
    let stream = stats
        .get("stream")
        .ok_or("no stream section in /stats — server too old?")?;
    let counter =
        |key: &str| -> u64 { stream.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64 };

    let to_ms = |ns: u64| ns as f64 / 1e6;
    Ok(StreamReport {
        tenants: config.tenants,
        rate_hz: config.rate_hz,
        batches_sent: sent,
        batches_accepted: latencies_ns.len() as u64,
        errors,
        elapsed_s,
        ingest_rps: if elapsed_s > 0.0 {
            latencies_ns.len() as f64 / elapsed_s
        } else {
            0.0
        },
        p50_ms: to_ms(percentile(&latencies_ns, 50.0)),
        p95_ms: to_ms(percentile(&latencies_ns, 95.0)),
        p99_ms: to_ms(percentile(&latencies_ns, 99.0)),
        max_ms: to_ms(latencies_ns.last().copied().unwrap_or(0)),
        drift_events: counter("drift_events"),
        evicted_runs: counter("evicted_runs"),
        generation: counter("generation"),
        deterministic: None,
    })
}

/// How the stepped-load scaling mode ramps concurrency.
///
/// The step schedule answers the serving-tier question the closed loop
/// cannot: *how does latency and throughput move as concurrent
/// keep-alive connections grow?* Each step opens `connections` closed
/// loops, measures for [`StepConfig::step_duration`], and tears them
/// down; the first step is preceded by a warmup whose latencies are
/// discarded. Every response is validated byte-for-byte against a
/// prefetched expected answer, so the curve only counts *correct* work.
#[derive(Debug, Clone)]
pub struct StepConfig {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Connection counts, one step each, in ramp order.
    pub steps: Vec<usize>,
    /// Warmup before the first step; latencies discarded.
    pub warmup: Duration,
    /// Measurement window per step.
    pub step_duration: Duration,
    /// Seed for the per-connection request-mix streams.
    pub seed: u64,
    /// Samples per simulated run in the request bodies.
    pub samples: usize,
    /// Per-request read timeout.
    pub timeout: Duration,
}

impl Default for StepConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            steps: vec![32, 64, 128, 256, 512, 1024],
            warmup: Duration::from_secs(1),
            step_duration: Duration::from_secs(2),
            seed: 42,
            samples: 30,
            timeout: Duration::from_secs(30),
        }
    }
}

/// One rung of the scaling curve.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Concurrent closed-loop connections during this step.
    pub connections: usize,
    /// Validated responses completed in the measurement window.
    pub requests: u64,
    /// Transport failures (connect, reset, timeout) in the window.
    pub errors: u64,
    /// Responses that arrived but did not match the expected bytes
    /// (wrong status or wrong body).
    pub validation_failures: u64,
    /// Validated requests divided by the window length.
    pub throughput_rps: f64,
    /// Median latency, milliseconds (nearest rank).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst measured latency, milliseconds.
    pub max_ms: f64,
}

/// The full scaling curve (written to `BENCH_scaling.json`).
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Configured warmup length in seconds.
    pub warmup_s: f64,
    /// Configured per-step measurement window in seconds.
    pub step_s: f64,
    /// One entry per configured step, in ramp order.
    pub steps: Vec<StepResult>,
}

impl StepReport {
    /// Renders the curve: a flat header plus a `steps` array in the
    /// `BENCH_runtime.json` style.
    pub fn to_json(&self) -> String {
        let steps: Vec<Json> = self
            .steps
            .iter()
            .map(|s| {
                obj! {
                    "connections" => s.connections as f64,
                    "requests" => s.requests as f64,
                    "errors" => s.errors as f64,
                    "validation_failures" => s.validation_failures as f64,
                    "throughput_rps" => s.throughput_rps,
                    "p50_ms" => s.p50_ms,
                    "p95_ms" => s.p95_ms,
                    "p99_ms" => s.p99_ms,
                    "max_ms" => s.max_ms,
                }
            })
            .collect();
        obj! {
            "experiment" => "server_scaling",
            "warmup_s" => self.warmup_s,
            "step_s" => self.step_s,
            "steps" => Json::Arr(steps),
        }
        .pretty()
    }
}

/// The byte-validatable request mix: [`default_mix`] minus `/stats`,
/// whose body changes with every request served and so can never match
/// a prefetched answer.
pub fn validated_mix(seed: u64, samples: usize) -> Vec<MixEntry> {
    default_mix(seed, samples)
        .into_iter()
        .filter(|e| e.path != "/stats")
        .collect()
}

/// Runs the stepped-load ramp against `config.addr`.
///
/// Before the ramp, every mix entry is probed once and its response
/// stored: handlers are deterministic functions of the request body and
/// the corpus generation, and the mix never ingests, so one probe pins
/// the full expected byte set. During the ramp every response is
/// compared against it — a mismatch counts as a validation failure, not
/// a request.
pub fn run_steps(config: &StepConfig) -> Result<StepReport, String> {
    if config.steps.is_empty() {
        return Err("step schedule is empty".to_string());
    }
    let mix = validated_mix(config.seed, config.samples);
    let total_weight: u32 = mix.iter().map(|e| e.weight).sum();
    let max_conns = *config.steps.iter().max().expect("non-empty steps");
    // One fd per connection plus headroom for the process's own files.
    wp_reactor::raise_nofile_limit(max_conns as u64 * 2 + 256);

    let mut expected: Vec<String> = Vec::with_capacity(mix.len());
    for entry in &mix {
        let (status, body) = fetch(
            &config.addr,
            entry.method,
            entry.path,
            &entry.body,
            config.timeout,
        )
        .map_err(|class| format!("prefetch {} failed: {}", entry.path, class.label()))?;
        if status != 200 {
            return Err(format!("prefetch {} answered {status}", entry.path));
        }
        expected.push(body);
    }

    let mut steps = Vec::with_capacity(config.steps.len());
    for (step_index, &connections) in config.steps.iter().enumerate() {
        let connections = connections.max(1);
        let warmup = if step_index == 0 {
            config.warmup
        } else {
            Duration::ZERO
        };
        let start = Instant::now();
        let warmup_end = start + warmup;
        let end = warmup_end + config.step_duration;

        let results: Vec<StepWorker> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..connections)
                .map(|c| {
                    // Distinct per-(step, connection) mix streams.
                    let seed = config
                        .seed
                        .wrapping_add((step_index as u64) << 32)
                        .wrapping_add(c as u64);
                    let mix = &mix;
                    let expected = &expected;
                    let addr = &config.addr;
                    let timeout = config.timeout;
                    // Small stacks: a 1024-connection step would reserve
                    // gigabytes at the default thread stack size.
                    std::thread::Builder::new()
                        .stack_size(256 * 1024)
                        .spawn_scoped(s, move || {
                            step_worker(
                                addr,
                                timeout,
                                mix,
                                total_weight,
                                expected,
                                seed,
                                warmup_end,
                                end,
                            )
                        })
                        .expect("spawn step worker")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(StepWorker {
                        latencies: Vec::new(),
                        errors: 1,
                        validation_failures: 0,
                    })
                })
                .collect()
        });

        let mut latencies_ns: Vec<u64> = Vec::new();
        let mut errors = 0u64;
        let mut validation_failures = 0u64;
        for r in results {
            latencies_ns.extend(r.latencies);
            errors += r.errors;
            validation_failures += r.validation_failures;
        }
        latencies_ns.sort_unstable();
        let window_s = config.step_duration.as_secs_f64();
        let to_ms = |ns: u64| ns as f64 / 1e6;
        steps.push(StepResult {
            connections,
            requests: latencies_ns.len() as u64,
            errors,
            validation_failures,
            throughput_rps: if window_s > 0.0 {
                latencies_ns.len() as f64 / window_s
            } else {
                0.0
            },
            p50_ms: to_ms(percentile(&latencies_ns, 50.0)),
            p95_ms: to_ms(percentile(&latencies_ns, 95.0)),
            p99_ms: to_ms(percentile(&latencies_ns, 99.0)),
            max_ms: to_ms(latencies_ns.last().copied().unwrap_or(0)),
        });
    }
    Ok(StepReport {
        warmup_s: config.warmup.as_secs_f64(),
        step_s: config.step_duration.as_secs_f64(),
        steps,
    })
}

/// What one stepped-load connection thread hands back.
struct StepWorker {
    latencies: Vec<u64>,
    errors: u64,
    validation_failures: u64,
}

/// One validated closed loop: send, read, byte-compare, repeat until the
/// step deadline. No retries — in the scaling run the server is
/// fault-free, so any failure is signal, not weather.
#[allow(clippy::too_many_arguments)]
fn step_worker(
    addr: &str,
    timeout: Duration,
    mix: &[MixEntry],
    total_weight: u32,
    expected: &[String],
    seed: u64,
    warmup_end: Instant,
    end: Instant,
) -> StepWorker {
    let mut rng = Rng64::new(seed);
    let mut out = StepWorker {
        latencies: Vec::new(),
        errors: 0,
        validation_failures: 0,
    };
    let mut conn: Option<Connection> = None;
    loop {
        let started = Instant::now();
        if started >= end {
            break;
        }
        let idx = draw_index(mix, total_weight, &mut rng);
        let entry = &mix[idx];
        let measured = started >= warmup_end;
        let c = match conn.as_mut() {
            Some(c) => c,
            None => match open_with_retry(addr, timeout, end) {
                Some(opened) => conn.insert(opened),
                None => {
                    // Could not (re)connect before the deadline. Only a
                    // measured-window failure taints the step.
                    if measured {
                        out.errors += 1;
                    }
                    break;
                }
            },
        };
        let result = c.send(entry, entry.path).and_then(|()| c.read_response());
        let elapsed_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        match result {
            Ok((status, keep_alive, body)) => {
                if !keep_alive {
                    conn = None;
                }
                if status != 200 || body != expected[idx] {
                    if measured {
                        out.validation_failures += 1;
                    }
                } else if measured {
                    out.latencies.push(elapsed_ns);
                }
            }
            Err(_) => {
                conn = None;
                if measured {
                    out.errors += 1;
                }
            }
        }
    }
    out
}

/// Opens a connection, absorbing transient refusals (listen-backlog
/// pressure while a big step ramps) with short sleeps until `deadline`.
fn open_with_retry(addr: &str, timeout: Duration, deadline: Instant) -> Option<Connection> {
    const PAUSE: Duration = Duration::from_millis(50);
    loop {
        match Connection::open(addr, timeout) {
            Ok(conn) => return Some(conn),
            Err(_) => {
                if Instant::now() + PAUSE >= deadline {
                    return None;
                }
                std::thread::sleep(PAUSE);
            }
        }
    }
}

/// What one connection thread hands back.
struct ConnResult {
    latencies: Vec<u64>,
    errors: u64,
    taxonomy: Taxonomy,
}

impl ConnResult {
    fn panicked() -> Self {
        Self {
            latencies: Vec::new(),
            errors: 1,
            taxonomy: Taxonomy::default(),
        }
    }
}

/// One connection's resilient client state.
struct Client {
    addr: String,
    timeout: Duration,
    retries: u32,
    jitter: Rng64,
    conn: Option<Connection>,
}

impl Client {
    /// One logical request: up to `1 + retries` attempts with backoff.
    /// Returns the latency of the successful attempt, or `None` when
    /// the budget is exhausted (or the failure is non-retryable).
    fn logical_request(&mut self, entry: &MixEntry, taxonomy: &mut Taxonomy) -> Option<u64> {
        let mut failed_before = false;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                taxonomy.retries += 1;
                std::thread::sleep(backoff_delay(attempt - 1, &mut self.jitter));
            }
            match self.attempt(entry) {
                Ok(latency_ns) => {
                    if failed_before {
                        taxonomy.recovered += 1;
                    }
                    return Some(latency_ns);
                }
                Err(class) => {
                    taxonomy.count(class);
                    failed_before = true;
                    if !class.retryable() {
                        return None;
                    }
                }
            }
        }
        None
    }

    /// One attempt: reuse or open the connection, send, read a full
    /// response. Any failure drops the connection (its stream position
    /// is no longer trustworthy).
    fn attempt(&mut self, entry: &MixEntry) -> Result<u64, ErrorClass> {
        let result = (|| {
            let conn = match self.conn.as_mut() {
                Some(c) => c,
                None => {
                    let opened = Connection::open(&self.addr, self.timeout)
                        .map_err(|_| ErrorClass::Reset)?;
                    self.conn.insert(opened)
                }
            };
            let started = Instant::now();
            conn.send(entry, entry.path)?;
            let (status, keep_alive, _body) = conn.read_response()?;
            let elapsed_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            if !keep_alive {
                self.conn = None;
            }
            match status {
                200..=299 => Ok(elapsed_ns),
                500..=599 => Err(ErrorClass::ServerError),
                400..=499 => Err(ErrorClass::ClientError),
                _ => Err(ErrorClass::Malformed),
            }
        })();
        if let Err(class) = result {
            // 4xx/5xx arrived on an intact stream; everything else
            // leaves the connection unusable.
            if !matches!(class, ErrorClass::ServerError | ErrorClass::ClientError) {
                self.conn = None;
            }
        }
        result
    }
}

/// Fixed-request closed loop (chaos mode): exactly `n` logical requests
/// drawn from the mix, all successful latencies recorded.
fn fixed_loop(
    client: &mut Client,
    mix: &[MixEntry],
    total_weight: u32,
    seed: u64,
    n: u64,
) -> ConnResult {
    let mut rng = Rng64::new(seed);
    let mut result = ConnResult {
        latencies: Vec::new(),
        errors: 0,
        taxonomy: Taxonomy::default(),
    };
    for _ in 0..n {
        let entry = draw(mix, total_weight, &mut rng);
        match client.logical_request(entry, &mut result.taxonomy) {
            Some(latency) => result.latencies.push(latency),
            None => result.errors += 1,
        }
    }
    result
}

/// Time-bounded closed loop (benchmark mode): warmup latencies are
/// discarded, measurement latencies feed the report.
fn timed_loop(
    client: &mut Client,
    mix: &[MixEntry],
    total_weight: u32,
    seed: u64,
    warmup_end: Instant,
    measure_end: Instant,
) -> ConnResult {
    let mut rng = Rng64::new(seed);
    let mut result = ConnResult {
        latencies: Vec::new(),
        errors: 0,
        taxonomy: Taxonomy::default(),
    };
    loop {
        let started = Instant::now();
        if started >= measure_end {
            break;
        }
        let entry = draw(mix, total_weight, &mut rng);
        match client.logical_request(entry, &mut result.taxonomy) {
            Some(latency) => {
                if started >= warmup_end {
                    result.latencies.push(latency);
                }
            }
            None => result.errors += 1,
        }
    }
    result
}

/// Weighted draw from the mix (integer lottery over `total_weight`).
fn draw<'m>(mix: &'m [MixEntry], total_weight: u32, rng: &mut Rng64) -> &'m MixEntry {
    &mix[draw_index(mix, total_weight, rng)]
}

/// [`draw`], returning the entry's index (the stepped-load validator
/// keys its expected-bytes table by mix position).
fn draw_index(mix: &[MixEntry], total_weight: u32, rng: &mut Rng64) -> usize {
    let mut ticket = rng.below(total_weight as usize) as u32;
    for (i, entry) in mix.iter().enumerate() {
        if ticket < entry.weight {
            return i;
        }
        ticket -= entry.weight;
    }
    mix.len() - 1
}

/// One keep-alive client connection with buffered reader/writer halves.
struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn open(addr: &str, timeout: Duration) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(timeout));
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Writes one request; classifies write failures as [`ErrorClass::Reset`].
    fn send(&mut self, entry: &MixEntry, path: &str) -> Result<(), ErrorClass> {
        write!(
            self.writer,
            "{} {} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            entry.method,
            path,
            entry.body.len(),
            entry.body
        )
        .and_then(|()| self.writer.flush())
        .map_err(|_| ErrorClass::Reset)
    }

    /// Reads one HTTP/1.1 response (status line, headers,
    /// `Content-Length` body). Returns the status code, whether the
    /// server keeps the connection open, and the body.
    ///
    /// Failures are classified: a socket-level timeout is
    /// [`ErrorClass::Timeout`], a reset/refusal is [`ErrorClass::Reset`],
    /// and anything that breaks HTTP framing — notably a connection
    /// closed mid-response, which a truncating server produces — is
    /// [`ErrorClass::Malformed`]. (EOF and an empty header line are
    /// *different* events: `read_line` returning zero bytes is a closed
    /// socket, not a blank line.)
    fn read_response(&mut self) -> Result<(u16, bool, String), ErrorClass> {
        let line = read_response_line(&mut self.reader)?.ok_or(ErrorClass::Reset)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(ErrorClass::Malformed)?;

        let mut content_length = 0usize;
        let mut keep_alive = true;
        loop {
            // EOF here is a truncated response, not an empty header.
            let header = read_response_line(&mut self.reader)?.ok_or(ErrorClass::Malformed)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                match name.to_ascii_lowercase().as_str() {
                    "content-length" => {
                        content_length = value.parse().map_err(|_| ErrorClass::Malformed)?;
                    }
                    "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| classify_io(&e))?;
        let body = String::from_utf8(body).map_err(|_| ErrorClass::Malformed)?;
        Ok((status, keep_alive, body))
    }
}

/// Reads one line; `Ok(None)` on a clean EOF before any byte, classified
/// I/O errors otherwise.
fn read_response_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, ErrorClass> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| classify_io(&e))?;
    if n == 0 {
        return Ok(None);
    }
    Ok(Some(line))
}

/// Maps an I/O error to the taxonomy: timeouts are distinguishable by
/// kind, truncation surfaces as `UnexpectedEof`, everything else on an
/// established connection is treated as a reset.
fn classify_io(e: &std::io::Error) -> ErrorClass {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ErrorClass::Timeout,
        ErrorKind::UnexpectedEof => ErrorClass::Malformed,
        _ => ErrorClass::Reset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn default_mix_is_deterministic_and_covers_all_endpoints() {
        let a = default_mix(9, 30);
        let b = default_mix(9, 30);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.body, y.body, "bodies must be seed-deterministic");
        }
        let posts = a.iter().filter(|e| e.method == "POST").count();
        assert_eq!(posts, 3);
        for entry in &a {
            if entry.method == "POST" {
                let doc = Json::parse(&entry.body).unwrap();
                assert!(doc.get("runs").is_some());
            }
        }
    }

    #[test]
    fn zoo_stream_bodies_are_deterministic_and_actually_evolve() {
        let config = StreamerConfig {
            zoo: true,
            batches: 6,
            runs_per_batch: 1,
            samples: 20,
            ..StreamerConfig::default()
        };
        let a = stream_bodies(&config, 0);
        let b = stream_bodies(&config, 0);
        assert_eq!(a, b, "zoo bodies must be seed-deterministic");
        assert_eq!(a.len(), 6);
        // An evolving mix moves the simulated throughput batch to batch;
        // the frozen (non-zoo) stream only moves it via the run index.
        let throughput = |body: &str| {
            Json::parse(body)
                .unwrap()
                .get("runs")
                .and_then(Json::as_arr)
                .and_then(|runs| runs[0].get("throughput").and_then(Json::as_f64))
                .unwrap()
        };
        assert_ne!(
            throughput(&a[0]).to_bits(),
            throughput(&a[3]).to_bits(),
            "zoo stream did not evolve the telemetry"
        );
        // Distinct tenants replay distinct scenarios.
        assert_ne!(a, stream_bodies(&config, 1));
    }

    #[test]
    fn weighted_draw_respects_weights() {
        let mix = vec![
            MixEntry {
                method: "GET",
                path: "/a",
                body: String::new(),
                weight: 1,
            },
            MixEntry {
                method: "GET",
                path: "/b",
                body: String::new(),
                weight: 9,
            },
        ];
        let mut rng = Rng64::new(3);
        let mut b_count = 0;
        for _ in 0..1000 {
            if draw(&mix, 10, &mut rng).path == "/b" {
                b_count += 1;
            }
        }
        assert!((850..=950).contains(&b_count), "b_count={b_count}");
    }

    fn sample_report(taxonomy: Taxonomy) -> Report {
        Report {
            connections: 2,
            warmup_s: 1.0,
            measure_s: 2.0,
            requests: 100,
            errors: 0,
            throughput_rps: 50.0,
            p50_ms: 1.5,
            p95_ms: 3.0,
            p99_ms: 4.0,
            max_ms: 5.0,
            taxonomy,
        }
    }

    #[test]
    fn report_serializes_in_bench_shape() {
        let doc = Json::parse(&sample_report(Taxonomy::default()).to_json()).unwrap();
        assert_eq!(
            doc.get("experiment").unwrap().as_str(),
            Some("server_loadgen")
        );
        for key in [
            "connections",
            "warmup_s",
            "measure_s",
            "requests",
            "errors",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn clean_report_omits_taxonomy_keys() {
        let clean = sample_report(Taxonomy::default()).to_json();
        assert!(!clean.contains("resets"), "{clean}");
        assert!(!clean.contains("recovered"), "{clean}");

        let faulted = sample_report(Taxonomy {
            timeouts: 2,
            retries: 2,
            recovered: 2,
            ..Taxonomy::default()
        })
        .to_json();
        let doc = Json::parse(&faulted).unwrap();
        assert_eq!(doc.get("timeouts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("recovered").and_then(Json::as_f64), Some(2.0));
        // the legacy prefix is unchanged
        assert!(faulted.contains("\"throughput_rps\""), "{faulted}");
    }

    #[test]
    fn taxonomy_json_is_timing_free() {
        let mut report = sample_report(Taxonomy {
            resets: 1,
            server_errors: 3,
            retries: 4,
            recovered: 4,
            ..Taxonomy::default()
        });
        let a = report.taxonomy_json();
        // perturb every timing field: the taxonomy document must not move
        report.throughput_rps = 123.456;
        report.p50_ms = 9.9;
        report.max_ms = 77.7;
        report.measure_s = 0.001;
        let b = report.taxonomy_json();
        assert_eq!(a, b);
        let doc = Json::parse(&a).unwrap();
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some("server_chaos")
        );
        assert_eq!(doc.get("server_errors").and_then(Json::as_f64), Some(3.0));
        assert!(doc.get("p50_ms").is_none());
    }

    #[test]
    fn error_class_retryability_and_labels() {
        for class in [
            ErrorClass::Reset,
            ErrorClass::Timeout,
            ErrorClass::ServerError,
            ErrorClass::Malformed,
        ] {
            assert!(class.retryable(), "{class:?}");
        }
        assert!(!ErrorClass::ClientError.retryable());
        assert_eq!(ErrorClass::Reset.label(), "reset");
        assert_eq!(ErrorClass::ServerError.label(), "server_error");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for retry in 0..8 {
            let da = backoff_delay(retry, &mut a);
            let db = backoff_delay(retry, &mut b);
            assert_eq!(da, db, "same jitter stream must give the same delay");
            assert!(da >= Duration::from_millis(5));
            assert!(da <= Duration::from_millis(120), "{da:?}");
        }
    }

    #[test]
    fn taxonomy_counting_and_merge() {
        let mut t = Taxonomy::default();
        assert!(t.is_clean());
        t.count(ErrorClass::Reset);
        t.count(ErrorClass::Timeout);
        t.count(ErrorClass::ServerError);
        t.count(ErrorClass::ClientError);
        t.count(ErrorClass::Malformed);
        assert!(!t.is_clean());
        assert_eq!(t.failed_attempts(), 5);
        let mut merged = Taxonomy {
            retries: 2,
            recovered: 1,
            ..Taxonomy::default()
        };
        merged.merge(&t);
        assert_eq!(merged.failed_attempts(), 5);
        assert_eq!(merged.retries, 2);
    }
}

//! `wp-loadgen` binary: run the closed loop against a `wp-server`
//! address and write `BENCH_server.json`.
//!
//! ```text
//! wp-loadgen --addr 127.0.0.1:8080 [--connections 4] [--warmup 1]
//!            [--duration 2] [--seed 42] [--samples 60]
//!            [--timeout 30] [--retries 3] [--requests N]
//!            [--out BENCH_server.json]
//! ```
//!
//! `--requests N` switches to fixed-request mode: each connection
//! issues exactly `N` logical requests instead of running the
//! warmup/measure clock (used by chaos runs).
//!
//! Exits non-zero when any request failed (I/O error or non-2xx) or
//! when the measurement phase completed zero requests, so CI can gate
//! on it directly.

use std::time::Duration;

use wp_loadgen::{default_mix, run_load, LoadConfig};

const USAGE: &str = "usage: wp-loadgen --addr HOST:PORT [--connections N] \
[--warmup SECONDS] [--duration SECONDS] [--seed N] [--samples N] \
[--timeout SECONDS] [--retries N] [--requests N] [--out FILE]";

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("wp-loadgen: {msg}");
            std::process::exit(1);
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut config = LoadConfig::default();
    let mut addr_set = false;
    let mut samples = 60usize;
    let mut out = "BENCH_server.json".to_string();

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return Ok(());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        let parse_f64 = |v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| format!("{flag}: not a non-negative number: {v:?}"))
        };
        match flag.as_str() {
            "--addr" => {
                config.addr = value;
                addr_set = true;
            }
            "--connections" => {
                config.connections = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--connections: not a positive integer: {value:?}"))?;
            }
            "--warmup" => config.warmup = Duration::from_secs_f64(parse_f64(&value)?),
            "--duration" => config.measure = Duration::from_secs_f64(parse_f64(&value)?),
            "--timeout" => config.timeout = Duration::from_secs_f64(parse_f64(&value)?),
            "--retries" => {
                config.retries = value
                    .parse::<u32>()
                    .map_err(|_| format!("--retries: not a non-negative integer: {value:?}"))?;
            }
            "--requests" => {
                config.requests_per_connection = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| format!("--requests: not a positive integer: {value:?}"))?,
                );
            }
            "--seed" => {
                config.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: not an integer: {value:?}"))?;
            }
            "--samples" => {
                samples = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--samples: not a positive integer: {value:?}"))?;
            }
            "--out" => out = value,
            _ => return Err(format!("unknown flag {flag:?}\n{USAGE}")),
        }
    }
    if !addr_set {
        return Err(format!("--addr is required\n{USAGE}"));
    }

    let mix = default_mix(config.seed, samples);
    println!(
        "wp-loadgen: {} connections against http://{} ({}s warmup + {}s measurement)",
        config.connections.max(1),
        config.addr,
        config.warmup.as_secs_f64(),
        config.measure.as_secs_f64()
    );
    let report = run_load(&config, &mix)?;
    let json = report.to_json();
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wp-loadgen: {} requests, {} errors, {:.1} req/s; p50 {:.3} ms, p95 {:.3} ms, \
         p99 {:.3} ms, max {:.3} ms -> {out}",
        report.requests,
        report.errors,
        report.throughput_rps,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.max_ms
    );
    if report.errors > 0 {
        return Err(format!("{} request(s) failed", report.errors));
    }
    if report.requests == 0 {
        return Err("measurement phase completed zero requests".to_string());
    }
    Ok(())
}

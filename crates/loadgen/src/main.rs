//! `wp-loadgen` binary: run the closed loop against a `wp-server`
//! address and write `BENCH_server.json`.
//!
//! ```text
//! wp-loadgen --addr 127.0.0.1:8080 [--connections 4] [--warmup 1]
//!            [--duration 2] [--seed 42] [--samples 60]
//!            [--timeout 30] [--retries 3] [--requests N]
//!            [--out BENCH_server.json] [--metrics-out FILE]
//! wp-loadgen --mode streamer --addr 127.0.0.1:8080 [--rate 40]
//!            [--tenants 2] [--batches 12] [--runs-per-batch 2]
//!            [--shift-after N] [--zoo] [--seed N] [--samples 30]
//!            [--timeout 30] [--out BENCH_stream.json]
//! wp-loadgen --mode step --addr 127.0.0.1:8080 [--steps 32,64,...,1024]
//!            [--warmup 1] [--step-duration 2] [--seed 42] [--samples 30]
//!            [--timeout 30] [--out BENCH_scaling.json]
//! ```
//!
//! `--requests N` switches to fixed-request mode: each connection
//! issues exactly `N` logical requests instead of running the
//! warmup/measure clock (used by chaos runs).
//!
//! `--mode streamer` replays seeded multi-tenant telemetry into
//! `POST /ingest` at the target batch rate and reports sustained ingest
//! throughput, latency percentiles, and the server's drift/eviction
//! counters to `BENCH_stream.json`. `--shift-after N` makes every
//! tenant's stream shape-shift at batch `N` (the scripted drift
//! scenario); without it the streams are stationary and a healthy
//! detector stays silent. `--zoo` replays the scenario zoo instead:
//! each tenant streams one `wp_workloads::zoo` scenario (recurring or
//! shifting transaction mixes), advancing one evolution step per batch.
//!
//! `--mode step` runs the stepped-load scaling ramp: one closed-loop
//! phase per connection count in `--steps`, every response validated
//! byte-for-byte against a prefetched expected answer, and the
//! throughput/latency curve written to `BENCH_scaling.json`. Exits
//! non-zero when any step saw a transport error, a validation mismatch,
//! or zero completed requests.
//!
//! `--metrics-out FILE` additionally scrapes `GET /metrics` after the
//! run (the server must be running with `--obs`), verifies the
//! Prometheus exposition parses and that the request/connection series
//! actually counted this run's traffic, and writes the parsed series to
//! `FILE` as a `"server_obs"` experiment document. The regular report
//! (`--out`) is unchanged by this flag.
//!
//! Exits non-zero when any request failed (I/O error or non-2xx), when
//! the measurement phase completed zero requests, or when the metrics
//! scrape fails validation, so CI can gate on it directly.

use std::time::Duration;

use wp_json::{obj, Json};
use wp_loadgen::{
    default_mix, run_load, run_steps, run_stream, LoadConfig, StepConfig, StreamerConfig,
};

const USAGE: &str = "usage: wp-loadgen --addr HOST:PORT [--connections N] \
[--warmup SECONDS] [--duration SECONDS] [--seed N] [--samples N] \
[--timeout SECONDS] [--retries N] [--requests N] [--out FILE] \
[--metrics-out FILE]\n       wp-loadgen --mode streamer --addr HOST:PORT \
[--rate HZ] [--tenants N] [--batches N] [--runs-per-batch N] \
[--shift-after N] [--zoo] [--seed N] [--samples N] [--timeout SECONDS] [--out FILE]\n       \
wp-loadgen --mode step --addr HOST:PORT [--steps N,N,...] \
[--warmup SECONDS] [--step-duration SECONDS] [--seed N] [--samples N] \
[--timeout SECONDS] [--out FILE]";

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("wp-loadgen: {msg}");
            std::process::exit(1);
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), String> {
    // `--mode` picks the loop; the streamer has its own flag set.
    if let Some(i) = args.iter().position(|a| a == "--mode") {
        let mode = args
            .get(i + 1)
            .ok_or(format!("--mode needs a value\n{USAGE}"))?
            .clone();
        args.drain(i..=i + 1);
        return match mode.as_str() {
            "closed-loop" => run_closed_loop(args),
            "streamer" => run_streamer(args),
            "step" => run_step_mode(args),
            _ => Err(format!("unknown mode {mode:?}\n{USAGE}")),
        };
    }
    run_closed_loop(args)
}

/// The streamer loop: parse its flags, replay telemetry, write the
/// stream report.
fn run_streamer(args: Vec<String>) -> Result<(), String> {
    let mut config = StreamerConfig::default();
    let mut addr_set = false;
    let mut out = "BENCH_stream.json".to_string();

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return Ok(());
        }
        // `--zoo` is a bare switch: no value to consume.
        if flag == "--zoo" {
            config.zoo = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        let parse_pos = |v: &str| -> Result<usize, String> {
            v.parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{flag}: not a positive integer: {v:?}"))
        };
        match flag.as_str() {
            "--addr" => {
                config.addr = value;
                addr_set = true;
            }
            "--rate" => {
                config.rate_hz = value
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .ok_or_else(|| format!("--rate: not a positive number: {value:?}"))?;
            }
            "--tenants" => config.tenants = parse_pos(&value)?,
            "--batches" => config.batches = parse_pos(&value)? as u64,
            "--runs-per-batch" => config.runs_per_batch = parse_pos(&value)?,
            "--samples" => config.samples = parse_pos(&value)?,
            "--shift-after" => {
                config.shift_after = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("--shift-after: not an integer: {value:?}"))?,
                );
            }
            "--seed" => {
                config.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: not an integer: {value:?}"))?;
            }
            "--timeout" => {
                config.timeout = std::time::Duration::from_secs_f64(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .ok_or_else(|| {
                            format!("--timeout: not a non-negative number: {value:?}")
                        })?,
                );
            }
            "--out" => out = value,
            _ => return Err(format!("unknown flag {flag:?}\n{USAGE}")),
        }
    }
    if !addr_set {
        return Err(format!("--addr is required\n{USAGE}"));
    }

    println!(
        "wp-loadgen: streaming {} tenants x {} batches at {} Hz into http://{}/ingest",
        config.tenants, config.batches, config.rate_hz, config.addr
    );
    let report = run_stream(&config)?;
    std::fs::write(&out, format!("{}\n", report.to_json()))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wp-loadgen: {}/{} batches accepted, {:.1} batches/s sustained; p50 {:.3} ms, \
         p95 {:.3} ms, p99 {:.3} ms; {} drift event(s), {} evicted run(s) -> {out}",
        report.batches_accepted,
        report.batches_sent,
        report.ingest_rps,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.drift_events,
        report.evicted_runs
    );
    if report.errors > 0 {
        return Err(format!("{} ingest batch(es) failed", report.errors));
    }
    if report.batches_accepted == 0 {
        return Err("no ingest batch was accepted".to_string());
    }
    Ok(())
}

/// The stepped-load scaling ramp: parse its flags, run the steps, write
/// the curve, and gate on validated-clean results.
fn run_step_mode(args: Vec<String>) -> Result<(), String> {
    let mut config = StepConfig::default();
    let mut addr_set = false;
    let mut out = "BENCH_scaling.json".to_string();

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return Ok(());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        let parse_f64 = |v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| format!("{flag}: not a non-negative number: {v:?}"))
        };
        match flag.as_str() {
            "--addr" => {
                config.addr = value;
                addr_set = true;
            }
            "--steps" => {
                config.steps = value
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| format!("--steps: not a positive integer: {part:?}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if config.steps.is_empty() {
                    return Err("--steps: empty schedule".to_string());
                }
            }
            "--warmup" => config.warmup = Duration::from_secs_f64(parse_f64(&value)?),
            "--step-duration" => config.step_duration = Duration::from_secs_f64(parse_f64(&value)?),
            "--timeout" => config.timeout = Duration::from_secs_f64(parse_f64(&value)?),
            "--seed" => {
                config.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: not an integer: {value:?}"))?;
            }
            "--samples" => {
                config.samples = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--samples: not a positive integer: {value:?}"))?;
            }
            "--out" => out = value,
            _ => return Err(format!("unknown flag {flag:?}\n{USAGE}")),
        }
    }
    if !addr_set {
        return Err(format!("--addr is required\n{USAGE}"));
    }

    println!(
        "wp-loadgen: stepped load {:?} against http://{} ({}s warmup, {}s per step)",
        config.steps,
        config.addr,
        config.warmup.as_secs_f64(),
        config.step_duration.as_secs_f64()
    );
    let report = run_steps(&config)?;
    std::fs::write(&out, format!("{}\n", report.to_json()))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let mut failed = false;
    for step in &report.steps {
        println!(
            "wp-loadgen: step {:>5} conns: {} requests, {} errors, {} validation failures, \
             {:.1} req/s; p50 {:.3} ms, p99 {:.3} ms",
            step.connections,
            step.requests,
            step.errors,
            step.validation_failures,
            step.throughput_rps,
            step.p50_ms,
            step.p99_ms
        );
        failed |= step.errors > 0 || step.validation_failures > 0 || step.requests == 0;
    }
    println!("wp-loadgen: scaling curve -> {out}");
    if failed {
        return Err("a step saw errors, validation failures, or zero requests".to_string());
    }
    Ok(())
}

fn run_closed_loop(args: Vec<String>) -> Result<(), String> {
    let mut config = LoadConfig::default();
    let mut addr_set = false;
    let mut samples = 60usize;
    let mut out = "BENCH_server.json".to_string();
    let mut metrics_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return Ok(());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        let parse_f64 = |v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| format!("{flag}: not a non-negative number: {v:?}"))
        };
        match flag.as_str() {
            "--addr" => {
                config.addr = value;
                addr_set = true;
            }
            "--connections" => {
                config.connections = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--connections: not a positive integer: {value:?}"))?;
            }
            "--warmup" => config.warmup = Duration::from_secs_f64(parse_f64(&value)?),
            "--duration" => config.measure = Duration::from_secs_f64(parse_f64(&value)?),
            "--timeout" => config.timeout = Duration::from_secs_f64(parse_f64(&value)?),
            "--retries" => {
                config.retries = value
                    .parse::<u32>()
                    .map_err(|_| format!("--retries: not a non-negative integer: {value:?}"))?;
            }
            "--requests" => {
                config.requests_per_connection = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| format!("--requests: not a positive integer: {value:?}"))?,
                );
            }
            "--seed" => {
                config.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: not an integer: {value:?}"))?;
            }
            "--samples" => {
                samples = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--samples: not a positive integer: {value:?}"))?;
            }
            "--out" => out = value,
            "--metrics-out" => metrics_out = Some(value),
            _ => return Err(format!("unknown flag {flag:?}\n{USAGE}")),
        }
    }
    if !addr_set {
        return Err(format!("--addr is required\n{USAGE}"));
    }

    let mix = default_mix(config.seed, samples);
    println!(
        "wp-loadgen: {} connections against http://{} ({}s warmup + {}s measurement)",
        config.connections.max(1),
        config.addr,
        config.warmup.as_secs_f64(),
        config.measure.as_secs_f64()
    );
    let report = run_load(&config, &mix)?;
    let json = report.to_json();
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wp-loadgen: {} requests, {} errors, {:.1} req/s; p50 {:.3} ms, p95 {:.3} ms, \
         p99 {:.3} ms, max {:.3} ms -> {out}",
        report.requests,
        report.errors,
        report.throughput_rps,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.max_ms
    );
    if report.errors > 0 {
        return Err(format!("{} request(s) failed", report.errors));
    }
    if report.requests == 0 {
        return Err("measurement phase completed zero requests".to_string());
    }
    if let Some(path) = metrics_out {
        let indexed_body = mix
            .iter()
            .find(|e| e.path == "/similar")
            .map(|e| e.body.replacen('{', "{\"mode\":\"indexed\",\"k\":3,", 1));
        scrape_metrics(
            &config.addr,
            config.timeout,
            report.requests,
            indexed_body.as_deref(),
            &path,
        )?;
    }
    Ok(())
}

/// Scrapes `GET /metrics`, validates the exposition against the run
/// that just finished, and writes the parsed series to `path` as a
/// self-describing experiment document. Fails loudly — a server without
/// `--obs` answers 404, a mis-rendered exposition fails the parse, and
/// a registry that did not see this run's traffic fails the floors.
///
/// The default mix ranks exhaustively, so when an indexed `/similar`
/// body is supplied, one is issued first: the scrape then asserts the
/// pruning-cascade counters moved too.
fn scrape_metrics(
    addr: &str,
    timeout: Duration,
    requests: u64,
    indexed_body: Option<&str>,
    path: &str,
) -> Result<(), String> {
    if let Some(body) = indexed_body {
        let (status, _) = wp_loadgen::fetch(addr, "POST", "/similar", body, timeout)
            .map_err(|class| format!("indexed /similar probe failed: {}", class.label()))?;
        if !(200..300).contains(&status) {
            return Err(format!("indexed /similar probe answered {status}"));
        }
    }
    let (status, body) = wp_loadgen::fetch(addr, "GET", "/metrics", "", timeout)
        .map_err(|class| format!("GET /metrics failed: {}", class.label()))?;
    if status != 200 {
        return Err(format!(
            "GET /metrics answered {status} — is the server running with --obs?"
        ));
    }
    let series = wp_obs::parse_prometheus(&body)?;
    let sum_of = |family: &str| -> f64 {
        series
            .iter()
            .filter(|(name, _)| name == family || name.starts_with(&format!("{family}{{")))
            .map(|(_, v)| v)
            .sum()
    };
    // The scrape itself is one more request, hence strictly-greater.
    let counted = sum_of("wp_server_requests_total");
    if counted < requests as f64 {
        return Err(format!(
            "wp_server_requests_total counted {counted} requests, \
             but this run alone issued {requests}"
        ));
    }
    let mut floors = vec!["wp_server_connections_total", "wp_server_request_count"];
    if indexed_body.is_some() {
        floors.push("wp_index_searches_total");
    }
    for family in floors {
        if sum_of(family) <= 0.0 {
            return Err(format!("metrics series {family} is missing or zero"));
        }
    }

    let doc = obj! {
        "experiment" => "server_obs",
        "addr" => addr,
        "loadgen_requests" => requests as f64,
        "series" => Json::Arr(
            series
                .iter()
                .map(|(name, value)| obj! { "name" => name.clone(), "value" => *value })
                .collect(),
        ),
    };
    std::fs::write(path, format!("{}\n", doc.pretty()))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "wp-loadgen: /metrics scrape ok ({} series, {counted} requests counted) -> {path}",
        series.len()
    );
    Ok(())
}

//! Minimal JSON support with zero dependencies.
//!
//! The workspace exchanges telemetry through a small, fixed JSON schema
//! (see `wp_telemetry::io`); this crate supplies just enough JSON — a
//! value type, a recursive-descent parser with positional errors, and
//! compact/pretty writers — to serve that schema offline, with no
//! registry crates.
//!
//! Object member order is preserved (members are a `Vec`, not a map),
//! so emitted documents are deterministic and diffs stay readable.
//! Numbers are `f64`; non-finite values serialize as `null`, matching
//! the common interchange convention.

use std::fmt;

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a usize, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serializes with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Json::Obj`] with literal syntax:
/// `obj! { "key" => value, "other" => value }`. Values go through
/// `Into<Json>`.
#[macro_export]
macro_rules! obj {
    ( $( $key:expr => $value:expr ),* $(,)? ) => {
        $crate::Json::Obj(vec![ $( ($key.to_string(), $crate::Json::from($value)) ),* ])
    };
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(x) => write_number(out, *x),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
            ('[', ']'),
        ),
        Json::Obj(members) => write_seq(
            out,
            members.iter(),
            members.len(),
            indent,
            depth,
            |out, (key, value), ind, d| {
                write_string(out, key);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, value, ind, d);
            },
            ('{', '}'),
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
    (open, close): (char, char),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (idx, item) in items.enumerate() {
        if idx > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without a fractional part or exponent.
        out.push_str(&format!("{}", x as i64));
    } else {
        // Rust's f64 Display is the shortest round-trip representation.
        out.push_str(&format!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is valid UTF-8 and the run ends on an ASCII
                // boundary, so the slice is valid UTF-8 too.
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: require the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(format!("unpaired surrogate at byte {}", self.pos));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            s.push(ch.ok_or_else(|| {
                                format!("invalid \\u escape at byte {}", self.pos)
                            })?);
                            continue; // hex4 already advanced pos
                        }
                        _ => {
                            return Err(format!("invalid escape at byte {}", self.pos));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("unescaped control byte at {}", self.pos));
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.25", "1e3"] {
            let v = Json::parse(text).unwrap();
            let again = Json::parse(&v.compact()).unwrap();
            assert_eq!(v, again, "{text}");
        }
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn numbers_round_trip_shortest() {
        assert_eq!(Json::Num(1.0).compact(), "1");
        assert_eq!(Json::Num(-0.125).compact(), "-0.125");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        let x = 0.1 + 0.2;
        let back = Json::parse(&Json::Num(x).compact()).unwrap();
        assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quote\" back\\slash tab\t unicode ü 統 \u{1}";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
        assert_eq!(
            Json::parse(r#""ü 😀""#).unwrap(),
            Json::Str("ü 😀".to_string())
        );
    }

    #[test]
    fn objects_preserve_member_order() {
        let v = obj! { "zeta" => 1.0, "alpha" => 2.0, "mid" => "x" };
        assert_eq!(v.compact(), r#"{"zeta":1,"alpha":2,"mid":"x"}"#);
        let parsed = Json::parse(&v.pretty()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.get("alpha").and_then(Json::as_f64), Some(2.0));
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = obj! { "a" => vec![1.0, 2.0], "b" => Json::Obj(vec![]) };
        assert_eq!(
            v.pretty(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}"
        );
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1, 2").unwrap_err().contains("']'"));
        assert!(Json::parse("{\"a\" 1}").unwrap_err().contains("':'"));
        assert!(Json::parse("[1] trailing")
            .unwrap_err()
            .contains("trailing"));
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(4.0).as_usize(), Some(4));
        assert_eq!(Json::Num(4.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Str("4".into()).as_usize(), None);
    }
}

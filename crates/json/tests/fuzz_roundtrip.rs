//! Seeded fuzz tests for the `wp-json` writer/parser pair.
//!
//! Random [`Json`] trees are written and re-parsed, checking the two
//! invariants the interchange format relies on:
//!
//! 1. write → parse → write is a fixed point (`compact` output is
//!    canonical), and
//! 2. parse is a left inverse of *any* valid writer — including an
//!    aggressive ASCII-only writer that `\uXXXX`-escapes every
//!    non-ASCII character, which forces the parser through the
//!    control-character and UTF-16 surrogate-pair paths the normal
//!    writer rarely produces.

use wp_json::Json;
use wp_linalg::Rng64;

/// Characters the string generator draws from: ASCII, escapes, control
/// characters, multi-byte BMP characters, and astral-plane characters
/// (which need surrogate pairs in `\u` notation).
const CHAR_POOL: &[char] = &[
    'a',
    'Z',
    '7',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{0000}',
    '\u{0001}',
    '\u{0008}',
    '\u{000C}',
    '\u{001F}',
    'ü',
    'é',
    '統',
    '計',
    '\u{7FF}',
    '\u{FFFD}',
    '\u{1F600}',
    '\u{10348}',
    '\u{10FFFF}',
];

fn random_string(rng: &mut Rng64) -> String {
    let len = rng.below(12);
    (0..len)
        .map(|_| CHAR_POOL[rng.below(CHAR_POOL.len())])
        .collect()
}

fn random_number(rng: &mut Rng64) -> f64 {
    match rng.below(5) {
        0 => rng.below(2_000_000) as f64 - 1_000_000.0,
        1 => rng.unit(),
        2 => rng.range(-1e18, 1e18),
        3 => rng.range(-1e-12, 1e-12),
        _ => loop {
            // Raw bit patterns cover subnormals and extreme exponents;
            // only finite values are representable in JSON.
            let x = f64::from_bits(rng.next_u64());
            if x.is_finite() {
                break x;
            }
        },
    }
}

fn random_value(rng: &mut Rng64, depth: usize) -> Json {
    // Past the depth budget only leaves are generated.
    let variant = if depth == 0 {
        rng.below(4)
    } else {
        rng.below(6)
    };
    match variant {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 1),
        2 => Json::Num(random_number(rng)),
        3 => Json::Str(random_string(rng)),
        4 => Json::Arr(
            (0..rng.below(5))
                .map(|_| random_value(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.below(5))
                .map(|_| (random_string(rng), random_value(rng, depth - 1)))
                .collect(),
        ),
    }
}

#[test]
fn random_trees_round_trip_through_compact_and_pretty() {
    let mut rng = Rng64::new(0xF022_2026);
    for case in 0..400 {
        let value = random_value(&mut rng, 4);
        let compact = value.compact();
        let parsed = Json::parse(&compact)
            .unwrap_or_else(|e| panic!("case {case}: cannot parse {compact:?}: {e}"));
        assert_eq!(
            parsed, value,
            "case {case}: value changed through {compact:?}"
        );
        assert_eq!(
            parsed.compact(),
            compact,
            "case {case}: compact is not a fixed point"
        );
        let pretty = value.pretty();
        let reparsed = Json::parse(&pretty)
            .unwrap_or_else(|e| panic!("case {case}: cannot parse pretty form: {e}"));
        assert_eq!(
            reparsed, value,
            "case {case}: pretty form changed the value"
        );
    }
}

/// Writes `s` as a JSON string token escaping *every* character outside
/// printable ASCII as `\uXXXX` — astral-plane characters become UTF-16
/// surrogate pairs, exactly the token stream the parser's pairing logic
/// has to reassemble.
fn write_ascii_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (' '..='~').contains(&c) => out.push(c),
            c => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    out.push_str(&format!("\\u{unit:04x}"));
                }
            }
        }
    }
    out.push('"');
}

/// A second, independent writer: semantically equal output to
/// `Json::compact`, but with the ASCII-only string encoding above.
fn write_ascii(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(_) => out.push_str(&v.compact()),
        Json::Str(s) => write_ascii_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_ascii(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_ascii_string(out, k);
                out.push(':');
                write_ascii(out, val);
            }
            out.push('}');
        }
    }
}

#[test]
fn ascii_escaped_form_parses_to_the_same_value() {
    let mut rng = Rng64::new(0x5EED_CAFE);
    for case in 0..400 {
        let value = random_value(&mut rng, 4);
        let mut escaped = String::new();
        write_ascii(&mut escaped, &value);
        assert!(
            escaped.is_ascii(),
            "case {case}: escaper leaked non-ASCII: {escaped:?}"
        );
        let parsed = Json::parse(&escaped)
            .unwrap_or_else(|e| panic!("case {case}: cannot parse {escaped:?}: {e}"));
        assert_eq!(
            parsed, value,
            "case {case}: \\u-escaped form decoded differently: {escaped:?}"
        );
        // And the canonical writer agrees byte-for-byte with what the
        // directly-written tree produces.
        assert_eq!(parsed.compact(), value.compact(), "case {case}");
    }
}

#[test]
fn surrogate_pair_and_control_escapes_decode_exactly() {
    // Hand-picked tokens that pin the parser's `\u` paths: an astral
    // smiley as a surrogate pair, a NUL, and a mixed string.
    let cases = [
        (r#""\ud83d\ude00""#, "\u{1F600}"),
        (r#""\u0000""#, "\u{0000}"),
        (r#""a\u001fb\ud800\udf48c""#, "a\u{001F}b\u{10348}c"),
    ];
    for (text, want) in cases {
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed, Json::Str(want.to_string()), "{text}");
    }
    // Unpaired or malformed surrogates must be rejected, not mangled.
    for bad in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ud83dA""#] {
        assert!(Json::parse(bad).is_err(), "{bad} should not parse");
    }
}

//! Property-based tests for the ML substrate: metric invariants, model
//! sanity on generated data, and cross-validation bookkeeping.

use proptest::prelude::*;
use wp_linalg::Matrix;
use wp_ml::metrics::{accuracy, mae, mape, mse, nrmse, r2, rmse};
use wp_ml::traits::Regressor;

proptest! {
    #[test]
    fn rmse_zero_iff_equal(y in proptest::collection::vec(-100.0..100.0f64, 1..30)) {
        prop_assert!(rmse(&y, &y).abs() < 1e-12);
        prop_assert!(mae(&y, &y).abs() < 1e-12);
        prop_assert!(mape(&y, &y).abs() < 1e-12);
    }

    #[test]
    fn rmse_dominates_mae(
        pairs in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..30),
    ) {
        let t: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let p: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        // RMSE ≥ MAE always (Jensen)
        prop_assert!(rmse(&t, &p) >= mae(&t, &p) - 1e-9);
    }

    #[test]
    fn mse_is_rmse_squared(
        pairs in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..30),
    ) {
        let t: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let p: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assert!((mse(&t, &p) - rmse(&t, &p).powi(2)).abs() < 1e-6);
    }

    #[test]
    fn r2_at_most_one(
        pairs in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 2..30),
    ) {
        let t: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let p: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assert!(r2(&t, &p) <= 1.0 + 1e-12);
    }

    #[test]
    fn accuracy_bounded(
        labels in proptest::collection::vec(0usize..4, 1..30),
        preds in proptest::collection::vec(0usize..4, 1..30),
    ) {
        let n = labels.len().min(preds.len());
        let a = accuracy(&labels[..n], &preds[..n]);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn nrmse_scale_invariant(
        pairs in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 3..30),
        scale in 0.1..50.0f64,
    ) {
        let t: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        prop_assume!(wp_linalg::max(&t) - wp_linalg::min(&t) > 1e-6);
        let p: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let ts: Vec<f64> = t.iter().map(|v| v * scale).collect();
        let ps: Vec<f64> = p.iter().map(|v| v * scale).collect();
        prop_assert!((nrmse(&t, &p) - nrmse(&ts, &ps)).abs() < 1e-6);
    }

    #[test]
    fn ols_interpolates_noiseless_lines(
        slope in -10.0..10.0f64,
        intercept in -10.0..10.0f64,
        xs in proptest::collection::vec(-50.0..50.0f64, 3..25),
    ) {
        // need at least two distinct x values for identifiability
        let distinct = {
            let mut v: Vec<i64> = xs.iter().map(|x| (x * 1e6) as i64).collect();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        prop_assume!(distinct >= 2);
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|&v| slope * v + intercept).collect();
        let mut m = wp_ml::linreg::LinearRegression::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        prop_assert!(rmse(&y, &pred) < 1e-4, "rmse {}", rmse(&y, &pred));
    }

    #[test]
    fn tree_never_extrapolates_beyond_target_range(
        xs in proptest::collection::vec(-50.0..50.0f64, 4..25),
    ) {
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|&v| v * v).collect();
        let mut m = wp_ml::tree::DecisionTreeRegressor::new();
        m.fit(&x, &y);
        let probe = Matrix::from_rows(&[vec![-1000.0], vec![1000.0]]);
        let lo = wp_linalg::min(&y);
        let hi = wp_linalg::max(&y);
        for p in m.predict(&probe) {
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "tree prediction {p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn kfold_always_partitions(n in 4usize..60, k in 2usize..5, seed in 0u64..100) {
        prop_assume!(n >= k);
        let folds = wp_ml::cv::KFold::new(k, seed).split(n);
        let mut seen = vec![0usize; n];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), n);
            for &i in test {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn lasso_coefficients_shrink_with_alpha(
        xs in proptest::collection::vec(-5.0..5.0f64, 12..30),
    ) {
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|&v| 3.0 * v).collect();
        prop_assume!(wp_linalg::stats::stddev(&xs) > 0.1);
        let norm_at = |alpha: f64| {
            let mut m = wp_ml::lasso::Lasso::new(alpha);
            m.fit(&x, &y);
            m.coefficients().iter().map(|c| c.abs()).sum::<f64>()
        };
        prop_assert!(norm_at(1.0) <= norm_at(0.01) + 1e-9);
    }

    #[test]
    fn mutual_information_nonnegative(
        vals in proptest::collection::vec(0.0..10.0f64, 4..40),
    ) {
        let labels: Vec<usize> = (0..vals.len()).map(|i| i % 2).collect();
        let mi = wp_ml::info::mutual_information(&vals, &labels, 5);
        prop_assert!(mi >= 0.0);
    }

    #[test]
    fn f_statistic_nonnegative(
        vals in proptest::collection::vec(-10.0..10.0f64, 4..40),
    ) {
        let labels: Vec<usize> = (0..vals.len()).map(|i| i % 3).collect();
        prop_assert!(wp_ml::info::f_statistic(&vals, &labels) >= 0.0);
    }
}

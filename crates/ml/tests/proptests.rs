//! Randomized property tests for the ML substrate: metric invariants,
//! model sanity on generated data, and cross-validation bookkeeping.
//! Seeded [`Rng64`] case loops replace the former external
//! property-testing dependency.

use wp_linalg::{Matrix, Rng64};
use wp_ml::metrics::{accuracy, mae, mape, mse, nrmse, r2, rmse};
use wp_ml::traits::Regressor;

const CASES: usize = 48;

fn vector(rng: &mut Rng64, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.range(lo, hi)).collect()
}

#[test]
fn rmse_zero_iff_equal() {
    let mut rng = Rng64::new(0x41);
    for _ in 0..CASES {
        let n = 1 + rng.below(29);
        let y = vector(&mut rng, n, -100.0, 100.0);
        assert!(rmse(&y, &y).abs() < 1e-12);
        assert!(mae(&y, &y).abs() < 1e-12);
        assert!(mape(&y, &y).abs() < 1e-12);
    }
}

#[test]
fn rmse_dominates_mae() {
    let mut rng = Rng64::new(0x42);
    for _ in 0..CASES {
        let n = 1 + rng.below(29);
        let t = vector(&mut rng, n, -100.0, 100.0);
        let p = vector(&mut rng, n, -100.0, 100.0);
        // RMSE ≥ MAE always (Jensen)
        assert!(rmse(&t, &p) >= mae(&t, &p) - 1e-9);
    }
}

#[test]
fn mse_is_rmse_squared() {
    let mut rng = Rng64::new(0x43);
    for _ in 0..CASES {
        let n = 1 + rng.below(29);
        let t = vector(&mut rng, n, -100.0, 100.0);
        let p = vector(&mut rng, n, -100.0, 100.0);
        assert!((mse(&t, &p) - rmse(&t, &p).powi(2)).abs() < 1e-6);
    }
}

#[test]
fn r2_at_most_one() {
    let mut rng = Rng64::new(0x44);
    for _ in 0..CASES {
        let n = 2 + rng.below(28);
        let t = vector(&mut rng, n, -100.0, 100.0);
        let p = vector(&mut rng, n, -100.0, 100.0);
        assert!(r2(&t, &p) <= 1.0 + 1e-12);
    }
}

#[test]
fn accuracy_bounded() {
    let mut rng = Rng64::new(0x45);
    for _ in 0..CASES {
        let n = 1 + rng.below(29);
        let labels: Vec<usize> = (0..n).map(|_| rng.below(4)).collect();
        let preds: Vec<usize> = (0..n).map(|_| rng.below(4)).collect();
        let a = accuracy(&labels, &preds);
        assert!((0.0..=1.0).contains(&a));
    }
}

#[test]
fn nrmse_scale_invariant() {
    let mut rng = Rng64::new(0x46);
    for _ in 0..CASES {
        let n = 3 + rng.below(27);
        let t = vector(&mut rng, n, 0.0, 100.0);
        if wp_linalg::max(&t) - wp_linalg::min(&t) <= 1e-6 {
            continue;
        }
        let p = vector(&mut rng, n, 0.0, 100.0);
        let scale = rng.range(0.1, 50.0);
        let ts: Vec<f64> = t.iter().map(|v| v * scale).collect();
        let ps: Vec<f64> = p.iter().map(|v| v * scale).collect();
        assert!((nrmse(&t, &p) - nrmse(&ts, &ps)).abs() < 1e-6);
    }
}

#[test]
fn ols_interpolates_noiseless_lines() {
    let mut rng = Rng64::new(0x47);
    for _ in 0..CASES {
        let slope = rng.range(-10.0, 10.0);
        let intercept = rng.range(-10.0, 10.0);
        let len = 3 + rng.below(22);
        let xs = vector(&mut rng, len, -50.0, 50.0);
        // need at least two distinct x values for identifiability
        let distinct = {
            let mut v: Vec<i64> = xs.iter().map(|x| (x * 1e6) as i64).collect();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        if distinct < 2 {
            continue;
        }
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|&v| slope * v + intercept).collect();
        let mut m = wp_ml::linreg::LinearRegression::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&y, &pred) < 1e-4, "rmse {}", rmse(&y, &pred));
    }
}

#[test]
fn tree_never_extrapolates_beyond_target_range() {
    let mut rng = Rng64::new(0x48);
    for _ in 0..CASES {
        let len = 4 + rng.below(21);
        let xs = vector(&mut rng, len, -50.0, 50.0);
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|&v| v * v).collect();
        let mut m = wp_ml::tree::DecisionTreeRegressor::new();
        m.fit(&x, &y);
        let probe = Matrix::from_rows(&[vec![-1000.0], vec![1000.0]]);
        let lo = wp_linalg::min(&y);
        let hi = wp_linalg::max(&y);
        for p in m.predict(&probe) {
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "tree prediction {p} outside [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn kfold_always_partitions() {
    let mut rng = Rng64::new(0x49);
    for _ in 0..CASES {
        let n = 4 + rng.below(56);
        let k = 2 + rng.below(3);
        if n < k {
            continue;
        }
        let seed = rng.next_u64() % 100;
        let folds = wp_ml::cv::KFold::new(k, seed).split(n);
        let mut seen = vec![0usize; n];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), n);
            for &i in test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }
}

#[test]
fn lasso_coefficients_shrink_with_alpha() {
    let mut rng = Rng64::new(0x4A);
    for _ in 0..CASES {
        let len = 12 + rng.below(18);
        let xs = vector(&mut rng, len, -5.0, 5.0);
        if wp_linalg::stats::stddev(&xs) <= 0.1 {
            continue;
        }
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|&v| 3.0 * v).collect();
        let norm_at = |alpha: f64| {
            let mut m = wp_ml::lasso::Lasso::new(alpha);
            m.fit(&x, &y);
            m.coefficients().iter().map(|c| c.abs()).sum::<f64>()
        };
        assert!(norm_at(1.0) <= norm_at(0.01) + 1e-9);
    }
}

#[test]
fn mutual_information_nonnegative() {
    let mut rng = Rng64::new(0x4B);
    for _ in 0..CASES {
        let len = 4 + rng.below(36);
        let vals = vector(&mut rng, len, 0.0, 10.0);
        let labels: Vec<usize> = (0..vals.len()).map(|i| i % 2).collect();
        let mi = wp_ml::info::mutual_information(&vals, &labels, 5);
        assert!(mi >= 0.0);
    }
}

#[test]
fn f_statistic_nonnegative() {
    let mut rng = Rng64::new(0x4C);
    for _ in 0..CASES {
        let len = 4 + rng.below(36);
        let vals = vector(&mut rng, len, -10.0, 10.0);
        let labels: Vec<usize> = (0..vals.len()).map(|i| i % 3).collect();
        assert!(wp_ml::info::f_statistic(&vals, &labels) >= 0.0);
    }
}

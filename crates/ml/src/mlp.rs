//! Multi-layer perceptron regressor.
//!
//! Mirrors the paper's NNet strategy: a scikit-learn style MLP regressor
//! (§6.1.2 uses a 6-layer MLP) trained with Adam on mini-batches of the
//! full dataset (the scaling datasets are tiny). The paper's own finding —
//! that the MLP is the *worst* Table 6 strategy on these small datasets —
//! is reproduced precisely because the model family is too flexible for 30
//! observations, so faithful behaviour matters more than accuracy here.

use wp_linalg::{Matrix, Rng64, StandardScaler};

use crate::traits::{check_fit_inputs, Regressor};

/// Activation applied to every hidden layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    pub(crate) fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => wp_linalg::ops::sigmoid(x),
        }
    }

    /// Derivative expressed in terms of the activation *output* `a`.
    pub(crate) fn derivative_from_output(&self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
        }
    }
}

/// MLP hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths; the paper's setup uses six hidden layers.
    pub hidden_layers: Vec<usize>,
    /// Hidden-layer activation.
    pub activation: Activation,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 weight decay.
    pub l2: f64,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Standardize the target before training (and invert afterwards).
    ///
    /// scikit-learn's `MLPRegressor` — the paper's NNet — does *not*
    /// scale targets, which is a large part of why it fails on raw
    /// throughput values (Table 6); set this to `false` to reproduce that
    /// behaviour.
    pub standardize_target: bool,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden_layers: vec![32, 32, 16, 16, 8, 8],
            activation: Activation::Relu,
            learning_rate: 1e-3,
            epochs: 300,
            l2: 1e-4,
            seed: 0,
            standardize_target: true,
        }
    }
}

/// One dense layer with Adam state. Shared with the autoencoder, which
/// stacks the same layers into a symmetric encoder/decoder.
#[derive(Debug, Clone)]
pub(crate) struct Layer {
    /// `out × in` weight matrix.
    pub(crate) w: Matrix,
    pub(crate) b: Vec<f64>,
    // Adam moments
    pub(crate) mw: Matrix,
    pub(crate) vw: Matrix,
    pub(crate) mb: Vec<f64>,
    pub(crate) vb: Vec<f64>,
}

impl Layer {
    pub(crate) fn new(n_in: usize, n_out: usize, rng: &mut Rng64) -> Self {
        // He-style initialization
        let scale = (2.0 / n_in as f64).sqrt();
        let mut w = Matrix::zeros(n_out, n_in);
        for r in 0..n_out {
            for c in 0..n_in {
                w[(r, c)] = rng.range(-scale, scale);
            }
        }
        Self {
            mw: Matrix::zeros(n_out, n_in),
            vw: Matrix::zeros(n_out, n_in),
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
            b: vec![0.0; n_out],
            w,
        }
    }

    pub(crate) fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut out = self.b.clone();
        for (r, o) in out.iter_mut().enumerate() {
            *o += wp_linalg::ops::dot(self.w.row(r), input);
        }
        out
    }
}

/// Multi-layer perceptron regressor trained with Adam.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    /// Hyper-parameters.
    pub config: MlpConfig,
    layers: Vec<Layer>,
    scaler: Option<StandardScaler>,
    y_offset: f64,
    y_scale: f64,
    adam_t: usize,
}

impl Default for MlpRegressor {
    fn default() -> Self {
        Self::new(MlpConfig::default())
    }
}

impl MlpRegressor {
    /// Creates an unfitted MLP with the given settings.
    pub fn new(config: MlpConfig) -> Self {
        assert!(
            !config.hidden_layers.is_empty(),
            "MLP needs at least one hidden layer"
        );
        assert!(
            config.hidden_layers.iter().all(|&w| w > 0),
            "hidden layer widths must be positive"
        );
        Self {
            config,
            layers: Vec::new(),
            scaler: None,
            y_offset: 0.0,
            y_scale: 1.0,
            adam_t: 0,
        }
    }

    /// Forward pass returning activations of every layer (input included).
    fn forward_all(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = vec![input.to_vec()];
        let n_layers = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(acts.last().unwrap());
            if li + 1 < n_layers {
                for v in &mut z {
                    *v = self.config.activation.apply(*v);
                }
            }
            acts.push(z);
        }
        acts
    }

    fn adam_step(t: usize, lr: f64, grad: f64, m: &mut f64, v: &mut f64, param: &mut f64) {
        adam_step(t, lr, grad, m, v, param)
    }
}

/// One Adam update for a single parameter with bias-corrected moments.
pub(crate) fn adam_step(t: usize, lr: f64, grad: f64, m: &mut f64, v: &mut f64, param: &mut f64) {
    const B1: f64 = 0.9;
    const B2: f64 = 0.999;
    const EPS: f64 = 1e-8;
    *m = B1 * *m + (1.0 - B1) * grad;
    *v = B2 * *v + (1.0 - B2) * grad * grad;
    let mh = *m / (1.0 - B1.powi(t as i32));
    let vh = *v / (1.0 - B2.powi(t as i32));
    *param -= lr * mh / (vh.sqrt() + EPS);
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        let (scaler, xs) = StandardScaler::fit_transform(x);
        if self.config.standardize_target {
            self.y_offset = wp_linalg::stats::mean(y);
            let sd = wp_linalg::stats::stddev(y);
            self.y_scale = if sd > 0.0 { sd } else { 1.0 };
        } else {
            self.y_offset = 0.0;
            self.y_scale = 1.0;
        }
        let yn: Vec<f64> = y
            .iter()
            .map(|v| (v - self.y_offset) / self.y_scale)
            .collect();

        let mut rng = Rng64::new(self.config.seed);
        let mut sizes = vec![x.cols()];
        sizes.extend(&self.config.hidden_layers);
        sizes.push(1);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        self.adam_t = 0;

        let n = xs.rows() as f64;
        for _ in 0..self.config.epochs {
            self.adam_t += 1;
            // Accumulate full-batch gradients.
            let mut gw: Vec<Matrix> = self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect();
            let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

            for (r, target) in yn.iter().enumerate() {
                let acts = self.forward_all(xs.row(r));
                let output = acts.last().unwrap()[0];
                // dL/d output for squared loss (halved)
                let mut delta = vec![output - target];
                for li in (0..self.layers.len()).rev() {
                    let input_act = &acts[li];
                    // accumulate gradients for this layer
                    for (o, &d) in delta.iter().enumerate() {
                        gb[li][o] += d;
                        for (c, &a) in input_act.iter().enumerate() {
                            gw[li][(o, c)] += d * a;
                        }
                    }
                    if li == 0 {
                        break;
                    }
                    // propagate delta to the previous layer's activations
                    let mut new_delta = vec![0.0; self.layers[li].w.cols()];
                    for (o, &d) in delta.iter().enumerate() {
                        let wrow = self.layers[li].w.row(o);
                        for (c, nd) in new_delta.iter_mut().enumerate() {
                            *nd += d * wrow[c];
                        }
                    }
                    for (c, nd) in new_delta.iter_mut().enumerate() {
                        *nd *= self.config.activation.derivative_from_output(acts[li][c]);
                    }
                    delta = new_delta;
                }
            }

            // Adam update with weight decay.
            let t = self.adam_t;
            let lr = self.config.learning_rate;
            let l2 = self.config.l2;
            for (li, layer) in self.layers.iter_mut().enumerate() {
                for rr in 0..layer.w.rows() {
                    for cc in 0..layer.w.cols() {
                        let g = gw[li][(rr, cc)] / n + l2 * layer.w[(rr, cc)];
                        let (mut m, mut v, mut p) =
                            (layer.mw[(rr, cc)], layer.vw[(rr, cc)], layer.w[(rr, cc)]);
                        Self::adam_step(t, lr, g, &mut m, &mut v, &mut p);
                        layer.mw[(rr, cc)] = m;
                        layer.vw[(rr, cc)] = v;
                        layer.w[(rr, cc)] = p;
                    }
                }
                for (o, &g_raw) in gb[li].iter().enumerate() {
                    let g = g_raw / n;
                    let (mut m, mut v, mut p) = (layer.mb[o], layer.vb[o], layer.b[o]);
                    Self::adam_step(t, lr, g, &mut m, &mut v, &mut p);
                    layer.mb[o] = m;
                    layer.vb[o] = v;
                    layer.b[o] = p;
                }
            }
        }
        self.scaler = Some(scaler);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("predict called before fit");
        let xs = scaler.transform(x);
        xs.iter_rows()
            .map(|row| {
                let acts = self.forward_all(row);
                acts.last().unwrap()[0] * self.y_scale + self.y_offset
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    #[test]
    fn learns_linear_function() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..40).map(|i| 2.0 * (i as f64 / 10.0) + 1.0).collect();
        let mut m = MlpRegressor::new(MlpConfig {
            hidden_layers: vec![16, 16],
            epochs: 800,
            learning_rate: 5e-3,
            ..MlpConfig::default()
        });
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let range = 8.0;
        assert!(rmse(&y, &pred) / range < 0.1, "rmse {}", rmse(&y, &pred));
    }

    #[test]
    fn learns_nonlinear_function() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..60).map(|i| ((i as f64) / 10.0).powi(2)).collect();
        let mut m = MlpRegressor::new(MlpConfig {
            hidden_layers: vec![32, 32],
            epochs: 1500,
            learning_rate: 5e-3,
            ..MlpConfig::default()
        });
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let baseline = rmse(&y, &vec![wp_linalg::stats::mean(&y); y.len()]);
        assert!(rmse(&y, &pred) < baseline * 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let cfg = MlpConfig {
            hidden_layers: vec![8],
            epochs: 50,
            ..MlpConfig::default()
        };
        let mut a = MlpRegressor::new(cfg.clone());
        a.fit(&x, &y);
        let mut b = MlpRegressor::new(cfg);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn six_layer_default_matches_paper_setup() {
        assert_eq!(MlpConfig::default().hidden_layers.len(), 6);
    }

    #[test]
    fn predictions_finite_on_tiny_dataset() {
        // Table 6 trains on ~24 points; the net must not blow up.
        let x = Matrix::from_rows(&[vec![2.0], vec![4.0], vec![8.0], vec![16.0]]);
        let y = vec![100.0, 180.0, 300.0, 420.0];
        let mut m = MlpRegressor::default();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(pred.iter().all(|p| p.is_finite()), "{pred:?}");
    }

    #[test]
    #[should_panic(expected = "at least one hidden layer")]
    fn empty_hidden_layers_rejected() {
        let _ = MlpRegressor::new(MlpConfig {
            hidden_layers: vec![],
            ..MlpConfig::default()
        });
    }
}

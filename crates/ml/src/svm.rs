//! ε-insensitive support vector regression (SVR).
//!
//! Solves the SVR dual by exact cyclic coordinate descent over the
//! difference variables `β_i = α_i − α_i*`:
//!
//! ```text
//! min_β  1/2 βᵀ K' β − yᵀ β + ε‖β‖₁    s.t.  β_i ∈ [−C, C]
//! ```
//!
//! where `K' = K + 1` augments the kernel with a constant component. The
//! augmented kernel absorbs the bias term (bias-regularized SVR), which
//! removes the `Σβ = 0` equality constraint and makes every coordinate
//! sub-problem exactly solvable with one soft-threshold — the same
//! simplification used by LIBLINEAR-style solvers. Each coordinate update
//! is the global minimizer of the 1-D piecewise quadratic, so the sweep is
//! a monotone descent method.
//!
//! Inputs are standardized internally; the default RBF `gamma = 1/p`
//! matches scikit-learn's `"scale"` heuristic on standardized data.

use wp_linalg::ops::soft_threshold;
use wp_linalg::{Matrix, StandardScaler};

use crate::traits::{check_fit_inputs, Regressor};

/// Kernel functions available to the SVR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `k(a, b) = a·b`.
    Linear,
    /// `k(a, b) = exp(−γ‖a−b‖²)`; `gamma = None` resolves to `1/p` at fit.
    Rbf {
        /// Bandwidth; `None` = `1 / n_features`.
        gamma: Option<f64>,
    },
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64], resolved_gamma: f64) -> f64 {
        match self {
            Kernel::Linear => wp_linalg::ops::dot(a, b),
            Kernel::Rbf { .. } => (-resolved_gamma * wp_linalg::ops::sq_dist(a, b)).exp(),
        }
    }

    fn resolve_gamma(&self, n_features: usize) -> f64 {
        match self {
            Kernel::Linear => 0.0,
            Kernel::Rbf { gamma } => gamma.unwrap_or(1.0 / n_features.max(1) as f64),
        }
    }
}

/// SVR hyper-parameters.
#[derive(Debug, Clone)]
pub struct SvrConfig {
    /// Box constraint (regularization trade-off).
    pub c: f64,
    /// Half-width of the ε-insensitive tube.
    pub epsilon: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence threshold on the largest coordinate update.
    pub tol: f64,
}

impl Default for SvrConfig {
    fn default() -> Self {
        Self {
            c: 10.0,
            epsilon: 0.01,
            kernel: Kernel::Rbf { gamma: None },
            max_iter: 500,
            tol: 1e-6,
        }
    }
}

/// ε-SVR with a bias-regularized dual solved by coordinate descent.
#[derive(Debug, Clone)]
pub struct SupportVectorRegressor {
    /// Hyper-parameters.
    pub config: SvrConfig,
    beta: Vec<f64>,
    train_x: Option<Matrix>,
    scaler: Option<StandardScaler>,
    y_scale: f64,
    y_offset: f64,
    gamma: f64,
}

impl Default for SupportVectorRegressor {
    fn default() -> Self {
        Self::new(SvrConfig::default())
    }
}

impl SupportVectorRegressor {
    /// Creates an unfitted SVR with the given hyper-parameters.
    pub fn new(config: SvrConfig) -> Self {
        assert!(config.c > 0.0, "C must be positive");
        assert!(config.epsilon >= 0.0, "epsilon must be non-negative");
        Self {
            config,
            beta: Vec::new(),
            train_x: None,
            scaler: None,
            y_scale: 1.0,
            y_offset: 0.0,
            gamma: 0.0,
        }
    }

    /// Convenience: RBF SVR with default settings.
    pub fn rbf() -> Self {
        Self::default()
    }

    /// Convenience: linear SVR with default settings.
    pub fn linear() -> Self {
        Self::new(SvrConfig {
            kernel: Kernel::Linear,
            ..SvrConfig::default()
        })
    }

    /// Number of support vectors (non-zero dual coefficients).
    pub fn n_support_vectors(&self) -> usize {
        self.beta.iter().filter(|b| **b != 0.0).count()
    }
}

impl Regressor for SupportVectorRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        let (scaler, xs) = StandardScaler::fit_transform(x);
        self.gamma = self.config.kernel.resolve_gamma(x.cols());

        // Standardize the target too: C and epsilon are then scale-free.
        self.y_offset = wp_linalg::stats::mean(y);
        let sd = wp_linalg::stats::stddev(y);
        self.y_scale = if sd > 0.0 { sd } else { 1.0 };
        let yn: Vec<f64> = y
            .iter()
            .map(|v| (v - self.y_offset) / self.y_scale)
            .collect();

        let n = xs.rows();
        // Augmented Gram matrix K' = K + 1.
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.config.kernel.eval(xs.row(i), xs.row(j), self.gamma) + 1.0;
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }

        let mut beta = vec![0.0; n];
        // f = K' beta, maintained incrementally.
        let mut f = vec![0.0; n];
        for _ in 0..self.config.max_iter {
            let mut max_delta = 0.0_f64;
            for i in 0..n {
                let kii = k[(i, i)];
                if kii <= 0.0 {
                    continue;
                }
                // gradient of the smooth part with beta_i removed
                let g = f[i] - kii * beta[i] - yn[i];
                let new = (soft_threshold(-g, self.config.epsilon) / kii)
                    .clamp(-self.config.c, self.config.c);
                let delta = new - beta[i];
                if delta != 0.0 {
                    for (fj, krow) in f.iter_mut().zip(k.col(i)) {
                        *fj += delta * krow;
                    }
                    beta[i] = new;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.config.tol {
                break;
            }
        }

        self.beta = beta;
        self.train_x = Some(xs);
        self.scaler = Some(scaler);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let train = self.train_x.as_ref().expect("predict called before fit");
        let scaler = self.scaler.as_ref().unwrap();
        let xs = scaler.transform(x);
        xs.iter_rows()
            .map(|row| {
                let fx: f64 = train
                    .iter_rows()
                    .zip(&self.beta)
                    .filter(|(_, b)| **b != 0.0)
                    .map(|(sv, b)| b * (self.config.kernel.eval(sv, row, self.gamma) + 1.0))
                    .sum();
                fx * self.y_scale + self.y_offset
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use wp_linalg::Rng64;

    #[test]
    fn linear_svr_fits_line() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]]);
        let y = vec![3.0, 5.0, 7.0, 9.0, 11.0];
        let mut m = SupportVectorRegressor::linear();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&y, &pred) < 0.2, "{pred:?}");
    }

    #[test]
    fn rbf_svr_fits_nonlinear_curve() {
        let mut rng = Rng64::new(1);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let t = i as f64 / 100.0 * 4.0;
            rows.push(vec![t]);
            y.push((t * 2.0).sin() + rng.range(-0.02, 0.02));
        }
        let x = Matrix::from_rows(&rows);
        let mut m = SupportVectorRegressor::rbf();
        m.fit(&x, &y);
        assert!(rmse(&y, &m.predict(&x)) < 0.15);
    }

    #[test]
    fn epsilon_tube_induces_sparsity() {
        let x = Matrix::from_rows(&(0..50).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let mut wide = SupportVectorRegressor::new(SvrConfig {
            epsilon: 0.5,
            kernel: Kernel::Linear,
            ..SvrConfig::default()
        });
        wide.fit(&x, &y);
        let mut narrow = SupportVectorRegressor::new(SvrConfig {
            epsilon: 0.0001,
            kernel: Kernel::Linear,
            ..SvrConfig::default()
        });
        narrow.fit(&x, &y);
        assert!(
            wide.n_support_vectors() <= narrow.n_support_vectors(),
            "wide: {}, narrow: {}",
            wide.n_support_vectors(),
            narrow.n_support_vectors()
        );
    }

    #[test]
    fn extrapolation_from_two_point_pair_is_finite() {
        // Pairwise scaling models fit on very few samples; SVR must stay
        // sane there.
        let x = Matrix::from_rows(&[vec![2.0], vec![8.0], vec![2.0], vec![8.0]]);
        let y = vec![100.0, 350.0, 110.0, 340.0];
        let mut m = SupportVectorRegressor::rbf();
        m.fit(&x, &y);
        let p = m.predict(&Matrix::from_rows(&[vec![8.0]]));
        assert!(p[0].is_finite());
        assert!(p[0] > 200.0 && p[0] < 500.0, "{p:?}");
    }

    #[test]
    fn deterministic_fit() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![1.0, 4.0, 9.0];
        let mut a = SupportVectorRegressor::rbf();
        a.fit(&x, &y);
        let mut b = SupportVectorRegressor::rbf();
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn invalid_c_rejected() {
        let _ = SupportVectorRegressor::new(SvrConfig {
            c: 0.0,
            ..SvrConfig::default()
        });
    }
}

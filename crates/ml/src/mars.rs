//! Multivariate Adaptive Regression Splines (Friedman 1991).
//!
//! Forward pass: greedily add mirrored hinge pairs
//! `max(0, x_j − t)` / `max(0, t − x_j)` that most reduce the residual sum
//! of squares. Backward pass: prune terms by generalized cross-validation
//! (GCV). The result is the piecewise-linear fit the paper uses as its
//! "MARS" scaling strategy (§6.1.2).

use wp_linalg::{lstsq, Matrix};

use crate::traits::{check_fit_inputs, Regressor};

/// One hinge basis function `max(0, s·(x_j − t))` with `s = ±1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hinge {
    /// Feature index.
    pub feature: usize,
    /// Knot location.
    pub knot: f64,
    /// `true` for `max(0, x − t)`, `false` for `max(0, t − x)`.
    pub positive: bool,
}

impl Hinge {
    fn eval(&self, row: &[f64]) -> f64 {
        let d = row[self.feature] - self.knot;
        if self.positive {
            d.max(0.0)
        } else {
            (-d).max(0.0)
        }
    }
}

/// MARS hyper-parameters.
#[derive(Debug, Clone)]
pub struct MarsConfig {
    /// Maximum number of hinge terms added in the forward pass
    /// (the intercept is not counted).
    pub max_terms: usize,
    /// GCV penalty per knot (Friedman recommends 2–4).
    pub penalty: f64,
}

impl Default for MarsConfig {
    fn default() -> Self {
        Self {
            max_terms: 20,
            penalty: 3.0,
        }
    }
}

/// MARS regressor.
///
/// This implementation uses the "MARS with linear terms" variant: the base
/// model always contains the intercept plus one untransformed linear term
/// per feature, and the forward pass adds hinge pairs on top. The linear
/// base keeps tiny datasets (the paper's pairwise scaling models train on
/// as few as six points) from degenerating to an intercept-only fit when
/// GCV prunes every knot.
#[derive(Debug, Clone, Default)]
pub struct Mars {
    /// Hyper-parameters.
    pub config: MarsConfig,
    /// Selected hinge terms after pruning.
    pub terms: Vec<Hinge>,
    /// Coefficients: `[intercept, p linear terms…, one per hinge term…]`.
    pub coefficients: Vec<f64>,
    n_features: usize,
}

/// Design matrix: intercept | linear terms | hinge terms.
fn design(x: &Matrix, terms: &[Hinge]) -> Matrix {
    let p = x.cols();
    let mut d = Matrix::zeros(x.rows(), 1 + p + terms.len());
    for (r, row) in x.iter_rows().enumerate() {
        d[(r, 0)] = 1.0;
        for (j, &v) in row.iter().enumerate() {
            d[(r, 1 + j)] = v;
        }
        for (c, h) in terms.iter().enumerate() {
            d[(r, 1 + p + c)] = h.eval(row);
        }
    }
    d
}

fn rss(d: &Matrix, y: &[f64]) -> (Vec<f64>, f64) {
    let beta = lstsq(d, y, 1e-9);
    let pred = d.matvec(&beta);
    let rss: f64 = y.iter().zip(&pred).map(|(t, p)| (t - p) * (t - p)).sum();
    (beta, rss)
}

/// GCV criterion: `RSS / n / (1 − C(M)/n)²`. The effective parameter count
/// charges each hinge term `1 + penalty` but leaves the always-present
/// linear base (intercept + p linear terms) at cost 1 each, so pruning
/// ranks *knots* rather than the base model.
fn gcv(rss: f64, n: usize, base_terms: usize, n_terms: usize, penalty: f64) -> f64 {
    let c = (base_terms + n_terms) as f64 + penalty * n_terms as f64;
    let denom = 1.0 - c / n as f64;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        rss / n as f64 / (denom * denom)
    }
}

impl Mars {
    /// Creates an unfitted model with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted model with the given settings.
    pub fn with_config(config: MarsConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }
}

impl Regressor for Mars {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        let n = x.rows();
        let base_terms = 1 + x.cols();
        self.n_features = x.cols();

        // ---- forward pass ----
        let mut terms: Vec<Hinge> = Vec::new();
        let mut best_rss = {
            let d = design(x, &terms);
            rss(&d, y).1
        };
        // Candidate knots: distinct observed values per feature.
        let mut knots: Vec<Vec<f64>> = Vec::with_capacity(x.cols());
        for j in 0..x.cols() {
            let mut vals = x.col(j);
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            vals.dedup();
            knots.push(vals);
        }

        while terms.len() + 2 <= self.config.max_terms {
            let mut best_pair: Option<(Hinge, Hinge, f64)> = None;
            for (j, feature_knots) in knots.iter().enumerate() {
                // interior knots only: a hinge at the boundary is constant
                for &t in feature_knots
                    .iter()
                    .skip(1)
                    .take(feature_knots.len().saturating_sub(2))
                {
                    let pos = Hinge {
                        feature: j,
                        knot: t,
                        positive: true,
                    };
                    let neg = Hinge {
                        feature: j,
                        knot: t,
                        positive: false,
                    };
                    let mut cand = terms.clone();
                    cand.push(pos);
                    cand.push(neg);
                    let d = design(x, &cand);
                    if d.cols() > n {
                        continue; // would be under-determined
                    }
                    let (_, r) = rss(&d, y);
                    if best_pair.as_ref().is_none_or(|(_, _, br)| r < *br) {
                        best_pair = Some((pos, neg, r));
                    }
                }
            }
            match best_pair {
                Some((pos, neg, r)) if r < best_rss * (1.0 - 1e-6) => {
                    terms.push(pos);
                    terms.push(neg);
                    best_rss = r;
                }
                _ => break,
            }
        }

        // ---- backward pass (GCV pruning) ----
        let mut best_terms = terms.clone();
        let mut best_gcv = {
            let d = design(x, &terms);
            let (_, r) = rss(&d, y);
            gcv(r, n, base_terms, terms.len(), self.config.penalty)
        };
        let mut current = terms;
        while !current.is_empty() {
            // remove the single term whose removal minimizes GCV
            let mut round_best: Option<(usize, f64)> = None;
            for drop in 0..current.len() {
                let mut cand = current.clone();
                cand.remove(drop);
                let d = design(x, &cand);
                let (_, r) = rss(&d, y);
                let g = gcv(r, n, base_terms, cand.len(), self.config.penalty);
                if round_best.is_none_or(|(_, bg)| g < bg) {
                    round_best = Some((drop, g));
                }
            }
            let (drop, g) = round_best.unwrap();
            current.remove(drop);
            if g <= best_gcv {
                best_gcv = g;
                best_terms = current.clone();
            }
        }

        let d = design(x, &best_terms);
        let (beta, _) = rss(&d, y);
        self.terms = best_terms;
        self.coefficients = beta;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.coefficients.is_empty(), "predict called before fit");
        assert_eq!(x.cols(), self.n_features, "feature-count mismatch");
        let p = self.n_features;
        x.iter_rows()
            .map(|row| {
                let linear: f64 = row
                    .iter()
                    .zip(&self.coefficients[1..1 + p])
                    .map(|(a, b)| a * b)
                    .sum();
                let hinges: f64 = self
                    .terms
                    .iter()
                    .zip(&self.coefficients[1 + p..])
                    .map(|(h, c)| c * h.eval(row))
                    .sum();
                self.coefficients[0] + linear + hinges
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    #[test]
    fn fits_piecewise_linear_target_exactly() {
        // y = x for x < 5, y = 5 for x >= 5 (a roofline-style kink)
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.5]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows.iter().map(|r| r[0].min(5.0)).collect();
        let mut m = Mars::new();
        m.fit(&x, &y);
        assert!(rmse(&y, &m.predict(&x)) < 0.05, "terms: {:?}", m.terms);
    }

    #[test]
    fn linear_target_needs_no_interior_structure() {
        let rows: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..15).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut m = Mars::new();
        m.fit(&x, &y);
        assert!(rmse(&y, &m.predict(&x)) < 1e-6);
    }

    #[test]
    fn pruning_controls_term_count() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.2]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows.iter().map(|r| (r[0]).sin()).collect();
        let mut strict = Mars::with_config(MarsConfig {
            penalty: 10.0,
            ..MarsConfig::default()
        });
        strict.fit(&x, &y);
        let mut lenient = Mars::with_config(MarsConfig {
            penalty: 0.5,
            ..MarsConfig::default()
        });
        lenient.fit(&x, &y);
        assert!(strict.terms.len() <= lenient.terms.len());
    }

    #[test]
    fn multifeature_selects_relevant_feature() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let a = i as f64 * 0.3;
            let b = (i * 17 % 7) as f64; // noise
            rows.push(vec![a, b]);
            y.push((a - 4.0).max(0.0) * 2.0);
        }
        let x = Matrix::from_rows(&rows);
        let mut m = Mars::new();
        m.fit(&x, &y);
        assert!(rmse(&y, &m.predict(&x)) < 0.6);
        // at least one selected hinge should be on feature 0
        assert!(m.terms.iter().any(|t| t.feature == 0), "{:?}", m.terms);
    }

    #[test]
    fn handles_tiny_dataset() {
        let x = Matrix::from_rows(&[vec![2.0], vec![4.0], vec![8.0], vec![16.0]]);
        let y = vec![10.0, 18.0, 30.0, 44.0];
        let mut m = Mars::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(pred.iter().all(|p| p.is_finite()));
        assert!(rmse(&y, &pred) < 10.0);
    }
}

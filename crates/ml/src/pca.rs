//! Principal component analysis (Appendix C).
//!
//! The paper discusses dimensionality reduction (PCA/SVD) as the
//! alternative to feature selection and notes its drawbacks: components
//! mix the original predictors (losing interpretability) and the
//! projection ignores the modeling objective. This implementation lets
//! the repository's ablation benches quantify that trade-off.
//!
//! Eigendecomposition of the covariance matrix is computed with the
//! cyclic Jacobi method — exact enough for the ≤ 29-dimensional telemetry
//! covariance matrices this crate encounters.

use wp_linalg::{Matrix, StandardScaler};

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Number of retained components.
    pub n_components: usize,
    /// Component matrix: `n_components × n_features`, rows are unit-norm
    /// principal directions, strongest first.
    pub components: Matrix,
    /// Variance explained by each retained component.
    pub explained_variance: Vec<f64>,
    scaler: StandardScaler,
}

/// Jacobi eigendecomposition of a symmetric matrix: returns
/// `(eigenvalues, eigenvectors)` with eigenvectors in columns, sorted by
/// descending eigenvalue.
fn symmetric_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "need a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    for _sweep in 0..100 {
        // largest off-diagonal element
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if m[(p, q)].abs() < 1e-14 {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * m[(p, q)]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // rotate rows/cols p and q
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    (eigenvalues, vectors)
}

impl Pca {
    /// Fits PCA on standardized data, retaining `n_components`.
    ///
    /// # Panics
    ///
    /// Panics when `n_components` exceeds the feature count or the input
    /// is empty.
    pub fn fit(x: &Matrix, n_components: usize) -> Self {
        assert!(x.rows() > 1, "PCA needs at least two samples");
        assert!(
            (1..=x.cols()).contains(&n_components),
            "n_components must be in 1..=n_features"
        );
        let (scaler, xs) = StandardScaler::fit_transform(x);
        // covariance of standardized data = correlation matrix
        let cov = xs.gram().scale(1.0 / (x.rows() as f64 - 1.0));
        let (eigenvalues, vectors) = symmetric_eigen(&cov);
        let mut components = Matrix::zeros(n_components, x.cols());
        for c in 0..n_components {
            for f in 0..x.cols() {
                components[(c, f)] = vectors[(f, c)];
            }
        }
        Self {
            n_components,
            components,
            explained_variance: eigenvalues.into_iter().take(n_components).collect(),
            scaler,
        }
    }

    /// Projects data into the component space (`rows × n_components`).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let xs = self.scaler.transform(x);
        xs.matmul(&self.components.transpose())
    }

    /// Fraction of total variance captured by the retained components
    /// (total = feature count on standardized data).
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total = self.components.cols() as f64;
        self.explained_variance.iter().map(|v| v / total).collect()
    }

    /// The |loading| of each original feature on component `c` — what a
    /// practitioner must inspect to interpret a component (the Appendix C
    /// interpretability complaint: this mixes all features).
    pub fn loadings(&self, c: usize) -> Vec<f64> {
        assert!(c < self.n_components, "component out of range");
        self.components.row(c).iter().map(|v| v.abs()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_linalg::Rng64;

    /// Data with variance concentrated along (1, 1, 0).
    fn correlated_data(n: usize) -> Matrix {
        let mut rng = Rng64::new(5);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let t: f64 = rng.range(-3.0, 3.0);
                vec![
                    t + rng.range(-0.1, 0.1),
                    t + rng.range(-0.1, 0.1),
                    rng.range(-0.3, 0.3),
                ]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn first_component_captures_correlated_direction() {
        let x = correlated_data(200);
        let pca = Pca::fit(&x, 2);
        let c0 = pca.components.row(0);
        // direction ≈ (±1/√2, ±1/√2, 0)
        assert!((c0[0].abs() - 0.707).abs() < 0.05, "{c0:?}");
        assert!((c0[1].abs() - 0.707).abs() < 0.05, "{c0:?}");
        assert!(c0[2].abs() < 0.2, "{c0:?}");
    }

    #[test]
    fn explained_variance_is_descending_and_dominant() {
        let x = correlated_data(200);
        let pca = Pca::fit(&x, 3);
        let ev = &pca.explained_variance;
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2]);
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.5, "{ratio:?}");
        let total: f64 = ratio.iter().sum();
        assert!(
            (total - 1.0).abs() < 0.05,
            "standardized total ≈ 1: {total}"
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let x = correlated_data(100);
        let pca = Pca::fit(&x, 3);
        for i in 0..3 {
            let ri = pca.components.row(i);
            let norm: f64 = ri.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-8, "row {i} norm {norm}");
            for j in i + 1..3 {
                let dot = wp_linalg::ops::dot(ri, pca.components.row(j));
                assert!(dot.abs() < 1e-8, "rows {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn transform_shape_and_variance_ordering() {
        let x = correlated_data(150);
        let pca = Pca::fit(&x, 2);
        let t = pca.transform(&x);
        assert_eq!(t.shape(), (150, 2));
        let v0 = wp_linalg::stats::variance(&t.col(0));
        let v1 = wp_linalg::stats::variance(&t.col(1));
        assert!(v0 > v1);
    }

    #[test]
    fn loadings_mix_features() {
        // the Appendix C point: a component loads on several features
        let x = correlated_data(100);
        let pca = Pca::fit(&x, 1);
        let loadings = pca.loadings(0);
        let active = loadings.iter().filter(|l| **l > 0.3).count();
        assert!(active >= 2, "component should mix features: {loadings:?}");
    }

    #[test]
    #[should_panic(expected = "n_components must be in")]
    fn too_many_components_rejected() {
        let x = correlated_data(10);
        let _ = Pca::fit(&x, 4);
    }
}

//! Ordinary least squares, ridge, and polynomial regression.

use wp_linalg::{lstsq, Matrix};

use crate::traits::{check_fit_inputs, Regressor};

/// Ordinary least squares linear regression with an intercept.
///
/// Uses Householder QR for well-posed problems and falls back to a
/// ridge-stabilized normal-equation solve for collinear designs.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    /// Fitted intercept.
    pub intercept: f64,
    /// Fitted coefficients (one per feature).
    pub coefficients: Vec<f64>,
}

impl LinearRegression {
    /// Creates an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        let xd = x.with_intercept();
        // A vanishing ridge keeps collinear telemetry designs solvable
        // without measurably biasing well-posed ones.
        let beta = if xd.rows() >= xd.cols() {
            lstsq(&xd, y, 0.0)
        } else {
            lstsq(&xd, y, 1e-8)
        };
        self.intercept = beta[0];
        self.coefficients = beta[1..].to_vec();
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(
            x.cols(),
            self.coefficients.len(),
            "predict feature-count mismatch"
        );
        x.iter_rows()
            .map(|row| {
                self.intercept
                    + row
                        .iter()
                        .zip(&self.coefficients)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect()
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        Some(self.coefficients.iter().map(|c| c.abs()).collect())
    }
}

/// Ridge regression: OLS with an L2 penalty `alpha` on the coefficients
/// (the intercept is never penalized).
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    /// L2 penalty strength.
    pub alpha: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Fitted coefficients.
    pub coefficients: Vec<f64>,
}

impl RidgeRegression {
    /// Creates an unfitted model with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0, "ridge penalty must be non-negative");
        Self {
            alpha,
            intercept: 0.0,
            coefficients: Vec::new(),
        }
    }
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        // Center to avoid penalizing the intercept.
        let x_means = wp_linalg::stats::col_means(x);
        let y_mean = wp_linalg::stats::mean(y);
        let mut xc = x.clone();
        for r in 0..xc.rows() {
            let row = xc.row_mut(r);
            for (v, &m) in row.iter_mut().zip(&x_means) {
                *v -= m;
            }
        }
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let beta = lstsq(&xc, &yc, self.alpha.max(1e-12));
        self.intercept = y_mean - beta.iter().zip(&x_means).map(|(b, m)| b * m).sum::<f64>();
        self.coefficients = beta;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(
            x.cols(),
            self.coefficients.len(),
            "predict feature-count mismatch"
        );
        x.iter_rows()
            .map(|row| {
                self.intercept
                    + row
                        .iter()
                        .zip(&self.coefficients)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect()
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        Some(self.coefficients.iter().map(|c| c.abs()).collect())
    }
}

/// Expands each feature column into powers `x, x², …, x^degree`.
///
/// Interaction terms are intentionally omitted: the scaling models in the
/// paper are univariate in the SKU dimension, where pure powers suffice.
pub fn polynomial_features(x: &Matrix, degree: usize) -> Matrix {
    assert!(degree >= 1, "polynomial degree must be >= 1");
    let mut out = Matrix::zeros(x.rows(), x.cols() * degree);
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let v = x[(r, c)];
            let mut p = 1.0;
            for d in 0..degree {
                p *= v;
                out[(r, c * degree + d)] = p;
            }
        }
    }
    out
}

/// Polynomial regression: OLS on [`polynomial_features`].
#[derive(Debug, Clone)]
pub struct PolynomialRegression {
    /// Power expansion degree.
    pub degree: usize,
    inner: LinearRegression,
}

impl PolynomialRegression {
    /// Creates an unfitted polynomial model of the given degree.
    pub fn new(degree: usize) -> Self {
        assert!(degree >= 1, "polynomial degree must be >= 1");
        Self {
            degree,
            inner: LinearRegression::new(),
        }
    }
}

impl Regressor for PolynomialRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let xp = polynomial_features(x, self.degree);
        self.inner.fit(&xp, y);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let xp = polynomial_features(x, self.degree);
        self.inner.predict(&xp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    #[test]
    fn ols_recovers_exact_line() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let y = vec![5.0, 7.0, 9.0, 11.0]; // y = 3 + 2x
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.intercept - 3.0).abs() < 1e-8);
        assert!((m.coefficients[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn ols_multifeature() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ]);
        let y = vec![1.0, -1.0, 0.0, 1.0]; // y = x0 - x1
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&y, &pred) < 1e-8);
    }

    #[test]
    fn ols_importances_are_abs_coefs() {
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, -1.0], vec![3.0, 2.0]]);
        let y = vec![2.0, 4.0, 6.0]; // only feature 0 matters
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        let imp = m.feature_importances().unwrap();
        assert!(imp[0] > imp[1]);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let mut weak = RidgeRegression::new(0.001);
        weak.fit(&x, &y);
        let mut strong = RidgeRegression::new(1000.0);
        strong.fit(&x, &y);
        assert!(strong.coefficients[0].abs() < weak.coefficients[0].abs());
        assert!((weak.coefficients[0] - 2.0).abs() < 0.05);
    }

    #[test]
    fn ridge_prediction_reasonable() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let mut m = RidgeRegression::new(0.01);
        m.fit(&x, &y);
        let p = m.predict(&Matrix::from_rows(&[vec![4.0]]));
        assert!((p[0] - 4.0).abs() < 0.1);
    }

    #[test]
    fn polynomial_features_expansion() {
        let x = Matrix::from_rows(&[vec![2.0, 3.0]]);
        let xp = polynomial_features(&x, 3);
        assert_eq!(xp.row(0), &[2.0, 4.0, 8.0, 3.0, 9.0, 27.0]);
    }

    #[test]
    fn polynomial_regression_fits_quadratic() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..10).map(|i| (i * i) as f64 + 1.0).collect();
        let mut m = PolynomialRegression::new(2);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&y, &pred) < 1e-6, "pred: {pred:?}");
    }

    #[test]
    fn fitting_twice_resets_state() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let mut m = LinearRegression::new();
        m.fit(&x, &[1.0, 2.0]);
        m.fit(&x, &[10.0, 20.0]);
        let p = m.predict(&Matrix::from_rows(&[vec![3.0]]));
        assert!((p[0] - 30.0).abs() < 1e-8);
    }
}

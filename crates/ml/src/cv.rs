//! K-fold cross-validation and train/test splitting.
//!
//! The paper performs 5-fold cross-validation for every Table 6 model
//! (§6.2) and uses systematic/random sub-sampling for data augmentation;
//! the splitters here are deterministic given a seed so experiments are
//! reproducible run-to-run.

use wp_linalg::{Matrix, Rng64};

use crate::traits::Regressor;

/// Deterministic k-fold splitter.
#[derive(Debug, Clone)]
pub struct KFold {
    /// Number of folds (≥ 2).
    pub k: usize,
    /// Shuffle seed; `None` keeps the original order.
    pub seed: Option<u64>,
}

impl KFold {
    /// Creates a shuffled k-fold splitter.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "k-fold needs k >= 2");
        Self {
            k,
            seed: Some(seed),
        }
    }

    /// Produces `(train_indices, test_indices)` pairs, one per fold.
    ///
    /// Every sample appears in exactly one test fold; fold sizes differ by
    /// at most one.
    pub fn split(&self, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(
            n >= self.k,
            "cannot split {n} samples into {} folds",
            self.k
        );
        let mut idx: Vec<usize> = (0..n).collect();
        if let Some(seed) = self.seed {
            Rng64::new(seed).shuffle(&mut idx);
        }
        let base = n / self.k;
        let extra = n % self.k;
        let mut folds = Vec::with_capacity(self.k);
        let mut start = 0;
        for f in 0..self.k {
            let size = base + usize::from(f < extra);
            let test: Vec<usize> = idx[start..start + size].to_vec();
            let train: Vec<usize> = idx[..start]
                .iter()
                .chain(&idx[start + size..])
                .copied()
                .collect();
            folds.push((train, test));
            start += size;
        }
        folds
    }
}

/// Score returned by [`cross_validate`] for a single fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldScore {
    /// Fold index `0..k`.
    pub fold: usize,
    /// Metric value on the held-out fold.
    pub score: f64,
}

/// Runs k-fold cross-validation of `model` on `(x, y)` with `metric`
/// evaluated on each held-out fold (e.g. [`crate::metrics::nrmse`]).
///
/// `make_model` is called once per fold so each fold trains a fresh model.
/// Folds are evaluated in parallel on the `wp_runtime` pool; scores come
/// back in fold order, identical to the sequential loop.
pub fn cross_validate<M: Regressor>(
    make_model: impl Fn() -> M + Sync,
    x: &Matrix,
    y: &[f64],
    kfold: &KFold,
    metric: impl Fn(&[f64], &[f64]) -> f64 + Sync,
) -> Vec<FoldScore> {
    assert_eq!(x.rows(), y.len(), "cross_validate dimension mismatch");
    let folds = kfold.split(x.rows());
    wp_runtime::par_map_indexed(folds.len(), |fold| {
        let (train, test) = &folds[fold];
        let x_train = x.select_rows(train);
        let y_train: Vec<f64> = train.iter().map(|&i| y[i]).collect();
        let x_test = x.select_rows(test);
        let y_test: Vec<f64> = test.iter().map(|&i| y[i]).collect();
        let mut model = make_model();
        model.fit(&x_train, &y_train);
        let pred = model.predict(&x_test);
        FoldScore {
            fold,
            score: metric(&y_test, &pred),
        }
    })
}

/// Mean of fold scores.
pub fn mean_score(scores: &[FoldScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(|s| s.score).sum::<f64>() / scores.len() as f64
}

/// Deterministic shuffled train/test split returning index sets.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0, 1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    Rng64::new(seed).shuffle(&mut idx);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;

    #[test]
    fn folds_partition_all_samples() {
        let kf = KFold::new(5, 7);
        let folds = kf.split(23);
        assert_eq!(folds.len(), 5);
        let mut seen = [false; 23];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            for &i in test {
                assert!(!seen[i], "sample {i} appears in two test folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fold_sizes_balanced() {
        let kf = KFold::new(4, 0);
        let folds = kf.split(10);
        let sizes: Vec<usize> = folds.iter().map(|(_, t)| t.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = KFold::new(3, 42).split(9);
        let b = KFold::new(3, 42).split(9);
        assert_eq!(a, b);
        let c = KFold::new(3, 43).split(9);
        assert_ne!(a, c);
    }

    #[test]
    fn cross_validation_on_exact_linear_data_scores_zero_error() {
        // y = 3x + 1, perfectly linear, so each fold should fit exactly.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..20).map(|i| 3.0 * i as f64 + 1.0).collect();
        let scores = cross_validate(
            LinearRegression::new,
            &x,
            &y,
            &KFold::new(5, 1),
            crate::metrics::rmse,
        );
        assert_eq!(scores.len(), 5);
        assert!(mean_score(&scores) < 1e-8, "scores: {scores:?}");
    }

    #[test]
    fn train_test_split_sizes() {
        let (train, test) = train_test_split(100, 0.2, 3);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn kfold_rejects_k1() {
        let _ = KFold::new(1, 0);
    }
}

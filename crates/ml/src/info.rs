//! Information-theoretic and ANOVA statistics for filter-based feature
//! selection (§4.1.1): mutual information gain and the one-way ANOVA
//! F-statistic (the paper's fANOVA filter).

use wp_linalg::Matrix;

/// Mutual information `I(X; Y)` between a continuous feature (discretized
/// into `n_bins` equi-width bins) and an integer class label, in nats.
///
/// `I = Σ p(x,y) ln( p(x,y) / (p(x) p(y)) )`, zero iff independent.
pub fn mutual_information(feature: &[f64], labels: &[usize], n_bins: usize) -> f64 {
    assert_eq!(feature.len(), labels.len(), "length mismatch");
    assert!(n_bins > 0, "need at least one bin");
    if feature.is_empty() {
        return 0.0;
    }
    let lo = wp_linalg::stats::min(feature);
    let hi = wp_linalg::stats::max(feature);
    let range = hi - lo;
    let n_classes = labels.iter().max().map_or(0, |m| m + 1);
    let n = feature.len() as f64;

    let mut joint = vec![vec![0.0; n_classes]; n_bins];
    let mut px = vec![0.0; n_bins];
    let mut py = vec![0.0; n_classes];
    for (&x, &y) in feature.iter().zip(labels) {
        let bin = if range > 0.0 {
            (((x - lo) / range * n_bins as f64) as usize).min(n_bins - 1)
        } else {
            0
        };
        joint[bin][y] += 1.0;
        px[bin] += 1.0;
        py[y] += 1.0;
    }
    let mut mi = 0.0;
    for b in 0..n_bins {
        for c in 0..n_classes {
            let pxy = joint[b][c] / n;
            if pxy > 0.0 {
                mi += pxy * (pxy / (px[b] / n * py[c] / n)).ln();
            }
        }
    }
    mi.max(0.0)
}

/// One-way ANOVA F-statistic of a feature grouped by class label:
/// between-group variance over within-group variance.
///
/// Returns `0.0` for degenerate cases (single class, constant feature, or
/// fewer samples than needed for the within-group degrees of freedom) and
/// a large finite value (`1e12`) when within-group variance is exactly
/// zero but groups differ — a perfectly separating feature.
pub fn f_statistic(feature: &[f64], labels: &[usize]) -> f64 {
    assert_eq!(feature.len(), labels.len(), "length mismatch");
    let n = feature.len();
    if n == 0 {
        return 0.0;
    }
    let n_classes = labels.iter().max().map_or(0, |m| m + 1);
    if n_classes < 2 {
        return 0.0;
    }
    let grand_mean = wp_linalg::stats::mean(feature);
    let mut group_sum = vec![0.0; n_classes];
    let mut group_n = vec![0usize; n_classes];
    for (&x, &y) in feature.iter().zip(labels) {
        group_sum[y] += x;
        group_n[y] += 1;
    }
    let k = group_n.iter().filter(|&&g| g > 0).count();
    if k < 2 || n <= k {
        return 0.0;
    }
    let group_mean: Vec<f64> = group_sum
        .iter()
        .zip(&group_n)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();

    let mut ss_between = 0.0;
    for c in 0..n_classes {
        if group_n[c] > 0 {
            let d = group_mean[c] - grand_mean;
            ss_between += group_n[c] as f64 * d * d;
        }
    }
    let mut ss_within = 0.0;
    for (&x, &y) in feature.iter().zip(labels) {
        let d = x - group_mean[y];
        ss_within += d * d;
    }
    let df_between = (k - 1) as f64;
    let df_within = (n - k) as f64;
    let ms_between = ss_between / df_between;
    let ms_within = ss_within / df_within;
    if ms_within <= 0.0 {
        if ms_between > 0.0 {
            1e12
        } else {
            0.0
        }
    } else {
        ms_between / ms_within
    }
}

/// Column-wise [`mutual_information`] for every feature in a matrix.
pub fn mutual_information_matrix(x: &Matrix, labels: &[usize], n_bins: usize) -> Vec<f64> {
    (0..x.cols())
        .map(|j| mutual_information(&x.col(j), labels, n_bins))
        .collect()
}

/// Column-wise [`f_statistic`] for every feature in a matrix.
pub fn f_statistic_matrix(x: &Matrix, labels: &[usize]) -> Vec<f64> {
    (0..x.cols())
        .map(|j| f_statistic(&x.col(j), labels))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mi_zero_for_independent_feature() {
        // feature identical for both classes
        let f = vec![1.0, 2.0, 1.0, 2.0];
        let y = vec![0, 0, 1, 1];
        let mi = mutual_information(&f, &y, 2);
        assert!(mi.abs() < 1e-9, "mi = {mi}");
    }

    #[test]
    fn mi_high_for_separating_feature() {
        let f = vec![0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let y = vec![0, 0, 0, 1, 1, 1];
        let mi = mutual_information(&f, &y, 4);
        // perfect separation of 2 balanced classes → MI = ln 2
        assert!((mi - (2.0_f64).ln()).abs() < 1e-9, "mi = {mi}");
    }

    #[test]
    fn mi_constant_feature_is_zero() {
        let f = vec![5.0; 6];
        let y = vec![0, 0, 0, 1, 1, 1];
        assert_eq!(mutual_information(&f, &y, 5), 0.0);
    }

    #[test]
    fn f_stat_large_for_separated_groups() {
        let f = vec![0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let y = vec![0, 0, 0, 1, 1, 1];
        assert!(f_statistic(&f, &y) > 100.0);
    }

    #[test]
    fn f_stat_small_for_identical_groups() {
        let f = vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0];
        let y = vec![0, 0, 0, 1, 1, 1];
        assert!(f_statistic(&f, &y) < 1e-9);
    }

    #[test]
    fn f_stat_perfect_separation_zero_within() {
        let f = vec![1.0, 1.0, 2.0, 2.0];
        let y = vec![0, 0, 1, 1];
        assert_eq!(f_statistic(&f, &y), 1e12);
    }

    #[test]
    fn f_stat_degenerate_cases() {
        assert_eq!(f_statistic(&[], &[]), 0.0);
        assert_eq!(f_statistic(&[1.0, 2.0], &[0, 0]), 0.0);
    }

    #[test]
    fn matrix_wrappers_shape() {
        let x = Matrix::from_rows(&[
            vec![0.0, 5.0],
            vec![0.1, 5.0],
            vec![9.0, 5.0],
            vec![9.1, 5.0],
        ]);
        let y = vec![0, 0, 1, 1];
        let mi = mutual_information_matrix(&x, &y, 3);
        assert_eq!(mi.len(), 2);
        assert!(mi[0] > mi[1]);
        let f = f_statistic_matrix(&x, &y);
        assert_eq!(f.len(), 2);
        assert!(f[0] > f[1]);
    }
}

//! Random forests: bootstrap-aggregated CART trees with per-split feature
//! subsampling and mean-impurity-decrease feature importances (§4.1.2).

use wp_linalg::{Matrix, Rng64};

use crate::traits::{check_fit_inputs, Classifier, Regressor};
use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeConfig};

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree settings; `max_features = None` defaults to √p at fit time.
    pub tree: TreeConfig,
    /// Bootstrap/subsampling seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeConfig {
                max_depth: 12,
                ..TreeConfig::default()
            },
            seed: 0,
        }
    }
}

fn bootstrap_indices(n: usize, rng: &mut Rng64) -> Vec<usize> {
    (0..n).map(|_| rng.below(n)).collect()
}

/// Draws every tree's bootstrap sample up front from one sequential RNG
/// stream, so tree training can fan out across threads while the forest
/// stays bit-identical to the sequential fit.
fn draw_bootstraps(n_trees: usize, n_rows: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = Rng64::new(seed);
    (0..n_trees)
        .map(|_| bootstrap_indices(n_rows, &mut rng))
        .collect()
}

fn resolved_tree_config(base: &TreeConfig, n_features: usize, tree_seed: u64) -> TreeConfig {
    let max_features = base.max_features.or_else(|| {
        // √p, the standard forest default
        Some(((n_features as f64).sqrt().round() as usize).max(1))
    });
    TreeConfig {
        max_features,
        seed: tree_seed,
        ..base.clone()
    }
}

/// Averages each tree's normalized importances.
fn mean_importances(per_tree: &[Vec<f64>]) -> Vec<f64> {
    if per_tree.is_empty() {
        return Vec::new();
    }
    let p = per_tree[0].len();
    let mut out = vec![0.0; p];
    for imp in per_tree {
        for (o, v) in out.iter_mut().zip(imp) {
            *o += v;
        }
    }
    for o in &mut out {
        *o /= per_tree.len() as f64;
    }
    out
}

/// Random forest regressor (mean of tree predictions).
#[derive(Debug, Clone, Default)]
pub struct RandomForestRegressor {
    /// Forest hyper-parameters.
    pub config: ForestConfig,
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// Creates an unfitted forest with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted forest with the given settings.
    pub fn with_config(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True before `fit`.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        let bootstraps = draw_bootstraps(self.config.n_trees, x.rows(), self.config.seed);
        self.trees = wp_runtime::par_map_indexed(self.config.n_trees, |t| {
            let idx = &bootstraps[t];
            let xb = x.select_rows(idx);
            let yb: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
            let cfg = resolved_tree_config(
                &self.config.tree,
                x.cols(),
                self.config.seed.wrapping_add(t as u64 + 1),
            );
            let mut tree = DecisionTreeRegressor::with_config(cfg);
            tree.fit(&xb, &yb);
            tree
        });
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict called before fit");
        let mut out = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (o, p) in out.iter_mut().zip(tree.predict(x)) {
                *o += p;
            }
        }
        for o in &mut out {
            *o /= self.trees.len() as f64;
        }
        out
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        let per_tree: Vec<Vec<f64>> = self
            .trees
            .iter()
            .filter_map(|t| t.feature_importances())
            .collect();
        if per_tree.is_empty() {
            None
        } else {
            Some(mean_importances(&per_tree))
        }
    }
}

/// Random forest classifier (majority vote).
#[derive(Debug, Clone, Default)]
pub struct RandomForestClassifier {
    /// Forest hyper-parameters.
    pub config: ForestConfig,
    trees: Vec<DecisionTreeClassifier>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Creates an unfitted forest with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted forest with the given settings.
    pub fn with_config(config: ForestConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }
}

impl Classifier for RandomForestClassifier {
    fn fit(&mut self, x: &Matrix, labels: &[usize]) {
        check_fit_inputs(x, labels.len());
        self.n_classes = labels.iter().max().map_or(0, |m| m + 1);
        let bootstraps = draw_bootstraps(self.config.n_trees, x.rows(), self.config.seed);
        self.trees = wp_runtime::par_map_indexed(self.config.n_trees, |t| {
            let idx = &bootstraps[t];
            let xb = x.select_rows(idx);
            let yb: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            let cfg = resolved_tree_config(
                &self.config.tree,
                x.cols(),
                self.config.seed.wrapping_add(t as u64 + 1),
            );
            let mut tree = DecisionTreeClassifier::with_config(cfg);
            tree.fit(&xb, &yb);
            tree
        });
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        assert!(!self.trees.is_empty(), "predict called before fit");
        let votes_per_tree: Vec<Vec<usize>> = self.trees.iter().map(|t| t.predict(x)).collect();
        (0..x.rows())
            .map(|r| {
                let mut counts = vec![0usize; self.n_classes];
                for votes in &votes_per_tree {
                    counts[votes[r]] += 1;
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(k, _)| k)
                    .unwrap_or(0)
            })
            .collect()
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        let per_tree: Vec<Vec<f64>> = self
            .trees
            .iter()
            .filter_map(|t| t.feature_importances())
            .collect();
        if per_tree.is_empty() {
            None
        } else {
            Some(mean_importances(&per_tree))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, rmse};

    fn friedman_like(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let f: Vec<f64> = (0..4).map(|_| rng.unit()).collect();
            y.push(10.0 * f[0] + 5.0 * f[1] * f[1] + f[2]);
            rows.push(f);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn forest_beats_constant_predictor() {
        let (x, y) = friedman_like(200, 1);
        let mut f = RandomForestRegressor::with_config(ForestConfig {
            n_trees: 30,
            ..ForestConfig::default()
        });
        f.fit(&x, &y);
        let pred = f.predict(&x);
        let mean = wp_linalg::stats::mean(&y);
        let baseline = rmse(&y, &vec![mean; y.len()]);
        assert!(rmse(&y, &pred) < baseline * 0.5);
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let (x, y) = friedman_like(100, 2);
        let cfg = ForestConfig {
            n_trees: 10,
            seed: 7,
            ..ForestConfig::default()
        };
        let mut a = RandomForestRegressor::with_config(cfg.clone());
        a.fit(&x, &y);
        let mut b = RandomForestRegressor::with_config(cfg);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn forest_importances_rank_signal_over_noise() {
        let (x, y) = friedman_like(300, 3);
        let mut f = RandomForestRegressor::with_config(ForestConfig {
            n_trees: 40,
            ..ForestConfig::default()
        });
        f.fit(&x, &y);
        let imp = f.feature_importances().unwrap();
        // feature 0 (weight 10) dominates feature 3 (no signal)
        assert!(imp[0] > imp[3], "{imp:?}");
    }

    #[test]
    fn classifier_majority_vote() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = i % 3;
            rows.push(vec![c as f64 * 5.0 + (i % 5) as f64 * 0.1, 0.0]);
            labels.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let mut f = RandomForestClassifier::with_config(ForestConfig {
            n_trees: 15,
            tree: TreeConfig {
                // the second feature is constant, so let every split see
                // both features rather than gamble on √p = 1
                max_features: Some(2),
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        });
        f.fit(&x, &labels);
        assert!(accuracy(&labels, &f.predict(&x)) > 0.95);
    }

    #[test]
    fn forest_len_matches_config() {
        let (x, y) = friedman_like(50, 4);
        let mut f = RandomForestRegressor::with_config(ForestConfig {
            n_trees: 7,
            ..ForestConfig::default()
        });
        assert!(f.is_empty());
        f.fit(&x, &y);
        assert_eq!(f.len(), 7);
    }
}

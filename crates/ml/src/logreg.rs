//! Binary and one-vs-rest multinomial logistic regression.
//!
//! This is the estimator behind the paper's `RFE LogReg` and `SFS LogReg`
//! feature selectors: workload identity is the class label and the absolute
//! coefficient magnitudes (aggregated across the one-vs-rest heads for the
//! multiclass case) act as feature importances.

use wp_linalg::ops::sigmoid;
use wp_linalg::{Matrix, StandardScaler};

use crate::traits::{check_fit_inputs, Classifier};

/// Gradient-descent configuration for logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Maximum gradient steps.
    pub max_iter: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Convergence threshold on the gradient norm.
    pub tol: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.5,
            max_iter: 500,
            l2: 1e-3,
            tol: 1e-6,
        }
    }
}

/// One binary logistic head: `P(y=1|x) = σ(w·x + b)`.
#[derive(Debug, Clone)]
struct BinaryHead {
    weights: Vec<f64>,
    bias: f64,
}

fn fit_binary(xs: &Matrix, targets: &[f64], config: &LogisticConfig) -> BinaryHead {
    let n = xs.rows() as f64;
    let p = xs.cols();
    let mut w = vec![0.0; p];
    let mut b = 0.0;
    for _ in 0..config.max_iter {
        let mut gw = vec![0.0; p];
        let mut gb = 0.0;
        for (i, row) in xs.iter_rows().enumerate() {
            let z = b + row.iter().zip(&w).map(|(a, c)| a * c).sum::<f64>();
            let err = sigmoid(z) - targets[i];
            for (g, &a) in gw.iter_mut().zip(row) {
                *g += err * a;
            }
            gb += err;
        }
        let mut gnorm = gb * gb;
        for j in 0..p {
            gw[j] = gw[j] / n + config.l2 * w[j];
            gnorm += gw[j] * gw[j];
        }
        gb /= n;
        for j in 0..p {
            w[j] -= config.learning_rate * gw[j];
        }
        b -= config.learning_rate * gb;
        if gnorm.sqrt() < config.tol {
            break;
        }
    }
    BinaryHead {
        weights: w,
        bias: b,
    }
}

/// One-vs-rest logistic regression classifier.
///
/// Inputs are standardized internally so coefficient magnitudes are
/// comparable across features (required for importance-based selection).
#[derive(Debug, Clone, Default)]
pub struct LogisticRegression {
    /// Optimizer settings.
    pub config: LogisticConfig,
    heads: Vec<BinaryHead>,
    classes: Vec<usize>,
    scaler: Option<StandardScaler>,
}

impl LogisticRegression {
    /// Creates an unfitted classifier with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted classifier with custom optimizer settings.
    pub fn with_config(config: LogisticConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Per-class decision scores for each row (same order as `classes`).
    pub fn decision_function(&self, x: &Matrix) -> Matrix {
        let scaler = self.scaler.as_ref().expect("predict called before fit");
        let xs = scaler.transform(x);
        let mut out = Matrix::zeros(x.rows(), self.heads.len());
        for (r, row) in xs.iter_rows().enumerate() {
            for (k, head) in self.heads.iter().enumerate() {
                out[(r, k)] = head.bias
                    + row
                        .iter()
                        .zip(&head.weights)
                        .map(|(a, c)| a * c)
                        .sum::<f64>();
            }
        }
        out
    }

    /// The distinct class labels seen at fit time, sorted ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, labels: &[usize]) {
        check_fit_inputs(x, labels.len());
        let (scaler, xs) = StandardScaler::fit_transform(x);
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        assert!(classes.len() >= 2, "need at least two classes");
        self.heads = classes
            .iter()
            .map(|&c| {
                let targets: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { 0.0 })
                    .collect();
                fit_binary(&xs, &targets, &self.config)
            })
            .collect();
        self.classes = classes;
        self.scaler = Some(scaler);
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let scores = self.decision_function(x);
        (0..scores.rows())
            .map(|r| {
                let row = scores.row(r);
                let best = wp_linalg::ops::argmax(row).unwrap();
                self.classes[best]
            })
            .collect()
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        if self.heads.is_empty() {
            return None;
        }
        let p = self.heads[0].weights.len();
        let mut imp = vec![0.0; p];
        for head in &self.heads {
            for (o, w) in imp.iter_mut().zip(&head.weights) {
                *o += w.abs();
            }
        }
        Some(imp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use wp_linalg::Rng64;

    /// Three linearly separable blobs in 2-D plus a noise dimension.
    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng64::new(seed);
        let centers = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(vec![
                    cx + rng.range(-0.5, 0.5),
                    cy + rng.range(-0.5, 0.5),
                    rng.range(-1.0, 1.0), // irrelevant feature
                ]);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn separable_blobs_classified_perfectly() {
        let (x, y) = blobs(30, 1);
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(accuracy(&y, &pred) > 0.98, "acc {}", accuracy(&y, &pred));
    }

    #[test]
    fn binary_case_works() {
        let x = Matrix::from_rows(&[
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![0.9],
            vec![1.0],
            vec![1.1],
        ]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn importances_favor_informative_features() {
        let (x, y) = blobs(40, 2);
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        let imp = m.feature_importances().unwrap();
        assert!(imp[0] > imp[2], "{imp:?}");
        assert!(imp[1] > imp[2], "{imp:?}");
    }

    #[test]
    fn classes_sorted_and_preserved() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![5.0], vec![6.0]]);
        let y = vec![7, 7, 3, 3];
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        assert_eq!(m.classes(), &[3, 7]);
        let pred = m.predict(&x);
        assert_eq!(pred, y);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_rejected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let mut m = LogisticRegression::new();
        m.fit(&x, &[1, 1]);
    }
}

//! Lasso and Elastic-Net regression via cyclic coordinate descent, plus
//! regularization paths.
//!
//! The paper uses Lasso both as an embedded feature selector (§4.1.2) and
//! to visualize per-workload feature importance through its regularization
//! path (Figure 3). The objective follows the scikit-learn convention:
//!
//! ```text
//! 1/(2n) ‖y − Xβ‖² + α·l1_ratio·‖β‖₁ + α·(1−l1_ratio)/2·‖β‖²
//! ```
//!
//! with `l1_ratio = 1` for Lasso. Inputs are standardized internally so the
//! penalty treats all features equally; reported coefficients are
//! *on the standardized scale*, which is what the paper's feature-importance
//! comparison requires (raw-scale coefficients would be dominated by unit
//! choices).

use wp_linalg::ops::soft_threshold;
use wp_linalg::{Matrix, StandardScaler};

use crate::traits::{check_fit_inputs, Regressor};

/// Shared coordinate-descent configuration.
#[derive(Debug, Clone)]
pub struct CoordinateDescentConfig {
    /// Maximum full passes over the coordinates.
    pub max_iter: usize,
    /// Convergence threshold on the largest single-coefficient update.
    pub tol: f64,
}

impl Default for CoordinateDescentConfig {
    fn default() -> Self {
        Self {
            max_iter: 1000,
            tol: 1e-7,
        }
    }
}

/// Elastic-Net regression (`l1_ratio = 1` recovers the Lasso).
#[derive(Debug, Clone)]
pub struct ElasticNet {
    /// Overall penalty strength α.
    pub alpha: f64,
    /// Mix between L1 (`1.0`) and L2 (`0.0`) penalties.
    pub l1_ratio: f64,
    /// Optimizer settings.
    pub config: CoordinateDescentConfig,
    /// Coefficients on the standardized feature scale.
    pub coefficients: Vec<f64>,
    /// Intercept on the original target scale.
    pub intercept: f64,
    /// Number of coordinate-descent passes actually used.
    pub n_iter: usize,
    scaler: Option<StandardScaler>,
    y_mean: f64,
}

impl ElasticNet {
    /// Creates an unfitted elastic net.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0` or `l1_ratio ∉ [0, 1]`.
    pub fn new(alpha: f64, l1_ratio: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(
            (0.0..=1.0).contains(&l1_ratio),
            "l1_ratio must be in [0, 1]"
        );
        Self {
            alpha,
            l1_ratio,
            config: CoordinateDescentConfig::default(),
            coefficients: Vec::new(),
            intercept: 0.0,
            n_iter: 0,
            scaler: None,
            y_mean: 0.0,
        }
    }

    /// Indices of features with non-zero coefficients.
    pub fn active_set(&self) -> Vec<usize> {
        self.coefficients
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs cyclic coordinate descent on standardized data.
///
/// Returns `(coefficients, iterations_used)`.
fn coordinate_descent(
    xs: &Matrix,
    yc: &[f64],
    alpha: f64,
    l1_ratio: f64,
    config: &CoordinateDescentConfig,
    warm_start: Option<&[f64]>,
) -> (Vec<f64>, usize) {
    let n = xs.rows() as f64;
    let p = xs.cols();
    let mut beta = warm_start
        .map(<[f64]>::to_vec)
        .unwrap_or_else(|| vec![0.0; p]);
    // residual r = y - X beta
    let mut resid: Vec<f64> = {
        let fitted = xs.matvec(&beta);
        yc.iter().zip(&fitted).map(|(y, f)| y - f).collect()
    };
    // Per-column squared norms; after standardization these are ≈ n, but we
    // compute them exactly so constant columns (norm 0) are skipped safely.
    let col_sq: Vec<f64> = (0..p)
        .map(|j| (0..xs.rows()).map(|i| xs[(i, j)] * xs[(i, j)]).sum())
        .collect();
    let l1 = alpha * l1_ratio;
    let l2 = alpha * (1.0 - l1_ratio);

    let mut iterations = 0;
    for it in 0..config.max_iter {
        iterations = it + 1;
        let mut max_delta = 0.0_f64;
        for j in 0..p {
            if col_sq[j] == 0.0 {
                continue;
            }
            let old = beta[j];
            // rho = (1/n) x_jᵀ (r + x_j * old)
            let mut rho = 0.0;
            for i in 0..xs.rows() {
                rho += xs[(i, j)] * (resid[i] + xs[(i, j)] * old);
            }
            rho /= n;
            let denom = col_sq[j] / n + l2;
            let new = soft_threshold(rho, l1) / denom;
            if new != old {
                let delta = new - old;
                for i in 0..xs.rows() {
                    resid[i] -= xs[(i, j)] * delta;
                }
                beta[j] = new;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < config.tol {
            break;
        }
    }
    (beta, iterations)
}

impl Regressor for ElasticNet {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        let (scaler, xs) = StandardScaler::fit_transform(x);
        self.y_mean = wp_linalg::stats::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - self.y_mean).collect();
        let (beta, iters) =
            coordinate_descent(&xs, &yc, self.alpha, self.l1_ratio, &self.config, None);
        self.coefficients = beta;
        self.n_iter = iters;
        self.intercept = self.y_mean;
        self.scaler = Some(scaler);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("predict called before fit");
        let xs = scaler.transform(x);
        xs.iter_rows()
            .map(|row| {
                self.intercept
                    + row
                        .iter()
                        .zip(&self.coefficients)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect()
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        Some(self.coefficients.iter().map(|c| c.abs()).collect())
    }
}

/// Lasso regression — an [`ElasticNet`] with `l1_ratio = 1`.
#[derive(Debug, Clone)]
pub struct Lasso {
    inner: ElasticNet,
}

impl Lasso {
    /// Creates an unfitted lasso with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Self {
            inner: ElasticNet::new(alpha, 1.0),
        }
    }

    /// Coefficients on the standardized feature scale.
    pub fn coefficients(&self) -> &[f64] {
        &self.inner.coefficients
    }

    /// Indices of non-zero coefficients.
    pub fn active_set(&self) -> Vec<usize> {
        self.inner.active_set()
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        self.inner.fit(x, y);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.inner.predict(x)
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        self.inner.feature_importances()
    }
}

/// One point on a regularization path.
#[derive(Debug, Clone)]
pub struct PathPoint {
    /// Penalty strength at this point.
    pub alpha: f64,
    /// Coefficients (standardized scale) at this penalty.
    pub coefficients: Vec<f64>,
}

/// The smallest `alpha` that drives all lasso coefficients to zero:
/// `max_j |x_jᵀ y| / n` on standardized data.
pub fn alpha_max(x: &Matrix, y: &[f64]) -> f64 {
    let (_, xs) = StandardScaler::fit_transform(x);
    let y_mean = wp_linalg::stats::mean(y);
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
    let n = x.rows() as f64;
    let corr = xs.t_matvec(&yc);
    corr.iter().fold(0.0_f64, |m, c| m.max(c.abs())) / n
}

/// Computes a lasso path on a log-spaced grid of `n_alphas` penalties from
/// [`alpha_max`] down to `alpha_max * eps`, warm-starting each solve from
/// the previous one (as in Figure 3: coefficients enter the model as the
/// regularization strength decreases).
pub fn lasso_path(x: &Matrix, y: &[f64], n_alphas: usize, eps: f64) -> Vec<PathPoint> {
    assert!(n_alphas >= 2, "path needs at least two alphas");
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    let a_max = alpha_max(x, y).max(1e-12);
    let (_, xs) = StandardScaler::fit_transform(x);
    let y_mean = wp_linalg::stats::mean(y);
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
    let config = CoordinateDescentConfig::default();

    let log_max = a_max.ln();
    let log_min = (a_max * eps).ln();
    let mut path = Vec::with_capacity(n_alphas);
    let mut warm: Option<Vec<f64>> = None;
    for k in 0..n_alphas {
        let t = k as f64 / (n_alphas - 1) as f64;
        let alpha = (log_max + t * (log_min - log_max)).exp();
        let (beta, _) = coordinate_descent(&xs, &yc, alpha, 1.0, &config, warm.as_deref());
        warm = Some(beta.clone());
        path.push(PathPoint {
            alpha,
            coefficients: beta,
        });
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use wp_linalg::Rng64;

    /// y depends on features 0 and 1 only; features 2..5 are noise.
    fn sparse_problem(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> = (0..5).map(|_| rng.range(-1.0, 1.0)).collect();
            y.push(3.0 * f[0] - 2.0 * f[1] + 0.01 * rng.range(-1.0, 1.0));
            rows.push(f);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn lasso_selects_true_support() {
        let (x, y) = sparse_problem(200, 1);
        let mut m = Lasso::new(0.05);
        m.fit(&x, &y);
        let active = m.active_set();
        assert!(active.contains(&0), "active: {active:?}");
        assert!(active.contains(&1), "active: {active:?}");
        // noise features shrink to zero (or near) at this penalty
        for j in 2..5 {
            assert!(
                m.coefficients()[j].abs() < 0.05,
                "feature {j} coef {}",
                m.coefficients()[j]
            );
        }
    }

    #[test]
    fn large_alpha_zeroes_everything() {
        let (x, y) = sparse_problem(100, 2);
        let a_max = alpha_max(&x, &y);
        let mut m = Lasso::new(a_max * 1.01);
        m.fit(&x, &y);
        assert!(m.active_set().is_empty(), "coefs: {:?}", m.coefficients());
    }

    #[test]
    fn tiny_alpha_approaches_ols_fit_quality() {
        let (x, y) = sparse_problem(150, 3);
        let mut m = Lasso::new(1e-5);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&y, &pred) < 0.05);
    }

    #[test]
    fn elastic_net_l2_component_spreads_correlated_features() {
        // two identical columns: lasso may pick one arbitrarily, elastic net
        // splits the weight between them.
        let mut rng = Rng64::new(4);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..150 {
            let v: f64 = rng.range(-1.0, 1.0);
            rows.push(vec![v, v, rng.range(-1.0, 1.0)]);
            y.push(2.0 * v);
        }
        let x = Matrix::from_rows(&rows);
        let mut en = ElasticNet::new(0.05, 0.5);
        en.fit(&x, &y);
        let c = &en.coefficients;
        assert!((c[0] - c[1]).abs() < 0.05, "coefs not balanced: {c:?}");
        assert!(c[0] > 0.1 && c[1] > 0.1, "both should be active: {c:?}");
    }

    #[test]
    fn path_is_monotone_in_sparsity_at_extremes() {
        let (x, y) = sparse_problem(120, 5);
        let path = lasso_path(&x, &y, 20, 1e-3);
        assert_eq!(path.len(), 20);
        let first_active = path[0].coefficients.iter().filter(|c| **c != 0.0).count();
        let last_active = path[19].coefficients.iter().filter(|c| **c != 0.0).count();
        assert!(first_active <= 1, "alpha_max point should be all-zero-ish");
        assert!(last_active >= 2, "small alpha should activate true support");
        // alphas strictly decreasing
        for w in path.windows(2) {
            assert!(w[1].alpha < w[0].alpha);
        }
    }

    #[test]
    fn predict_before_fit_panics() {
        let m = Lasso::new(0.1);
        let x = Matrix::from_rows(&[vec![1.0]]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.predict(&x)));
        assert!(r.is_err());
    }

    #[test]
    fn importances_match_abs_coefficients() {
        let (x, y) = sparse_problem(100, 6);
        let mut m = Lasso::new(0.02);
        m.fit(&x, &y);
        let imp = m.feature_importances().unwrap();
        for (i, c) in m.coefficients().iter().enumerate() {
            assert_eq!(imp[i], c.abs());
        }
    }
}

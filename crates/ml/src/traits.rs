//! Common model interfaces.

use wp_linalg::Matrix;

/// A supervised regression model.
///
/// `fit` consumes a design matrix (`samples × features`) and one target per
/// sample; `predict` maps new rows to predicted targets. Models must
/// tolerate being re-fit (each `fit` call discards previous state).
pub trait Regressor {
    /// Trains the model on `(x, y)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.rows() != y.len()` or `x` is empty.
    fn fit(&mut self, x: &Matrix, y: &[f64]);

    /// Predicts one target per row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64>;

    /// Per-feature importance scores, if the model exposes them.
    ///
    /// Linear models report `|coefficient|`; tree ensembles report total
    /// impurity reduction. Used by the RFE wrapper selector.
    fn feature_importances(&self) -> Option<Vec<f64>> {
        None
    }
}

/// A supervised classification model over integer class labels `0..k`.
pub trait Classifier {
    /// Trains the model on `(x, labels)`.
    fn fit(&mut self, x: &Matrix, labels: &[usize]);

    /// Predicts one label per row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<usize>;

    /// Per-feature importance scores, if the model exposes them.
    fn feature_importances(&self) -> Option<Vec<f64>> {
        None
    }
}

/// Validates the common fit preconditions; called by every implementation.
pub(crate) fn check_fit_inputs(x: &Matrix, n_targets: usize) {
    assert!(x.rows() > 0, "cannot fit on an empty design matrix");
    assert!(x.cols() > 0, "cannot fit with zero features");
    assert_eq!(
        x.rows(),
        n_targets,
        "design matrix has {} rows but {} targets were provided",
        x.rows(),
        n_targets
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_fit_inputs_accepts_valid() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        check_fit_inputs(&x, 2);
    }

    #[test]
    #[should_panic(expected = "empty design matrix")]
    fn check_fit_inputs_rejects_empty() {
        let x = Matrix::zeros(0, 3);
        check_fit_inputs(&x, 0);
    }

    #[test]
    #[should_panic(expected = "targets were provided")]
    fn check_fit_inputs_rejects_mismatch() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        check_fit_inputs(&x, 3);
    }
}

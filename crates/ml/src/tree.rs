//! CART decision trees: regression (variance reduction) and classification
//! (Gini impurity), with impurity-based feature importances.
//!
//! Used directly as the `DecTree` estimator in the paper's RFE/SFS wrapper
//! selectors, and as the weak learner inside the random forest and the
//! gradient-boosting ensemble.

use wp_linalg::{Matrix, Rng64};

use crate::traits::{check_fit_inputs, Classifier, Regressor};

/// Hyper-parameters shared by both tree flavours.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples required in each child.
    pub min_samples_leaf: usize,
    /// Number of features examined per split; `None` means all.
    pub max_features: Option<usize>,
    /// Seed for the feature subsampling (only used with `max_features`).
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

/// A tree node, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Mean target (regression) or majority-class index.
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Flat-arena binary tree with the split search shared between the
/// regression and classification front-ends.
#[derive(Debug, Clone, Default)]
struct TreeCore {
    nodes: Vec<Node>,
    importances: Vec<f64>,
}

/// How to measure impurity during the split search.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Criterion {
    /// Sum of squared deviations from the mean (regression).
    Variance,
    /// Gini impurity over integer labels (classification).
    Gini { n_classes: usize },
}

/// Weighted impurity of the samples in `idx`.
fn impurity(criterion: Criterion, y: &[f64], idx: &[usize]) -> f64 {
    match criterion {
        Criterion::Variance => {
            if idx.is_empty() {
                return 0.0;
            }
            let mean: f64 = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
            idx.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum()
        }
        Criterion::Gini { n_classes } => {
            if idx.is_empty() {
                return 0.0;
            }
            let mut counts = vec![0usize; n_classes];
            for &i in idx {
                counts[y[i] as usize] += 1;
            }
            let n = idx.len() as f64;
            let gini = 1.0
                - counts
                    .iter()
                    .map(|&c| {
                        let p = c as f64 / n;
                        p * p
                    })
                    .sum::<f64>();
            gini * n
        }
    }
}

/// Leaf prediction for the samples in `idx`.
fn leaf_value(criterion: Criterion, y: &[f64], idx: &[usize]) -> f64 {
    match criterion {
        Criterion::Variance => idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len().max(1) as f64,
        Criterion::Gini { n_classes } => {
            let mut counts = vec![0usize; n_classes];
            for &i in idx {
                counts[y[i] as usize] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(k, _)| k as f64)
                .unwrap_or(0.0)
        }
    }
}

struct SplitCandidate {
    feature: usize,
    threshold: f64,
    gain: f64,
    left: Vec<usize>,
    right: Vec<usize>,
}

impl TreeCore {
    fn fit(&mut self, x: &Matrix, y: &[f64], criterion: Criterion, config: &TreeConfig) {
        self.nodes.clear();
        self.importances = vec![0.0; x.cols()];
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut rng = Rng64::new(config.seed);
        self.build(x, y, criterion, config, &idx, 0, &mut rng);
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        criterion: Criterion,
        config: &TreeConfig,
        idx: &[usize],
        depth: usize,
        rng: &mut Rng64,
    ) -> usize {
        let parent_impurity = impurity(criterion, y, idx);
        let stop = depth >= config.max_depth
            || idx.len() < config.min_samples_split
            || parent_impurity <= 1e-12;
        if !stop {
            if let Some(split) = self.best_split(x, y, criterion, config, idx, parent_impurity, rng)
            {
                let node_id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                self.importances[split.feature] += split.gain;
                let left = self.build(x, y, criterion, config, &split.left, depth + 1, rng);
                let right = self.build(x, y, criterion, config, &split.right, depth + 1, rng);
                self.nodes[node_id] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                return node_id;
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf {
            value: leaf_value(criterion, y, idx),
        });
        node_id
    }

    #[allow(clippy::too_many_arguments)]
    fn best_split(
        &self,
        x: &Matrix,
        y: &[f64],
        criterion: Criterion,
        config: &TreeConfig,
        idx: &[usize],
        parent_impurity: f64,
        rng: &mut Rng64,
    ) -> Option<SplitCandidate> {
        let n_features = x.cols();
        // Choose candidate features, optionally a random subset.
        let features: Vec<usize> = match config.max_features {
            Some(k) if k < n_features => {
                let mut all: Vec<usize> = (0..n_features).collect();
                // partial Fisher-Yates
                for i in 0..k {
                    let j = i + rng.below(n_features - i);
                    all.swap(i, j);
                }
                all.truncate(k);
                all
            }
            _ => (0..n_features).collect(),
        };

        let mut best: Option<SplitCandidate> = None;
        let mut sorted = idx.to_vec();
        for &f in &features {
            sorted.sort_by(|&a, &b| {
                x[(a, f)]
                    .partial_cmp(&x[(b, f)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Evaluate midpoints between consecutive distinct values.
            for cut in
                config.min_samples_leaf..=sorted.len().saturating_sub(config.min_samples_leaf)
            {
                if cut == 0 || cut == sorted.len() {
                    continue;
                }
                let lo = x[(sorted[cut - 1], f)];
                let hi = x[(sorted[cut], f)];
                if hi <= lo {
                    continue;
                }
                let threshold = 0.5 * (lo + hi);
                let left = &sorted[..cut];
                let right = &sorted[cut..];
                let child_impurity = impurity(criterion, y, left) + impurity(criterion, y, right);
                let gain = parent_impurity - child_impurity;
                if gain > best.as_ref().map_or(1e-12, |b| b.gain) {
                    best = Some(SplitCandidate {
                        feature: f,
                        threshold,
                        gain,
                        left: left.to_vec(),
                        right: right.to_vec(),
                    });
                }
            }
        }
        best
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn normalized_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            self.importances.iter().map(|i| i / total).collect()
        } else {
            self.importances.clone()
        }
    }

    fn depth_of(&self, node: usize) -> usize {
        match &self.nodes[node] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + self.depth_of(*left).max(self.depth_of(*right)),
        }
    }
}

/// CART regression tree.
#[derive(Debug, Clone, Default)]
pub struct DecisionTreeRegressor {
    /// Tree hyper-parameters.
    pub config: TreeConfig,
    core: TreeCore,
}

impl DecisionTreeRegressor {
    /// Creates an unfitted tree with default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted tree with the given hyper-parameters.
    pub fn with_config(config: TreeConfig) -> Self {
        Self {
            config,
            core: TreeCore::default(),
        }
    }

    /// Actual depth of the fitted tree.
    pub fn depth(&self) -> usize {
        if self.core.nodes.is_empty() {
            0
        } else {
            self.core.depth_of(0)
        }
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        self.core.fit(x, y, Criterion::Variance, &self.config);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.core.nodes.is_empty(), "predict called before fit");
        x.iter_rows()
            .map(|row| self.core.predict_row(row))
            .collect()
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        Some(self.core.normalized_importances())
    }
}

/// CART classification tree (Gini impurity).
#[derive(Debug, Clone, Default)]
pub struct DecisionTreeClassifier {
    /// Tree hyper-parameters.
    pub config: TreeConfig,
    core: TreeCore,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Creates an unfitted tree with default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted tree with the given hyper-parameters.
    pub fn with_config(config: TreeConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }
}

impl Classifier for DecisionTreeClassifier {
    fn fit(&mut self, x: &Matrix, labels: &[usize]) {
        check_fit_inputs(x, labels.len());
        self.n_classes = labels.iter().max().map_or(0, |m| m + 1);
        let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        self.core.fit(
            x,
            &y,
            Criterion::Gini {
                n_classes: self.n_classes,
            },
            &self.config,
        );
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        assert!(!self.core.nodes.is_empty(), "predict called before fit");
        x.iter_rows()
            .map(|row| self.core.predict_row(row) as usize)
            .collect()
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        Some(self.core.normalized_importances())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, rmse};

    #[test]
    fn regressor_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTreeRegressor::new();
        t.fit(&x, &y);
        let pred = t.predict(&x);
        assert!(rmse(&y, &pred) < 1e-9);
        assert_eq!(t.depth(), 1, "step function needs a single split");
    }

    #[test]
    fn regressor_approximates_quadratic() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).powi(2)).collect();
        let mut t = DecisionTreeRegressor::new();
        t.fit(&x, &y);
        let pred = t.predict(&x);
        assert!(rmse(&y, &pred) < 1.0);
    }

    #[test]
    fn max_depth_limits_tree() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut t = DecisionTreeRegressor::with_config(TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        });
        t.fit(&x, &y);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn classifier_learns_two_blobs() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            rows.push(vec![i as f64 * 0.1, 0.0]);
            labels.push(0);
            rows.push(vec![10.0 + i as f64 * 0.1, 0.0]);
            labels.push(1);
        }
        let x = Matrix::from_rows(&rows);
        let mut t = DecisionTreeClassifier::new();
        t.fit(&x, &labels);
        assert_eq!(accuracy(&labels, &t.predict(&x)), 1.0);
    }

    #[test]
    fn importances_identify_splitting_feature() {
        // feature 1 is pure noise, feature 0 decides the label
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            rows.push(vec![i as f64, (i * 7 % 13) as f64]);
            y.push(if i < 20 { 0.0 } else { 10.0 });
        }
        let x = Matrix::from_rows(&rows);
        let mut t = DecisionTreeRegressor::new();
        t.fit(&x, &y);
        let imp = t.feature_importances().unwrap();
        assert!(imp[0] > 0.9, "{imp:?}");
        let total: f64 = imp.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "importances normalized");
    }

    #[test]
    fn min_samples_leaf_respected() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut t = DecisionTreeRegressor::with_config(TreeConfig {
            min_samples_leaf: 5,
            ..TreeConfig::default()
        });
        t.fit(&x, &y);
        // With 10 samples and min 5 per leaf, only the middle split works:
        // at most depth 1.
        assert!(t.depth() <= 1);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y = vec![4.2; 10];
        let mut t = DecisionTreeRegressor::new();
        t.fit(&x, &y);
        assert_eq!(t.depth(), 0);
        for (p, t) in t.predict(&x).iter().zip(&y) {
            assert!((p - t).abs() < 1e-12);
        }
    }

    #[test]
    fn feature_subsampling_is_deterministic() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * 3 % 17) as f64, (i * 5 % 11) as f64])
            .collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let cfg = TreeConfig {
            max_features: Some(1),
            seed: 9,
            ..TreeConfig::default()
        };
        let mut a = DecisionTreeRegressor::with_config(cfg.clone());
        a.fit(&x, &y);
        let mut b = DecisionTreeRegressor::with_config(cfg);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}

//! Least-squares gradient boosting with CART regression trees
//! (Friedman 2001/2002), the best-performing Table 6 strategy.
//!
//! Each stage fits a shallow tree to the current residuals and adds a
//! shrunken copy to the ensemble; optional stochastic row subsampling
//! implements the "stochastic gradient boosting" variant.

use wp_linalg::{Matrix, Rng64};

use crate::traits::{check_fit_inputs, Regressor};
use crate::tree::{DecisionTreeRegressor, TreeConfig};

/// Gradient-boosting hyper-parameters.
#[derive(Debug, Clone)]
pub struct GradientBoostingConfig {
    /// Number of boosting stages.
    pub n_estimators: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f64,
    /// Row subsampling fraction per stage (1.0 = deterministic boosting).
    pub subsample: f64,
    /// Weak-learner settings (depth 3 by default).
    pub tree: TreeConfig,
    /// Subsampling seed.
    pub seed: u64,
}

impl Default for GradientBoostingConfig {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            learning_rate: 0.1,
            subsample: 1.0,
            tree: TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            seed: 0,
        }
    }
}

/// Gradient-boosted regression trees.
#[derive(Debug, Clone, Default)]
pub struct GradientBoostingRegressor {
    /// Hyper-parameters.
    pub config: GradientBoostingConfig,
    base_prediction: f64,
    stages: Vec<DecisionTreeRegressor>,
}

impl GradientBoostingRegressor {
    /// Creates an unfitted booster with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted booster with the given settings.
    pub fn with_config(config: GradientBoostingConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Number of fitted stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Training predictions after each stage — useful for staged
    /// diagnostics and early-stopping analyses.
    pub fn staged_train_rmse(&self, x: &Matrix, y: &[f64]) -> Vec<f64> {
        let mut current = vec![self.base_prediction; x.rows()];
        let mut out = Vec::with_capacity(self.stages.len());
        for tree in &self.stages {
            for (c, p) in current.iter_mut().zip(tree.predict(x)) {
                *c += self.config.learning_rate * p;
            }
            out.push(crate::metrics::rmse(y, &current));
        }
        out
    }
}

impl Regressor for GradientBoostingRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        check_fit_inputs(x, y.len());
        assert!(
            self.config.subsample > 0.0 && self.config.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        self.base_prediction = wp_linalg::stats::mean(y);
        self.stages = Vec::with_capacity(self.config.n_estimators);
        let mut rng = Rng64::new(self.config.seed);
        let mut current = vec![self.base_prediction; x.rows()];
        let n_sub = ((x.rows() as f64) * self.config.subsample).ceil() as usize;

        for stage in 0..self.config.n_estimators {
            // Negative gradient of squared loss = residual.
            let residuals: Vec<f64> = y.iter().zip(&current).map(|(t, c)| t - c).collect();
            let (xs, rs): (Matrix, Vec<f64>) = if n_sub < x.rows() {
                let mut idx: Vec<usize> = (0..x.rows()).collect();
                rng.shuffle(&mut idx);
                idx.truncate(n_sub);
                (
                    x.select_rows(&idx),
                    idx.iter().map(|&i| residuals[i]).collect(),
                )
            } else {
                (x.clone(), residuals)
            };
            let mut tree = DecisionTreeRegressor::with_config(TreeConfig {
                seed: self.config.seed.wrapping_add(stage as u64),
                ..self.config.tree.clone()
            });
            tree.fit(&xs, &rs);
            for (c, p) in current.iter_mut().zip(tree.predict(x)) {
                *c += self.config.learning_rate * p;
            }
            self.stages.push(tree);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.stages.is_empty(), "predict called before fit");
        let mut out = vec![self.base_prediction; x.rows()];
        for tree in &self.stages {
            for (o, p) in out.iter_mut().zip(tree.predict(x)) {
                *o += self.config.learning_rate * p;
            }
        }
        out
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        let per_stage: Vec<Vec<f64>> = self
            .stages
            .iter()
            .filter_map(|t| t.feature_importances())
            .collect();
        if per_stage.is_empty() {
            return None;
        }
        let p = per_stage[0].len();
        let mut out = vec![0.0; p];
        for imp in &per_stage {
            for (o, v) in out.iter_mut().zip(imp) {
                *o += v;
            }
        }
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for o in &mut out {
                *o /= total;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn noisy_sine(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = i as f64 / n as f64 * 6.0;
            rows.push(vec![t]);
            y.push(t.sin() * 3.0 + rng.range(-0.05, 0.05));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn boosting_fits_nonlinear_function() {
        let (x, y) = noisy_sine(200, 1);
        let mut gb = GradientBoostingRegressor::new();
        gb.fit(&x, &y);
        assert!(rmse(&y, &gb.predict(&x)) < 0.3);
    }

    #[test]
    fn training_error_decreases_with_stages() {
        let (x, y) = noisy_sine(150, 2);
        let mut gb = GradientBoostingRegressor::with_config(GradientBoostingConfig {
            n_estimators: 50,
            ..GradientBoostingConfig::default()
        });
        gb.fit(&x, &y);
        let staged = gb.staged_train_rmse(&x, &y);
        assert_eq!(staged.len(), 50);
        assert!(staged[49] < staged[0] * 0.5, "{staged:?}");
        // loose monotonicity: late error never exceeds early error
        assert!(staged[49] <= staged[9]);
    }

    #[test]
    fn subsampled_boosting_still_learns() {
        let (x, y) = noisy_sine(200, 3);
        let mut gb = GradientBoostingRegressor::with_config(GradientBoostingConfig {
            subsample: 0.6,
            ..GradientBoostingConfig::default()
        });
        gb.fit(&x, &y);
        assert!(rmse(&y, &gb.predict(&x)) < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_sine(100, 4);
        let cfg = GradientBoostingConfig {
            subsample: 0.7,
            seed: 11,
            n_estimators: 20,
            ..GradientBoostingConfig::default()
        };
        let mut a = GradientBoostingRegressor::with_config(cfg.clone());
        a.fit(&x, &y);
        let mut b = GradientBoostingRegressor::with_config(cfg);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn importances_sum_to_one() {
        let (x, y) = noisy_sine(100, 5);
        let mut gb = GradientBoostingRegressor::new();
        gb.fit(&x, &y);
        let imp = gb.feature_importances().unwrap();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "subsample must be in (0, 1]")]
    fn invalid_subsample_rejected() {
        let (x, y) = noisy_sine(50, 6);
        let mut gb = GradientBoostingRegressor::with_config(GradientBoostingConfig {
            subsample: 0.0,
            ..GradientBoostingConfig::default()
        });
        gb.fit(&x, &y);
    }
}

//! From-scratch supervised learning substrate.
//!
//! This crate replaces the scikit-learn / R model zoo the paper's study is
//! built on. Each model family used anywhere in the evaluation has a
//! dedicated module:
//!
//! * [`linreg`] — ordinary least squares, ridge, and polynomial regression.
//! * [`lasso`] — Lasso and Elastic-Net coordinate descent plus
//!   regularization paths (Figure 3).
//! * [`logreg`] — binary and one-vs-rest multinomial logistic regression
//!   (the estimator behind `RFE LogReg` / `SFS LogReg`).
//! * [`tree`] — CART decision trees (regressor and classifier) with
//!   impurity-based feature importances.
//! * [`forest`] — random forests (bagging + feature subsampling).
//! * [`gbm`] — least-squares gradient boosting.
//! * [`svm`] — ε-SVR trained with SMO, linear and RBF kernels.
//! * [`mlp`] — multi-layer perceptron regressor (Adam optimizer).
//! * [`autoencoder`] — seeded symmetric MLP autoencoder whose bottleneck
//!   supplies dense embeddings (the learned plan-representation substrate).
//! * [`mars`] — multivariate adaptive regression splines.
//! * [`lmm`] — linear mixed-effects model (random intercept + slope per
//!   group).
//! * [`pca`] — principal component analysis (the Appendix C
//!   dimensionality-reduction alternative to feature selection).
//! * [`info`] — mutual information and one-way ANOVA F statistics for the
//!   filter-based feature selectors.
//! * [`metrics`], [`cv`] — evaluation metrics (RMSE/NRMSE/MAPE/R²/accuracy)
//!   and k-fold cross-validation.

#![warn(missing_docs)]

pub mod autoencoder;
pub mod cv;
pub mod forest;
pub mod gbm;
pub mod info;
pub mod lasso;
pub mod linreg;
pub mod lmm;
pub mod logreg;
pub mod mars;
pub mod metrics;
pub mod mlp;
pub mod pca;
pub mod svm;
pub mod traits;
pub mod tree;

pub use traits::{Classifier, Regressor};
pub use wp_linalg::Matrix;

//! Seeded, deterministic autoencoder for dense feature embeddings.
//!
//! "Database Workload Characterization with Query Plan Encoders" learns
//! dense encodings of query-plan statistics and shows they characterize
//! workloads better than hand-built features. This is the minimal
//! from-scratch version of that idea: a symmetric MLP autoencoder
//! (`d → hidden… → bottleneck → hidden… → d`) trained with full-batch
//! Adam on standardized inputs, reusing the dense-layer machinery from
//! [`crate::mlp`]. The bottleneck activation is the embedding.
//!
//! Determinism is load-bearing: weight init comes from one seeded
//! [`Rng64`], training is plain sequential full-batch gradient descent
//! (no data-dependent branching, no parallel reductions), so two fits
//! with the same config and data produce bit-identical weights on any
//! thread count. Downstream, that is what lets a fingerprint built from
//! the embedding honor the corpus-stable contract.

use wp_linalg::{Matrix, Rng64, StandardScaler};

use crate::mlp::{adam_step, Activation, Layer};

/// Autoencoder hyper-parameters.
#[derive(Debug, Clone)]
pub struct AutoencoderConfig {
    /// Encoder hidden widths between input and bottleneck; the decoder
    /// mirrors them in reverse.
    pub hidden_layers: Vec<usize>,
    /// Bottleneck (embedding) width.
    pub bottleneck: usize,
    /// Hidden-layer activation (the output layer is linear).
    pub activation: Activation,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 weight decay.
    pub l2: f64,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        Self {
            hidden_layers: vec![16],
            bottleneck: 4,
            activation: Activation::Tanh,
            learning_rate: 5e-3,
            epochs: 200,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// Symmetric MLP autoencoder; [`Autoencoder::encode`] yields the
/// bottleneck embedding of a row.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    /// Hyper-parameters.
    pub config: AutoencoderConfig,
    /// Encoder then decoder layers; the encoder is the first
    /// `hidden_layers.len() + 1` entries.
    layers: Vec<Layer>,
    n_encoder_layers: usize,
    scaler: Option<StandardScaler>,
}

impl Default for Autoencoder {
    fn default() -> Self {
        Self::new(AutoencoderConfig::default())
    }
}

impl Autoencoder {
    /// Creates an unfitted autoencoder with the given settings.
    pub fn new(config: AutoencoderConfig) -> Self {
        assert!(config.bottleneck > 0, "bottleneck width must be positive");
        assert!(
            config.hidden_layers.iter().all(|&w| w > 0),
            "hidden layer widths must be positive"
        );
        Self {
            config,
            layers: Vec::new(),
            n_encoder_layers: 0,
            scaler: None,
        }
    }

    /// True once [`Autoencoder::fit`] has run.
    pub fn is_fitted(&self) -> bool {
        !self.layers.is_empty()
    }

    /// Embedding width.
    pub fn bottleneck(&self) -> usize {
        self.config.bottleneck
    }

    /// Forward pass over every layer, returning all activations
    /// (input included). Hidden layers are activated; the final
    /// reconstruction layer is linear.
    fn forward_all(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = vec![input.to_vec()];
        let n_layers = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(acts.last().unwrap());
            if li + 1 < n_layers {
                for v in &mut z {
                    *v = self.config.activation.apply(*v);
                }
            }
            acts.push(z);
        }
        acts
    }

    /// Trains the autoencoder to reconstruct the rows of `x`
    /// (`samples × features`). Re-fitting discards previous state.
    ///
    /// # Panics
    ///
    /// Panics when `x` is empty.
    pub fn fit(&mut self, x: &Matrix) {
        assert!(x.rows() > 0, "cannot fit on an empty matrix");
        assert!(x.cols() > 0, "cannot fit with zero features");
        let (scaler, xs) = StandardScaler::fit_transform(x);

        let mut rng = Rng64::new(self.config.seed);
        let mut sizes = vec![x.cols()];
        sizes.extend(&self.config.hidden_layers);
        sizes.push(self.config.bottleneck);
        self.n_encoder_layers = sizes.len() - 1;
        let mut rev: Vec<usize> = sizes.clone();
        rev.pop();
        rev.reverse();
        sizes.extend(rev);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let n = xs.rows() as f64;
        for epoch in 0..self.config.epochs {
            let t = epoch + 1;
            let mut gw: Vec<Matrix> = self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect();
            let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

            for r in 0..xs.rows() {
                let acts = self.forward_all(xs.row(r));
                let output = acts.last().unwrap();
                // squared reconstruction loss (halved): delta = ŷ − x
                let mut delta: Vec<f64> =
                    output.iter().zip(xs.row(r)).map(|(o, t)| o - t).collect();
                for li in (0..self.layers.len()).rev() {
                    let input_act = &acts[li];
                    for (o, &d) in delta.iter().enumerate() {
                        gb[li][o] += d;
                        for (c, &a) in input_act.iter().enumerate() {
                            gw[li][(o, c)] += d * a;
                        }
                    }
                    if li == 0 {
                        break;
                    }
                    let mut new_delta = vec![0.0; self.layers[li].w.cols()];
                    for (o, &d) in delta.iter().enumerate() {
                        let wrow = self.layers[li].w.row(o);
                        for (c, nd) in new_delta.iter_mut().enumerate() {
                            *nd += d * wrow[c];
                        }
                    }
                    for (c, nd) in new_delta.iter_mut().enumerate() {
                        *nd *= self.config.activation.derivative_from_output(acts[li][c]);
                    }
                    delta = new_delta;
                }
            }

            let lr = self.config.learning_rate;
            let l2 = self.config.l2;
            for (li, layer) in self.layers.iter_mut().enumerate() {
                for rr in 0..layer.w.rows() {
                    for cc in 0..layer.w.cols() {
                        let g = gw[li][(rr, cc)] / n + l2 * layer.w[(rr, cc)];
                        let (mut m, mut v, mut p) =
                            (layer.mw[(rr, cc)], layer.vw[(rr, cc)], layer.w[(rr, cc)]);
                        adam_step(t, lr, g, &mut m, &mut v, &mut p);
                        layer.mw[(rr, cc)] = m;
                        layer.vw[(rr, cc)] = v;
                        layer.w[(rr, cc)] = p;
                    }
                }
                for (o, &g_raw) in gb[li].iter().enumerate() {
                    let g = g_raw / n;
                    let (mut m, mut v, mut p) = (layer.mb[o], layer.vb[o], layer.b[o]);
                    adam_step(t, lr, g, &mut m, &mut v, &mut p);
                    layer.mb[o] = m;
                    layer.vb[o] = v;
                    layer.b[o] = p;
                }
            }
        }
        self.scaler = Some(scaler);
    }

    /// The bottleneck embedding of one raw (unstandardized) row.
    ///
    /// # Panics
    ///
    /// Panics when called before [`Autoencoder::fit`] or when `row` has
    /// the wrong width.
    pub fn encode(&self, row: &[f64]) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("encode called before fit");
        let x = Matrix::from_rows(&[row.to_vec()]);
        let xs = scaler.transform(&x);
        let mut act = xs.row(0).to_vec();
        for (li, layer) in self.layers[..self.n_encoder_layers].iter().enumerate() {
            let mut z = layer.forward(&act);
            // the bottleneck itself is a hidden layer of the full net,
            // so it is activated unless it is also the output layer
            if li + 1 < self.layers.len() {
                for v in &mut z {
                    *v = self.config.activation.apply(*v);
                }
            }
            act = z;
        }
        act
    }

    /// Embeds every row of `x`: a `samples × bottleneck` matrix.
    pub fn encode_batch(&self, x: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = x.iter_rows().map(|r| self.encode(r)).collect();
        Matrix::from_rows(&rows)
    }

    /// Mean squared reconstruction error over the rows of `x`, in
    /// standardized units.
    pub fn reconstruction_error(&self, x: &Matrix) -> f64 {
        let scaler = self.scaler.as_ref().expect("called before fit");
        let xs = scaler.transform(x);
        let mut total = 0.0;
        for r in 0..xs.rows() {
            let acts = self.forward_all(xs.row(r));
            let out = acts.last().unwrap();
            for (o, t) in out.iter().zip(xs.row(r)) {
                total += (o - t) * (o - t);
            }
        }
        total / (xs.rows() * xs.cols()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> Matrix {
        // rows live near a 2-D subspace of a 6-D space
        let mut rng = Rng64::new(42);
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|_| {
                let a = rng.range(-1.0, 1.0);
                let b = rng.range(-1.0, 1.0);
                vec![a, b, a + b, a - b, 2.0 * a, 0.5 * b]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn embedding_has_bottleneck_width() {
        let x = toy_data();
        let mut ae = Autoencoder::new(AutoencoderConfig {
            bottleneck: 2,
            epochs: 50,
            ..AutoencoderConfig::default()
        });
        ae.fit(&x);
        assert_eq!(ae.encode(x.row(0)).len(), 2);
        let e = ae.encode_batch(&x);
        assert_eq!(e.shape(), (60, 2));
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let x = toy_data();
        let mut brief = Autoencoder::new(AutoencoderConfig {
            bottleneck: 2,
            epochs: 1,
            ..AutoencoderConfig::default()
        });
        brief.fit(&x);
        let mut trained = Autoencoder::new(AutoencoderConfig {
            bottleneck: 2,
            epochs: 300,
            ..AutoencoderConfig::default()
        });
        trained.fit(&x);
        assert!(
            trained.reconstruction_error(&x) < brief.reconstruction_error(&x) * 0.5,
            "trained {} vs brief {}",
            trained.reconstruction_error(&x),
            brief.reconstruction_error(&x)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let x = toy_data();
        let cfg = AutoencoderConfig {
            bottleneck: 3,
            epochs: 40,
            seed: 7,
            ..AutoencoderConfig::default()
        };
        let mut a = Autoencoder::new(cfg.clone());
        a.fit(&x);
        let mut b = Autoencoder::new(cfg);
        b.fit(&x);
        for r in 0..x.rows() {
            let ea = a.encode(x.row(r));
            let eb = b.encode(x.row(r));
            let bits_a: Vec<u64> = ea.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = eb.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "row {r}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let x = toy_data();
        let mut a = Autoencoder::new(AutoencoderConfig {
            seed: 1,
            epochs: 20,
            ..AutoencoderConfig::default()
        });
        a.fit(&x);
        let mut b = Autoencoder::new(AutoencoderConfig {
            seed: 2,
            epochs: 20,
            ..AutoencoderConfig::default()
        });
        b.fit(&x);
        assert_ne!(a.encode(x.row(0)), b.encode(x.row(0)));
    }

    #[test]
    fn embeddings_are_finite_on_constant_columns() {
        // constant features have zero variance — the scaler must not
        // produce NaNs that poison the embedding
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 3.0, -1.0]).collect();
        let x = Matrix::from_rows(&rows);
        let mut ae = Autoencoder::new(AutoencoderConfig {
            bottleneck: 2,
            epochs: 30,
            ..AutoencoderConfig::default()
        });
        ae.fit(&x);
        for r in 0..x.rows() {
            assert!(ae.encode(x.row(r)).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "empty matrix")]
    fn fit_rejects_empty() {
        let mut ae = Autoencoder::default();
        ae.fit(&Matrix::zeros(0, 4));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn encode_before_fit_panics() {
        let ae = Autoencoder::default();
        let _ = ae.encode(&[1.0, 2.0]);
    }
}

//! Linear mixed-effects model (LMM) with group-specific random intercepts
//! and slopes, fit by expectation–maximization.
//!
//! The paper's Figure 8 builds LMM scaling models where the *data group*
//! (time-of-day of the experiment run) is the grouping factor: each group
//! gets its own intercept/slope deviation around the shared fixed effect.
//!
//! Model, for observation `i` in group `g`:
//!
//! ```text
//! y_gi = x_giᵀ β + z_giᵀ b_g + ε_gi,   b_g ~ N(0, D),  ε ~ N(0, σ²)
//! ```
//!
//! with `z = [1, x]` (random intercept + random slopes). The EM loop
//! alternates posterior means of `b_g` (ridge-like per-group solves) with
//! closed-form updates of `β`, `D`, and `σ²`.

use wp_linalg::solve::lu_solve;
use wp_linalg::{lstsq, Matrix};

use crate::traits::{check_fit_inputs, Regressor};

/// Which random effects each group receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomEffects {
    /// Group-specific intercept only.
    Intercept,
    /// Group-specific intercept and per-feature slopes.
    InterceptAndSlope,
}

/// LMM hyper-parameters.
#[derive(Debug, Clone)]
pub struct LmmConfig {
    /// Random-effects structure.
    pub effects: RandomEffects,
    /// EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the σ² update.
    pub tol: f64,
}

impl Default for LmmConfig {
    fn default() -> Self {
        Self {
            effects: RandomEffects::InterceptAndSlope,
            max_iter: 50,
            tol: 1e-8,
        }
    }
}

/// Linear mixed-effects regressor.
#[derive(Debug, Clone, Default)]
pub struct LinearMixedModel {
    /// Hyper-parameters.
    pub config: LmmConfig,
    /// Fixed-effect coefficients `[intercept, per-feature…]`.
    pub fixed: Vec<f64>,
    /// Residual variance σ².
    pub sigma2: f64,
    /// Posterior-mean random effects per group id.
    pub random: Vec<Vec<f64>>,
    /// Random-effect covariance `D` (diagonal stored).
    pub d_diag: Vec<f64>,
    n_features: usize,
}

impl LinearMixedModel {
    /// Creates an unfitted LMM with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unfitted LMM with the given settings.
    pub fn with_config(config: LmmConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    fn z_dim(&self, p: usize) -> usize {
        match self.config.effects {
            RandomEffects::Intercept => 1,
            RandomEffects::InterceptAndSlope => 1 + p,
        }
    }

    fn z_row(&self, row: &[f64]) -> Vec<f64> {
        match self.config.effects {
            RandomEffects::Intercept => vec![1.0],
            RandomEffects::InterceptAndSlope => {
                let mut z = Vec::with_capacity(1 + row.len());
                z.push(1.0);
                z.extend_from_slice(row);
                z
            }
        }
    }

    /// Fits the model with explicit group labels (`0..n_groups`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or an empty design.
    pub fn fit_grouped(&mut self, x: &Matrix, y: &[f64], groups: &[usize]) {
        check_fit_inputs(x, y.len());
        assert_eq!(groups.len(), y.len(), "group labels length mismatch");
        let n_groups = groups.iter().max().map_or(0, |m| m + 1);
        let p = x.cols();
        let q = self.z_dim(p);
        self.n_features = p;

        // group membership lists
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        for (i, &g) in groups.iter().enumerate() {
            members[g].push(i);
        }

        let xd = x.with_intercept();
        // initialize with pooled OLS
        let mut beta = lstsq(&xd, y, 1e-8);
        let mut sigma2 = {
            let pred = xd.matvec(&beta);
            let ss: f64 = y.iter().zip(&pred).map(|(t, f)| (t - f) * (t - f)).sum();
            (ss / y.len() as f64).max(1e-8)
        };
        let mut d_diag = vec![sigma2.max(1e-6); q];
        let mut b: Vec<Vec<f64>> = vec![vec![0.0; q]; n_groups];

        for _ in 0..self.config.max_iter {
            // ---- E-step: posterior means of random effects ----
            for (g, idx) in members.iter().enumerate() {
                if idx.is_empty() {
                    continue;
                }
                // Solve (ZᵀZ/σ² + D⁻¹) b = Zᵀ r / σ²
                let mut a = Matrix::zeros(q, q);
                let mut rhs = vec![0.0; q];
                for &i in idx {
                    let z = self.z_row(x.row(i));
                    let fixed_fit: f64 = xd.row(i).iter().zip(&beta).map(|(a, b)| a * b).sum();
                    let r = y[i] - fixed_fit;
                    for a_i in 0..q {
                        rhs[a_i] += z[a_i] * r / sigma2;
                        for a_j in 0..q {
                            a[(a_i, a_j)] += z[a_i] * z[a_j] / sigma2;
                        }
                    }
                }
                for a_i in 0..q {
                    a[(a_i, a_i)] += 1.0 / d_diag[a_i].max(1e-10);
                }
                if let Some(sol) = lu_solve(&a, &rhs) {
                    b[g] = sol;
                }
            }

            // ---- M-step ----
            // Fixed effects from residuals after removing random effects.
            let adjusted: Vec<f64> = (0..y.len())
                .map(|i| {
                    let g = groups[i];
                    let z = self.z_row(x.row(i));
                    y[i] - wp_linalg::ops::dot(&z, &b[g])
                })
                .collect();
            beta = lstsq(&xd, &adjusted, 1e-8);

            // Residual variance.
            let mut ss = 0.0;
            for i in 0..y.len() {
                let g = groups[i];
                let z = self.z_row(x.row(i));
                let fit: f64 = xd.row(i).iter().zip(&beta).map(|(a, c)| a * c).sum::<f64>()
                    + wp_linalg::ops::dot(&z, &b[g]);
                ss += (y[i] - fit) * (y[i] - fit);
            }
            let new_sigma2 = (ss / y.len() as f64).max(1e-10);

            // Random-effect variances (diagonal D), with a floor so empty
            // groups cannot collapse the prior.
            let active: Vec<&Vec<f64>> = members
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.is_empty())
                .map(|(g, _)| &b[g])
                .collect();
            if !active.is_empty() {
                for k in 0..q {
                    let v: f64 =
                        active.iter().map(|bg| bg[k] * bg[k]).sum::<f64>() / active.len() as f64;
                    d_diag[k] = v.max(1e-8);
                }
            }

            let converged = (new_sigma2 - sigma2).abs() < self.config.tol;
            sigma2 = new_sigma2;
            if converged {
                break;
            }
        }

        self.fixed = beta;
        self.sigma2 = sigma2;
        self.random = b;
        self.d_diag = d_diag;
    }

    /// Predicts for rows of `x` belonging to `group`; `None` uses the
    /// population-level fixed effects only (a new, unseen group).
    pub fn predict_group(&self, x: &Matrix, group: Option<usize>) -> Vec<f64> {
        assert!(!self.fixed.is_empty(), "predict called before fit");
        assert_eq!(x.cols(), self.n_features, "feature-count mismatch");
        x.iter_rows()
            .map(|row| {
                let mut fit = self.fixed[0]
                    + row
                        .iter()
                        .zip(&self.fixed[1..])
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                if let Some(g) = group {
                    if let Some(bg) = self.random.get(g) {
                        fit += wp_linalg::ops::dot(&self.z_row(row), bg);
                    }
                }
                fit
            })
            .collect()
    }

    /// Symmetric 95 % prediction band half-width (`1.96 σ`).
    pub fn prediction_interval_halfwidth(&self) -> f64 {
        1.96 * self.sigma2.sqrt()
    }
}

impl Regressor for LinearMixedModel {
    /// Trait-level `fit` treats the whole dataset as a single group, which
    /// reduces the LMM to (shrunken) linear regression. Callers with group
    /// structure should use [`LinearMixedModel::fit_grouped`].
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let groups = vec![0usize; y.len()];
        self.fit_grouped(x, y, &groups);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        // Population-level prediction plus the single group's effects when
        // the model was fit un-grouped.
        let group = if self.random.len() == 1 {
            Some(0)
        } else {
            None
        };
        self.predict_group(x, group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use wp_linalg::Rng64;

    /// Three groups sharing slope 2.0 with intercepts −2, 0, +2.
    fn grouped_data(seed: u64) -> (Matrix, Vec<f64>, Vec<usize>) {
        let mut rng = Rng64::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..3usize {
            let offset = (g as f64 - 1.0) * 2.0;
            for _ in 0..30 {
                let x: f64 = rng.range(0.0, 10.0);
                rows.push(vec![x]);
                y.push(2.0 * x + offset + rng.range(-0.05, 0.05));
                groups.push(g);
            }
        }
        (Matrix::from_rows(&rows), y, groups)
    }

    #[test]
    fn recovers_shared_slope() {
        let (x, y, groups) = grouped_data(1);
        let mut m = LinearMixedModel::new();
        m.fit_grouped(&x, &y, &groups);
        assert!((m.fixed[1] - 2.0).abs() < 0.1, "slope: {}", m.fixed[1]);
    }

    #[test]
    fn group_predictions_absorb_group_offsets() {
        let (x, y, groups) = grouped_data(2);
        let mut m = LinearMixedModel::new();
        m.fit_grouped(&x, &y, &groups);
        // per-group predictions should be much better than population-level
        let mut grouped_err = 0.0;
        let mut pooled_err = 0.0;
        for g in 0..3usize {
            let idx: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, &gg)| gg == g)
                .map(|(i, _)| i)
                .collect();
            let xg = x.select_rows(&idx);
            let yg: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
            grouped_err += rmse(&yg, &m.predict_group(&xg, Some(g)));
            pooled_err += rmse(&yg, &m.predict_group(&xg, None));
        }
        assert!(
            grouped_err < pooled_err * 0.5,
            "grouped {grouped_err} vs pooled {pooled_err}"
        );
    }

    #[test]
    fn unseen_group_falls_back_to_fixed_effects() {
        let (x, y, groups) = grouped_data(3);
        let mut m = LinearMixedModel::new();
        m.fit_grouped(&x, &y, &groups);
        let test = Matrix::from_rows(&[vec![5.0]]);
        let p = m.predict_group(&test, None);
        // population-level: y ≈ 2*5 + mean(offsets) = 10
        assert!((p[0] - 10.0).abs() < 0.5, "{p:?}");
    }

    #[test]
    fn regressor_trait_single_group() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let mut m = LinearMixedModel::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&y, &pred) < 0.2, "{pred:?}");
    }

    #[test]
    fn sigma2_reflects_noise_level() {
        let (x, y, groups) = grouped_data(4);
        let mut m = LinearMixedModel::new();
        m.fit_grouped(&x, &y, &groups);
        // noise was uniform(-0.05, 0.05): σ² ≈ 0.05²/3 ≈ 8e-4
        assert!(m.sigma2 < 0.01, "sigma2 {}", m.sigma2);
        assert!(m.prediction_interval_halfwidth() < 0.25);
    }

    #[test]
    fn intercept_only_effects() {
        let (x, y, groups) = grouped_data(5);
        let mut m = LinearMixedModel::with_config(LmmConfig {
            effects: RandomEffects::Intercept,
            ..LmmConfig::default()
        });
        m.fit_grouped(&x, &y, &groups);
        assert_eq!(m.random[0].len(), 1);
        assert!((m.fixed[1] - 2.0).abs() < 0.1);
    }
}

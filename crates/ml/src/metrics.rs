//! Evaluation metrics.
//!
//! The paper reports NRMSE (range-normalized RMSE, §6.2) for the scaling
//! models, MAPE for the end-to-end experiment (§6.2.3), and classification
//! accuracy for the feature-selection study (Table 3).

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "mse length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Range-normalized RMSE: `RMSE / (max(y_true) - min(y_true))`.
///
/// This is the paper's Table 6 metric ("deviation from the actual observed
/// throughput value ranges"). When the observed range is zero the plain
/// RMSE is returned so the metric stays finite.
pub fn nrmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    let r = rmse(y_true, y_pred);
    let lo = wp_linalg::stats::min(y_true);
    let hi = wp_linalg::stats::max(y_true);
    let range = hi - lo;
    if range > 0.0 {
        r / range
    } else {
        r
    }
}

/// Mean absolute percentage error, expressed as a fraction (0.2 = 20 %).
///
/// Samples with `y_true == 0` are skipped to keep the metric defined.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "mape length mismatch");
    let mut total = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        if *t != 0.0 {
            total += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "mae length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Coefficient of determination R².
///
/// A constant target makes the score undefined; we return `0.0` in that
/// case so downstream model selection stays finite.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "r2 length mismatch");
    let m = wp_linalg::stats::mean(y_true);
    let ss_tot: f64 = y_true.iter().map(|t| (t - m) * (t - m)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Fraction of exactly matching labels.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "accuracy length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// Absolute percentage error of a single prediction, as a fraction.
pub fn abs_pct_error(y_true: f64, y_pred: f64) -> f64 {
    if y_true == 0.0 {
        return y_pred.abs();
    }
    ((y_true - y_pred) / y_true).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(nrmse(&y, &y), 0.0);
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn rmse_known_value() {
        let t = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((rmse(&t, &p) - (12.5_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nrmse_normalizes_by_range() {
        let t = [0.0, 10.0];
        let p = [1.0, 9.0];
        // rmse = 1, range = 10
        assert!((nrmse(&t, &p) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn nrmse_constant_target_falls_back_to_rmse() {
        let t = [5.0, 5.0];
        let p = [4.0, 6.0];
        assert!((nrmse(&t, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let t = [0.0, 10.0];
        let p = [100.0, 5.0];
        assert!((mape(&t, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn r2_zero_for_mean_prediction() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_negative_for_bad_model() {
        let t = [1.0, 2.0, 3.0];
        let p = [10.0, 10.0, 10.0];
        assert!(r2(&t, &p) < 0.0);
    }

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn abs_pct_error_fraction() {
        assert!((abs_pct_error(100.0, 90.0) - 0.1).abs() < 1e-12);
        assert!((abs_pct_error(0.0, 0.5) - 0.5).abs() < 1e-12);
    }
}

//! Pipeline orchestration.

use wp_featsel::aggregate::aggregate_rankings;
use wp_featsel::wrapper::WrapperConfig;
use wp_featsel::Strategy;
use wp_predict::predictor::{scaling_data_from_simulation, ScalingPredictor};
use wp_predict::ModelStrategy;
use wp_similarity::fingerprinter::{fingerprinter, FingerprintConfig};
use wp_similarity::measure::{normalize_distances, try_distance_matrix, Measure, Norm};
use wp_similarity::repr::{extract, Representation};
use wp_telemetry::{ExperimentRun, FeatureId};
use wp_workloads::dataset::LabeledDataset;
use wp_workloads::engine::Simulator;
use wp_workloads::sku::Sku;
use wp_workloads::spec::WorkloadSpec;

/// Pipeline configuration; the defaults follow the paper's §6.2.3
/// end-to-end setup (RFE-LogReg top-7, Hist-FP with the L2,1 norm,
/// pairwise SVM scaling models).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Feature-selection strategy.
    pub selection: Strategy,
    /// How many features to keep.
    pub top_k: usize,
    /// Data representation runs are fingerprinted in.
    pub representation: Representation,
    /// Similarity measure over the fingerprints.
    pub measure: Measure,
    /// Histogram bins for Hist-FP.
    pub nbins: usize,
    /// Scaling-model strategy.
    pub model: ModelStrategy,
    /// Wrapper-selector tuning.
    pub wrapper: WrapperConfig,
    /// Repetitions per experiment (the paper's 3).
    pub runs: usize,
    /// Sub-experiments per run (the paper's 10).
    pub sub_experiments: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            selection: Strategy::Rfe(wp_featsel::wrapper::Estimator::LogisticRegression),
            top_k: 7,
            representation: Representation::HistFp,
            measure: Measure::Norm(Norm::L21),
            nbins: 10,
            model: ModelStrategy::Svm,
            wrapper: WrapperConfig::default(),
            runs: 3,
            sub_experiments: 10,
        }
    }
}

impl PipelineConfig {
    /// The fingerprint-construction parameters implied by this pipeline
    /// configuration (currently just the bin count on top of the
    /// per-representation defaults).
    pub fn fingerprint_config(&self) -> FingerprintConfig {
        FingerprintConfig {
            nbins: self.nbins,
            ..FingerprintConfig::default()
        }
    }
}

/// Distance from the target workload to one reference workload.
#[derive(Debug, Clone)]
pub struct SimilarityVerdict {
    /// Reference workload name.
    pub workload: String,
    /// Mean normalized distance between the target's runs and the
    /// reference's runs.
    pub distance: f64,
}

/// Everything the pipeline produced for one prediction request.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Features the selection stage kept (best first).
    pub selected_features: Vec<FeatureId>,
    /// Normalized distance to every reference workload, ascending.
    pub similarity: Vec<SimilarityVerdict>,
    /// The most similar reference workload.
    pub most_similar: String,
    /// Mean observed target throughput on the source SKU.
    pub observed_throughput: f64,
    /// Predicted target throughput on the destination SKU.
    pub predicted_throughput: f64,
    /// Simulated ground-truth throughput on the destination SKU
    /// (available because the substrate is a simulator; real deployments
    /// obtain it only after migrating).
    pub actual_throughput: f64,
    /// `|actual − predicted| / actual`.
    pub mape: f64,
}

/// Stage 1: rank features on a labeled reference corpus and keep the
/// top-k. Rankings are computed per (workload, run) experiment and
/// aggregated by rank sum (§4.2).
pub fn select_features(
    sim: &Simulator,
    references: &[WorkloadSpec],
    sku: &Sku,
    terminals: impl Fn(&WorkloadSpec) -> usize,
    config: &PipelineConfig,
) -> Vec<FeatureId> {
    let universe = FeatureId::all();
    // one labeled dataset across all references (needed by label-aware
    // strategies), built per run so each experiment yields a ranking
    let mut rankings = Vec::new();
    for r in 0..config.runs {
        let sets: Vec<_> = references
            .iter()
            .map(|spec| {
                sim.observations(spec, sku, terminals(spec), r, r % 3, config.sub_experiments)
            })
            .collect();
        let ds = LabeledDataset::from_observation_sets(&sets);
        rankings.push(
            config
                .selection
                .rank(&ds.features, &ds.labels, &universe, &config.wrapper),
        );
    }
    aggregate_rankings(&rankings).top_k(config.top_k)
}

/// Stage 2: find the reference workload most similar to the target.
///
/// `target_runs` and each entry of `reference_runs` are repeated
/// executions on the *same* hardware; distances are computed between
/// fingerprints of the configured representation (Hist-FP by default) on
/// the selected features and averaged over run pairs, then min-max
/// normalized across references.
///
/// Errors on an empty target/reference set or fingerprints the measure
/// cannot compare. For a corpus that is queried repeatedly, the indexed
/// variant in [`crate::retrieval`] avoids the full pairwise matrix.
pub fn find_most_similar(
    target_runs: &[ExperimentRun],
    reference_runs: &[(String, Vec<ExperimentRun>)],
    features: &[FeatureId],
    config: &PipelineConfig,
) -> Result<Vec<SimilarityVerdict>, String> {
    if target_runs.is_empty() {
        return Err("need target runs".to_string());
    }
    if reference_runs.is_empty() {
        return Err("need reference runs".to_string());
    }

    // Build one fingerprint per run, jointly normalized.
    let mut all_runs: Vec<&ExperimentRun> = target_runs.iter().collect();
    let mut ref_spans = Vec::new();
    for (_, runs) in reference_runs {
        let start = all_runs.len();
        all_runs.extend(runs.iter());
        ref_spans.push(start..all_runs.len());
    }
    let data: Vec<_> = all_runs.iter().map(|r| extract(r, features)).collect();
    let builder = fingerprinter(config.representation, &config.fingerprint_config());
    if !builder.supports_measure(config.measure) {
        return Err(format!(
            "measure {:?} is not defined for the {} representation",
            config.measure,
            config.representation.label()
        ));
    }
    let fps = builder.fingerprints(&data);
    let d = normalize_distances(&try_distance_matrix(&fps, config.measure)?);

    let n_target = target_runs.len();
    let mut verdicts: Vec<SimilarityVerdict> = reference_runs
        .iter()
        .zip(&ref_spans)
        .map(|((name, _), span)| {
            let mut total = 0.0;
            let mut count = 0usize;
            for t in 0..n_target {
                for r in span.clone() {
                    total += d[(t, r)];
                    count += 1;
                }
            }
            SimilarityVerdict {
                workload: name.clone(),
                distance: total / count.max(1) as f64,
            }
        })
        .collect();
    verdicts.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(verdicts)
}

/// Stage 3: fit a scaling predictor on the chosen reference workload and
/// transfer its `from → to` factor to the target's observation.
pub fn predict_scaling(
    sim: &Simulator,
    reference: &WorkloadSpec,
    from_sku: &Sku,
    to_sku: &Sku,
    terminals: usize,
    observed: f64,
    config: &PipelineConfig,
) -> f64 {
    let data = scaling_data_from_simulation(
        sim,
        reference,
        &[from_sku.clone(), to_sku.clone()],
        terminals,
        config.runs,
        config.sub_experiments,
    );
    let predictor = ScalingPredictor::fit(reference.name.clone(), config.model, &data);
    predictor
        .predict(from_sku.cpus as f64, to_sku.cpus as f64, observed)
        .expect("pair model exists by construction")
}

/// The assembled pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// Stage configuration.
    pub config: PipelineConfig,
    /// Telemetry source.
    pub sim: Simulator,
}

impl Pipeline {
    /// Creates a pipeline with default configuration over a seeded
    /// simulator.
    pub fn new(seed: u64) -> Self {
        Self {
            config: PipelineConfig::default(),
            sim: Simulator::new(seed),
        }
    }

    /// Full end-to-end prediction (§6.2.3): observe `target` on
    /// `from_sku` only, select features on the references, find the most
    /// similar reference, and predict the target's throughput on
    /// `to_sku`.
    pub fn run(
        &self,
        references: &[WorkloadSpec],
        target: &WorkloadSpec,
        from_sku: &Sku,
        to_sku: &Sku,
        terminals: usize,
    ) -> PipelineOutcome {
        assert!(!references.is_empty(), "need reference workloads");
        let cfg = &self.config;
        let ref_terminals = |spec: &WorkloadSpec| if spec.name == "TPC-H" { 1 } else { terminals };

        // Stage 1 — feature selection on the reference corpus.
        let selected = select_features(&self.sim, references, from_sku, ref_terminals, cfg);

        // Stage 2 — similarity between target and references on from_sku.
        let target_runs: Vec<ExperimentRun> = (0..cfg.runs)
            .map(|r| self.sim.simulate(target, from_sku, terminals, r, r % 3))
            .collect();
        let reference_runs: Vec<(String, Vec<ExperimentRun>)> = references
            .iter()
            .map(|spec| {
                let runs = (0..cfg.runs)
                    .map(|r| {
                        self.sim
                            .simulate(spec, from_sku, ref_terminals(spec), r, r % 3)
                    })
                    .collect();
                (spec.name.clone(), runs)
            })
            .collect();
        let similarity = find_most_similar(&target_runs, &reference_runs, &selected, cfg)
            .expect("simulated runs always produce comparable fingerprints");
        let most_similar = similarity[0].workload.clone();
        let reference = references
            .iter()
            .find(|s| s.name == most_similar)
            .expect("verdict names come from references");

        // Stage 3 — scaling prediction.
        let observed =
            wp_linalg::stats::mean(&target_runs.iter().map(|r| r.throughput).collect::<Vec<_>>());
        let predicted = predict_scaling(
            &self.sim,
            reference,
            from_sku,
            to_sku,
            ref_terminals(reference),
            observed,
            cfg,
        );

        // Ground truth for verification.
        let actual = wp_linalg::stats::mean(
            &(0..cfg.runs)
                .map(|r| {
                    self.sim
                        .simulate(target, to_sku, terminals, r, r % 3)
                        .throughput
                })
                .collect::<Vec<_>>(),
        );

        PipelineOutcome {
            selected_features: selected,
            similarity,
            most_similar,
            observed_throughput: observed,
            predicted_throughput: predicted,
            actual_throughput: actual,
            mape: (actual - predicted).abs() / actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_workloads::benchmarks;

    fn fast_pipeline() -> Pipeline {
        let mut p = Pipeline::new(5);
        p.sim.config.samples = 60;
        // keep the wrapper selector cheap in unit tests
        p.config.selection = Strategy::FAnova;
        p.config.wrapper.cv_folds = 2;
        p
    }

    #[test]
    fn end_to_end_ycsb_prediction() {
        let p = fast_pipeline();
        let references = vec![
            benchmarks::tpcc(),
            benchmarks::tpch(),
            benchmarks::twitter(),
        ];
        let outcome = p.run(
            &references,
            &benchmarks::ycsb(),
            &Sku::new("cpu2", 2, 64.0),
            &Sku::new("cpu8", 8, 64.0),
            8,
        );
        assert_eq!(outcome.selected_features.len(), 7);
        assert_eq!(outcome.similarity.len(), 3);
        // the paper's §6.2.3 finding: YCSB is most similar to TPC-C
        assert_eq!(outcome.most_similar, "TPC-C", "{:?}", outcome.similarity);
        assert!(outcome.predicted_throughput > outcome.observed_throughput);
        assert!(outcome.mape < 0.6, "mape {}", outcome.mape);
    }

    #[test]
    fn similarity_stage_identifies_same_workload() {
        let p = fast_pipeline();
        let sku = Sku::new("cpu16", 16, 64.0);
        let target: Vec<ExperimentRun> = (3..5)
            .map(|r| p.sim.simulate(&benchmarks::tpcc(), &sku, 8, r, r % 3))
            .collect();
        let refs: Vec<(String, Vec<ExperimentRun>)> = [
            benchmarks::tpcc(),
            benchmarks::tpch(),
            benchmarks::twitter(),
        ]
        .iter()
        .map(|spec| {
            let terminals = if spec.name == "TPC-H" { 1 } else { 8 };
            let runs = (0..3)
                .map(|r| p.sim.simulate(spec, &sku, terminals, r, r % 3))
                .collect();
            (spec.name.clone(), runs)
        })
        .collect();
        let verdicts = find_most_similar(&target, &refs, &FeatureId::all(), &p.config).unwrap();
        assert_eq!(verdicts[0].workload, "TPC-C", "{verdicts:?}");
    }

    #[test]
    fn verdicts_are_sorted_ascending() {
        let p = fast_pipeline();
        let sku = Sku::new("cpu4", 4, 64.0);
        let target: Vec<ExperimentRun> = (0..2)
            .map(|r| p.sim.simulate(&benchmarks::ycsb(), &sku, 8, r, r % 3))
            .collect();
        let refs: Vec<(String, Vec<ExperimentRun>)> = [benchmarks::tpcc(), benchmarks::tpch()]
            .iter()
            .map(|spec| {
                let terminals = if spec.name == "TPC-H" { 1 } else { 8 };
                (
                    spec.name.clone(),
                    (0..2)
                        .map(|r| p.sim.simulate(spec, &sku, terminals, r, r % 3))
                        .collect(),
                )
            })
            .collect();
        let verdicts = find_most_similar(&target, &refs, &FeatureId::all(), &p.config).unwrap();
        assert!(verdicts[0].distance <= verdicts[1].distance);
    }

    #[test]
    fn select_features_returns_k_unique_features() {
        let p = fast_pipeline();
        let refs = vec![benchmarks::tpcc(), benchmarks::twitter()];
        let selected = select_features(
            &p.sim,
            &refs,
            &Sku::new("cpu16", 16, 64.0),
            |_| 8,
            &p.config,
        );
        assert_eq!(selected.len(), 7);
        let mut dedup = selected.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 7);
    }

    #[test]
    fn default_config_matches_paper_setup() {
        let c = PipelineConfig::default();
        assert_eq!(c.top_k, 7);
        assert_eq!(c.runs, 3);
        assert_eq!(c.sub_experiments, 10);
        assert_eq!(c.model, ModelStrategy::Svm);
    }
}

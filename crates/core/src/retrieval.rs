//! Indexed similarity retrieval over a fixed reference corpus.
//!
//! [`crate::pipeline::find_most_similar`] follows the paper's §5 recipe
//! to the letter: fingerprints are *jointly* normalized over the target
//! and reference runs, and distances are min-max normalized over the
//! full pairwise matrix — both steps depend on the query, so every call
//! recomputes everything, including all reference-to-reference
//! distances. That is fine for one-shot experiments and wrong for a
//! serving path.
//!
//! [`CorpusIndex`] is the serving-path variant: the representation's
//! corpus state (histogram ranges, phase counts, or encoder weights) is
//! *frozen over the corpus* at build time through the
//! [`wp_similarity::Fingerprinter`] strategy trait, so every reference
//! fingerprint is computed exactly once, a query fingerprint depends
//! only on the query, and top-k retrieval goes through the
//! [`wp_index::Index`] pruning cascade instead of a full scan. The
//! trade-off is explicit: distances are the *raw* measure values (no
//! query-dependent min-max pass), so they are comparable across queries
//! but not bit-identical to the joint-normalization path.
//!
//! The trait replaces what used to be hardcoded Hist-FP calls: any
//! [`wp_similarity::Representation`] — the three paper fingerprints or
//! the learned Plan-Embed — can back the index, as long as it supports
//! the configured measure.

use std::sync::Arc;

use wp_index::{Hit, Index, IndexConfig, SearchStats};
use wp_obs::LazySpan;
use wp_similarity::fingerprinter::{fingerprinter, Fingerprinter, HistFpFingerprinter};
use wp_similarity::repr::{extract, RunFeatureData};
use wp_telemetry::{ExperimentRun, FeatureId};

use crate::offline::OfflineCorpus;
use crate::pipeline::{PipelineConfig, SimilarityVerdict};

/// Wall time of one [`CorpusIndex::rank_references_with_stats`] call —
/// the serve path behind `POST /similar` `"mode":"indexed"`.
static OBS_RANK_SPAN: LazySpan = LazySpan::new("wp_core_retrieval_rank");
/// Wall time of fingerprinting one query run under the frozen ranges.
static OBS_FP_SPAN: LazySpan = LazySpan::new("wp_core_retrieval_fingerprint");

/// One retrieved corpus run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHit {
    /// Name of the reference workload the run belongs to.
    pub reference: String,
    /// Position of the run within that reference's source runs.
    pub run: usize,
    /// Exact measure distance between the query and the run fingerprint.
    pub distance: f64,
}

/// A [`wp_index::Index`] over the fingerprints of every reference run,
/// plus the frozen state a query needs to be fingerprinted the same way:
/// the selected features and the fitted [`Fingerprinter`] (which carries
/// the representation's corpus state — histogram ranges, phase counts,
/// or encoder weights).
pub struct CorpusIndex {
    index: Index,
    /// Maps a corpus position to `(reference, run-within-reference)`.
    run_refs: Vec<(usize, usize)>,
    names: Vec<String>,
    features: Vec<FeatureId>,
    fingerprinter: Arc<dyn Fingerprinter>,
}

impl CorpusIndex {
    /// Builds the index over `corpus` (one entry per `runs_from` run of
    /// every reference) using the features selected at startup and the
    /// pipeline's measure and bin count. Fingerprint summaries are
    /// computed in parallel on the deterministic `wp_runtime` pool.
    pub fn build(
        corpus: &OfflineCorpus,
        features: &[FeatureId],
        config: &PipelineConfig,
        index_config: IndexConfig,
    ) -> Result<Self, String> {
        corpus.validate()?;
        let refs: Vec<(String, &[ExperimentRun])> = corpus
            .references
            .iter()
            .map(|r| (r.name.clone(), r.runs_from.as_slice()))
            .collect();
        Self::from_reference_runs(&refs, features, config, index_config)
    }

    /// Builds the index from bare `(name, runs)` pairs — the shape
    /// [`crate::pipeline::find_most_similar`] takes. The configured
    /// representation's corpus state is frozen over the given runs.
    pub fn from_reference_runs(
        reference_runs: &[(String, &[ExperimentRun])],
        features: &[FeatureId],
        config: &PipelineConfig,
        index_config: IndexConfig,
    ) -> Result<Self, String> {
        if reference_runs.is_empty() {
            return Err("need reference runs".to_string());
        }
        let mut data: Vec<RunFeatureData> = Vec::new();
        for (name, runs) in reference_runs {
            if runs.is_empty() {
                return Err(format!("reference '{name}' has no runs"));
            }
            for run in runs.iter() {
                data.push(extract(run, features));
            }
        }
        let mut builder = fingerprinter(config.representation, &config.fingerprint_config());
        builder.fit(&data);
        Self::from_reference_runs_with_fingerprinter(
            reference_runs,
            features,
            Arc::from(builder),
            config,
            index_config,
        )
    }

    /// [`CorpusIndex::from_reference_runs`] with *explicitly* frozen
    /// Hist-FP histogram ranges instead of ranges computed over the given
    /// runs. Kept for Hist-FP callers that persist raw ranges; the
    /// general form is
    /// [`CorpusIndex::from_reference_runs_with_fingerprinter`].
    pub fn from_reference_runs_with_ranges(
        reference_runs: &[(String, &[ExperimentRun])],
        features: &[FeatureId],
        ranges: &[(f64, f64)],
        config: &PipelineConfig,
        index_config: IndexConfig,
    ) -> Result<Self, String> {
        if ranges.len() != features.len() {
            return Err(format!(
                "need one frozen range per feature ({} ranges, {} features)",
                ranges.len(),
                features.len()
            ));
        }
        let frozen = HistFpFingerprinter::with_frozen_ranges(config.nbins, ranges.to_vec());
        Self::from_reference_runs_with_fingerprinter(
            reference_runs,
            features,
            Arc::new(frozen),
            config,
            index_config,
        )
    }

    /// The general frozen-state constructor: fingerprints every reference
    /// run under an already-fitted [`Fingerprinter`] and indexes them.
    ///
    /// This is the constructor a *mutable* corpus needs: the streaming
    /// ingest path freezes the fingerprinter once over the startup
    /// corpus, then every later mutation — incremental
    /// [`CorpusIndex::insert_reference`] calls and full rebuilds after a
    /// windowed eviction — fingerprints under the same frozen state, so
    /// an incrementally evolved index and a from-scratch rebuild over the
    /// same references answer queries byte-identically.
    pub fn from_reference_runs_with_fingerprinter(
        reference_runs: &[(String, &[ExperimentRun])],
        features: &[FeatureId],
        fingerprinter: Arc<dyn Fingerprinter>,
        config: &PipelineConfig,
        index_config: IndexConfig,
    ) -> Result<Self, String> {
        if reference_runs.is_empty() {
            return Err("need reference runs".to_string());
        }
        if !fingerprinter.is_fitted() {
            return Err("fingerprinter must be fitted before indexing".to_string());
        }
        if !fingerprinter.supports_measure(config.measure) {
            return Err(format!(
                "measure {:?} is not defined for the {} representation",
                config.measure,
                fingerprinter.representation().label()
            ));
        }
        let mut run_refs = Vec::new();
        let mut fps = Vec::new();
        for (ri, (name, runs)) in reference_runs.iter().enumerate() {
            if runs.is_empty() {
                return Err(format!("reference '{name}' has no runs"));
            }
            for (pos, run) in runs.iter().enumerate() {
                run_refs.push((ri, pos));
                fps.push(fingerprinter.fingerprint(&extract(run, features)));
            }
        }
        let index = Index::build(fps, config.measure, index_config)?;
        Ok(Self {
            index,
            run_refs,
            names: reference_runs.iter().map(|(n, _)| n.clone()).collect(),
            features: features.to_vec(),
            fingerprinter,
        })
    }

    /// The frozen per-feature histogram ranges every query and insertion
    /// is binned under.
    ///
    /// # Panics
    ///
    /// Panics for learned representations (Plan-Embed), whose frozen
    /// state is model weights rather than ranges; use
    /// [`CorpusIndex::fingerprinter`] to share the state itself.
    pub fn ranges(&self) -> &[(f64, f64)] {
        self.fingerprinter
            .frozen_ranges()
            .expect("representation has no frozen ranges")
    }

    /// The fitted fingerprinter, shareable with a rebuild so both
    /// indexes fingerprint under identical frozen state.
    pub fn fingerprinter(&self) -> Arc<dyn Fingerprinter> {
        Arc::clone(&self.fingerprinter)
    }

    /// Which representation backs this index.
    pub fn representation(&self) -> wp_similarity::Representation {
        self.fingerprinter.representation()
    }

    /// The features fingerprints are extracted on.
    pub fn features(&self) -> &[FeatureId] {
        &self.features
    }

    /// Reference names in corpus-position order.
    pub fn reference_names(&self) -> &[String] {
        &self.names
    }

    /// Adds a new reference (or more runs of a known one) to the corpus
    /// without rebuilding: each run is fingerprinted under the *frozen*
    /// corpus state and appended via [`Index::insert`]. For Hist-FP,
    /// values outside the frozen ranges clamp into the boundary bins.
    pub fn insert_reference(&mut self, name: &str, runs: &[ExperimentRun]) -> Result<(), String> {
        if runs.is_empty() {
            return Err(format!("reference '{name}' has no runs"));
        }
        let ri = match self.names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.names.push(name.to_string());
                self.names.len() - 1
            }
        };
        let next_pos = self
            .run_refs
            .iter()
            .filter(|(r, _)| *r == ri)
            .map(|(_, pos)| pos + 1)
            .max()
            .unwrap_or(0);
        let data: Vec<RunFeatureData> = runs.iter().map(|r| extract(r, &self.features)).collect();
        for (offset, data_run) in data.iter().enumerate() {
            self.index
                .insert(self.fingerprinter.fingerprint(data_run))?;
            self.run_refs.push((ri, next_pos + offset));
        }
        Ok(())
    }

    /// Number of indexed runs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no runs are indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The underlying fingerprint index.
    pub fn index(&self) -> &Index {
        &self.index
    }

    /// Fingerprints one query run under the frozen corpus state — the
    /// same trait dispatch every indexed run went through, so query and
    /// corpus fingerprints are always comparable.
    pub fn query_fingerprint(&self, run: &ExperimentRun) -> wp_linalg::Matrix {
        let _span = OBS_FP_SPAN.start();
        let data = extract(run, &self.features);
        self.fingerprinter.fingerprint(&data)
    }

    /// The `k` corpus runs nearest to `run` — exact top-k through the
    /// pruning cascade, ascending by `(distance, corpus position)`.
    pub fn nearest_runs(&self, run: &ExperimentRun, k: usize) -> Result<Vec<RunHit>, String> {
        let fp = self.query_fingerprint(run);
        let hits = self.index.search_k(&fp, k)?;
        Ok(self.to_run_hits(&hits))
    }

    fn to_run_hits(&self, hits: &[Hit]) -> Vec<RunHit> {
        hits.iter()
            .map(|h| {
                let (ri, pos) = self.run_refs[h.index];
                RunHit {
                    reference: self.names[ri].clone(),
                    run: pos,
                    distance: h.distance,
                }
            })
            .collect()
    }

    /// Ranks the references by their nearest runs: each target run
    /// retrieves its top-k corpus runs, hit distances are averaged per
    /// reference, and references without a retrieved run are omitted.
    /// Ascending by `(mean distance, name)`; distances are raw measure
    /// values (see the module docs for how this differs from
    /// [`crate::pipeline::find_most_similar`]).
    pub fn rank_references(
        &self,
        target_runs: &[ExperimentRun],
        k: usize,
    ) -> Result<Vec<SimilarityVerdict>, String> {
        self.rank_references_with_stats(target_runs, k)
            .map(|(v, _)| v)
    }

    /// [`CorpusIndex::rank_references`] plus the cascade counters summed
    /// over all per-run searches.
    pub fn rank_references_with_stats(
        &self,
        target_runs: &[ExperimentRun],
        k: usize,
    ) -> Result<(Vec<SimilarityVerdict>, SearchStats), String> {
        let _span = OBS_RANK_SPAN.start();
        if target_runs.is_empty() {
            return Err("need target runs".to_string());
        }
        if k == 0 {
            return Err("k must be positive".to_string());
        }
        let mut total = vec![0.0; self.names.len()];
        let mut count = vec![0usize; self.names.len()];
        let mut stats = SearchStats::default();
        for run in target_runs {
            let fp = self.query_fingerprint(run);
            let (hits, s) = self.index.search_k_with_stats(&fp, k)?;
            stats.merge(&s);
            for h in hits {
                let (ri, _) = self.run_refs[h.index];
                total[ri] += h.distance;
                count[ri] += 1;
            }
        }
        let mut verdicts: Vec<SimilarityVerdict> = self
            .names
            .iter()
            .enumerate()
            .filter(|(ri, _)| count[*ri] > 0)
            .map(|(ri, name)| SimilarityVerdict {
                workload: name.clone(),
                distance: total[ri] / count[ri] as f64,
            })
            .collect();
        verdicts.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.workload.cmp(&b.workload))
        });
        Ok((verdicts, stats))
    }
}

/// Indexed counterpart of [`crate::pipeline::find_most_similar`]: builds
/// a transient [`CorpusIndex`] over `reference_runs` and ranks the
/// references by the target runs' top-k nearest corpus runs. Prefer
/// holding a [`CorpusIndex`] when the same corpus serves many queries —
/// that is the whole point of the index.
pub fn find_most_similar_indexed(
    target_runs: &[ExperimentRun],
    reference_runs: &[(String, Vec<ExperimentRun>)],
    features: &[FeatureId],
    config: &PipelineConfig,
    k: usize,
) -> Result<Vec<SimilarityVerdict>, String> {
    let refs: Vec<(String, &[ExperimentRun])> = reference_runs
        .iter()
        .map(|(n, runs)| (n.clone(), runs.as_slice()))
        .collect();
    let index = CorpusIndex::from_reference_runs(&refs, features, config, IndexConfig::default())?;
    index.rank_references(target_runs, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_workloads::benchmarks;
    use wp_workloads::engine::Simulator;
    use wp_workloads::sku::Sku;

    fn sim_runs(sim: &Simulator, name: &str, first_run: usize, n: usize) -> Vec<ExperimentRun> {
        let spec = match name {
            "TPC-C" => benchmarks::tpcc(),
            "TPC-H" => benchmarks::tpch(),
            "Twitter" => benchmarks::twitter(),
            _ => benchmarks::ycsb(),
        };
        let terminals = if name == "TPC-H" { 1 } else { 8 };
        let sku = Sku::new("cpu2", 2, 64.0);
        (first_run..first_run + n)
            .map(|r| sim.simulate(&spec, &sku, terminals, r, r % 3))
            .collect()
    }

    fn reference_runs(sim: &Simulator) -> Vec<(String, Vec<ExperimentRun>)> {
        ["TPC-C", "TPC-H", "Twitter"]
            .iter()
            .map(|n| (n.to_string(), sim_runs(sim, n, 0, 3)))
            .collect()
    }

    fn small_sim() -> Simulator {
        let mut sim = Simulator::new(0xEDB7_2025);
        sim.config.samples = 40;
        sim
    }

    #[test]
    fn ranks_the_same_workload_first() {
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let refs_sliced: Vec<(String, &[ExperimentRun])> = refs
            .iter()
            .map(|(n, r)| (n.clone(), r.as_slice()))
            .collect();
        let config = PipelineConfig::default();
        let index = CorpusIndex::from_reference_runs(
            &refs_sliced,
            &FeatureId::all(),
            &config,
            IndexConfig::default(),
        )
        .unwrap();
        assert_eq!(index.len(), 9);
        for name in ["TPC-C", "Twitter"] {
            let target = sim_runs(&sim, name, 3, 2);
            let verdicts = index.rank_references(&target, 3).unwrap();
            assert_eq!(verdicts[0].workload, name, "{verdicts:?}");
        }
    }

    #[test]
    fn indexed_search_matches_brute_force_over_the_corpus() {
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let refs_sliced: Vec<(String, &[ExperimentRun])> = refs
            .iter()
            .map(|(n, r)| (n.clone(), r.as_slice()))
            .collect();
        let config = PipelineConfig::default();
        let index = CorpusIndex::from_reference_runs(
            &refs_sliced,
            &FeatureId::all(),
            &config,
            IndexConfig::default(),
        )
        .unwrap();
        let target = sim_runs(&sim, "YCSB", 0, 1);
        let fp = index.query_fingerprint(&target[0]);
        let corpus_fps: Vec<wp_linalg::Matrix> = (0..index.len())
            .map(|i| index.index().fingerprint(i).clone())
            .collect();
        let brute = wp_index::brute_force_k(&corpus_fps, config.measure, None, &fp, 4);
        let hits = index.index().search_k(&fp, 4).unwrap();
        assert_eq!(hits.len(), brute.len());
        for (h, b) in hits.iter().zip(&brute) {
            assert_eq!(h.index, b.index);
            assert_eq!(h.distance.to_bits(), b.distance.to_bits());
        }
    }

    #[test]
    fn insert_reference_extends_retrieval() {
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let refs_sliced: Vec<(String, &[ExperimentRun])> = refs[..2]
            .iter()
            .map(|(n, r)| (n.clone(), r.as_slice()))
            .collect();
        let config = PipelineConfig::default();
        let mut index = CorpusIndex::from_reference_runs(
            &refs_sliced,
            &FeatureId::all(),
            &config,
            IndexConfig::default(),
        )
        .unwrap();
        index.insert_reference("Twitter", &refs[2].1).unwrap();
        assert_eq!(index.len(), 9);
        let target = sim_runs(&sim, "Twitter", 3, 2);
        let verdicts = index.rank_references(&target, 3).unwrap();
        assert_eq!(verdicts[0].workload, "Twitter", "{verdicts:?}");
        // nearest_runs resolves to the inserted reference's runs
        let hits = index.nearest_runs(&target[0], 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits[0].distance <= hits[1].distance);
    }

    /// A corpus grown by N incremental [`CorpusIndex::insert_reference`]
    /// calls must answer `rank_references` byte-identically to an index
    /// rebuilt from scratch over the same references under the same
    /// frozen ranges — the contract the streaming ingest path leans on.
    #[test]
    fn incremental_inserts_match_a_from_scratch_rebuild_byte_for_byte() {
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let refs_sliced: Vec<(String, &[ExperimentRun])> = refs
            .iter()
            .map(|(n, r)| (n.clone(), r.as_slice()))
            .collect();
        let config = PipelineConfig::default();

        // Freeze ranges over the full reference set, then grow one index
        // incrementally (first reference at build time, the rest via
        // insert_reference, one call per reference) and build the other
        // in one shot over everything.
        let full = CorpusIndex::from_reference_runs(
            &refs_sliced,
            &FeatureId::all(),
            &config,
            IndexConfig::default(),
        )
        .unwrap();
        let frozen = full.ranges().to_vec();
        let mut incremental = CorpusIndex::from_reference_runs_with_ranges(
            &refs_sliced[..1],
            &FeatureId::all(),
            &frozen,
            &config,
            IndexConfig::default(),
        )
        .unwrap();
        for (name, runs) in &refs[1..] {
            incremental.insert_reference(name, runs).unwrap();
        }
        assert_eq!(incremental.len(), full.len());
        assert_eq!(incremental.reference_names(), full.reference_names());

        for (w, (target_name, k)) in [("TPC-C", 3), ("Twitter", 2), ("TPC-H", 5), ("YCSB", 9)]
            .into_iter()
            .enumerate()
        {
            let target = sim_runs(&sim, target_name, 3 + w, 2);
            let a = incremental.rank_references(&target, k).unwrap();
            let b = full.rank_references(&target, k).unwrap();
            assert_eq!(a.len(), b.len(), "target {target_name}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.workload, y.workload, "target {target_name}");
                assert_eq!(
                    x.distance.to_bits(),
                    y.distance.to_bits(),
                    "target {target_name}: {} vs {}",
                    x.distance,
                    y.distance
                );
            }
        }
    }

    #[test]
    fn with_ranges_rejects_a_feature_count_mismatch() {
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let refs_sliced: Vec<(String, &[ExperimentRun])> = refs
            .iter()
            .map(|(n, r)| (n.clone(), r.as_slice()))
            .collect();
        let config = PipelineConfig::default();
        let err = CorpusIndex::from_reference_runs_with_ranges(
            &refs_sliced,
            &FeatureId::all(),
            &[(0.0, 1.0); 3],
            &config,
            IndexConfig::default(),
        );
        assert!(err.is_err(), "wrong range count must be rejected");
    }

    #[test]
    fn find_most_similar_indexed_agrees_with_exact_on_the_winner() {
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let config = PipelineConfig::default();
        let target = sim_runs(&sim, "TPC-C", 3, 2);
        let indexed =
            find_most_similar_indexed(&target, &refs, &FeatureId::all(), &config, 9).unwrap();
        let exact =
            crate::pipeline::find_most_similar(&target, &refs, &FeatureId::all(), &config).unwrap();
        assert_eq!(indexed[0].workload, exact[0].workload);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let refs_sliced: Vec<(String, &[ExperimentRun])> = refs
            .iter()
            .map(|(n, r)| (n.clone(), r.as_slice()))
            .collect();
        let config = PipelineConfig::default();
        assert!(CorpusIndex::from_reference_runs(
            &[],
            &FeatureId::all(),
            &config,
            IndexConfig::default()
        )
        .is_err());
        let index = CorpusIndex::from_reference_runs(
            &refs_sliced,
            &FeatureId::all(),
            &config,
            IndexConfig::default(),
        )
        .unwrap();
        assert!(index.rank_references(&[], 3).is_err());
        let target = sim_runs(&sim, "YCSB", 0, 1);
        assert!(index.rank_references(&target, 0).is_err());
    }

    /// The trait-dispatch constructor must be a pure refactor of the
    /// legacy frozen-ranges path: same fingerprints, same verdicts, and
    /// the same pruning-cascade counters, bit for bit.
    #[test]
    fn trait_dispatch_matches_the_legacy_histfp_constructor_byte_for_byte() {
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let refs_sliced: Vec<(String, &[ExperimentRun])> = refs
            .iter()
            .map(|(n, r)| (n.clone(), r.as_slice()))
            .collect();
        let config = PipelineConfig::default();
        let via_trait = CorpusIndex::from_reference_runs(
            &refs_sliced,
            &FeatureId::all(),
            &config,
            IndexConfig::default(),
        )
        .unwrap();
        let via_ranges = CorpusIndex::from_reference_runs_with_ranges(
            &refs_sliced,
            &FeatureId::all(),
            via_trait.ranges(),
            &config,
            IndexConfig::default(),
        )
        .unwrap();

        assert_eq!(via_trait.len(), via_ranges.len());
        for i in 0..via_trait.len() {
            let (a, b) = (
                via_trait.index().fingerprint(i),
                via_ranges.index().fingerprint(i),
            );
            assert_eq!(a.shape(), b.shape(), "fingerprint {i} shape");
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "fingerprint {i} bytes");
            }
        }

        let target = sim_runs(&sim, "YCSB", 10, 2);
        let (va, sa) = via_trait.rank_references_with_stats(&target, 3).unwrap();
        let (vb, sb) = via_ranges.rank_references_with_stats(&target, 3).unwrap();
        assert_eq!(sa, sb, "pruning stats diverged");
        assert_eq!(va.len(), vb.len());
        for (a, b) in va.iter().zip(&vb) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }

    /// Every representation that defines the default measure yields a
    /// working index through the trait constructor, and its query path
    /// stays thread-count invariant.
    #[test]
    fn every_representation_indexes_and_ranks_thread_invariantly() {
        use wp_similarity::Representation;
        let sim = small_sim();
        let refs = reference_runs(&sim);
        let refs_sliced: Vec<(String, &[ExperimentRun])> = refs
            .iter()
            .map(|(n, r)| (n.clone(), r.as_slice()))
            .collect();
        let target = sim_runs(&sim, "Twitter", 3, 2);
        // MTS needs one shared observation count, so it gets the
        // resource features; the others take the full mixed set.
        for repr in [
            Representation::HistFp,
            Representation::PhaseFp,
            Representation::Mts,
            Representation::PlanEmbed,
        ] {
            let features: Vec<FeatureId> = match repr {
                Representation::Mts => wp_telemetry::ResourceFeature::ALL
                    .iter()
                    .map(|&f| FeatureId::Resource(f))
                    .collect(),
                _ => FeatureId::all(),
            };
            let config = PipelineConfig {
                representation: repr,
                ..PipelineConfig::default()
            };
            let build_and_rank = || {
                let index = CorpusIndex::from_reference_runs(
                    &refs_sliced,
                    &features,
                    &config,
                    IndexConfig::default(),
                )
                .unwrap();
                index.rank_references(&target, 3).unwrap()
            };
            let v1 = wp_runtime::with_thread_count(1, build_and_rank);
            let v8 = wp_runtime::with_thread_count(8, build_and_rank);
            assert_eq!(v1.len(), v8.len(), "{repr:?}");
            for (a, b) in v1.iter().zip(&v8) {
                assert_eq!(a.workload, b.workload, "{repr:?}");
                assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{repr:?}");
            }
        }
    }
}

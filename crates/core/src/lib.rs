//! The end-to-end workload resource prediction pipeline (Figure 2).
//!
//! The paper's pipeline chains three components:
//!
//! 1. **Feature selection** (`wp-featsel`) — rank the 29 telemetry
//!    features on a labeled reference corpus and keep the top-k.
//! 2. **Workload similarity** (`wp-similarity`) — fingerprint runs on the
//!    selected features and find the reference workload most similar to
//!    the target.
//! 3. **Resource prediction** (`wp-predict`) — fit pairwise scaling
//!    models on the most similar reference workload and transfer its
//!    scaling factor to the target workload's single-SKU observation.
//!
//! [`Pipeline::run`] executes all three stages against the simulator;
//! [`offline::run_offline`] executes them over pre-collected telemetry
//! (see `wp_telemetry::io` for the interchange formats);
//! the stage functions ([`pipeline::select_features`],
//! [`pipeline::find_most_similar`], [`pipeline::predict_scaling`]) are
//! public so callers can substitute their own telemetry.

#![warn(missing_docs)]

pub mod offline;
pub mod pipeline;
pub mod retrieval;

pub use pipeline::{Pipeline, PipelineConfig, PipelineOutcome, SimilarityVerdict};
pub use retrieval::{CorpusIndex, RunHit};

// Re-export the substrate crates so a downstream user needs only wp-core.
pub use wp_featsel as featsel;
pub use wp_linalg as linalg;
pub use wp_ml as ml;
pub use wp_predict as predict;
pub use wp_similarity as similarity;
pub use wp_telemetry as telemetry;
pub use wp_workloads as workloads;

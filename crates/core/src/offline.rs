//! Offline pipeline: the three stages over *pre-collected* telemetry.
//!
//! [`Pipeline`](crate::Pipeline) drives the simulator; deployments that
//! collect their own telemetry (via `wp_telemetry::io` or any custom
//! collector) instead assemble an [`OfflineCorpus`] of reference runs and
//! call [`run_offline`]. The stages are identical — only the telemetry
//! source differs.

use wp_featsel::aggregate::aggregate_rankings;
use wp_featsel::Ranking;
use wp_predict::context::PairwiseScalingModel;
use wp_telemetry::{ExperimentRun, FeatureId, N_FEATURES};
use wp_workloads::dataset::{aggregate_run, LabeledDataset};
use wp_workloads::engine::ObservationSet;

use crate::pipeline::{find_most_similar, PipelineConfig, PipelineOutcome, SimilarityVerdict};

/// Pre-collected reference telemetry for one workload: repeated runs on
/// the source SKU plus aligned run pairs across the `(from, to)` SKU pair
/// (same run index measured on both).
#[derive(Debug, Clone)]
pub struct OfflineReference {
    /// Workload name.
    pub name: String,
    /// Runs on the *source* SKU (used for similarity).
    pub runs_from: Vec<ExperimentRun>,
    /// Runs on the *destination* SKU, aligned with `runs_from` by index
    /// (used for the scaling model).
    pub runs_to: Vec<ExperimentRun>,
}

impl OfflineReference {
    /// Validates alignment and telemetry sanity. Non-panicking so
    /// long-running consumers (the `wp-server` HTTP service) can map a
    /// bad corpus to a client error instead of killing a worker thread.
    ///
    /// Rejected adversarial shapes, each with a structured message:
    /// zero-length resource series, non-finite (`NaN`/`inf`) samples or
    /// throughput, and mismatched from/to SKU pair counts.
    pub fn validate(&self) -> Result<(), String> {
        if self.runs_from.is_empty() {
            return Err(format!("{}: needs runs", self.name));
        }
        if self.runs_from.len() != self.runs_to.len() {
            return Err(format!(
                "{}: from/to runs must be aligned ({} vs {})",
                self.name,
                self.runs_from.len(),
                self.runs_to.len()
            ));
        }
        for (side, runs) in [("runs_from", &self.runs_from), ("runs_to", &self.runs_to)] {
            for (i, run) in runs.iter().enumerate() {
                if run.resources.is_empty() {
                    return Err(format!(
                        "{}: {side}[{i}] has a zero-length resource series",
                        self.name
                    ));
                }
                if !run.resources.data.as_slice().iter().all(|x| x.is_finite()) {
                    return Err(format!(
                        "{}: {side}[{i}] has a non-finite resource sample",
                        self.name
                    ));
                }
                if !run.throughput.is_finite() {
                    return Err(format!(
                        "{}: {side}[{i}] has a non-finite throughput",
                        self.name
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A corpus of offline references.
#[derive(Debug, Clone, Default)]
pub struct OfflineCorpus {
    /// One entry per reference workload.
    pub references: Vec<OfflineReference>,
}

impl OfflineCorpus {
    /// Validates every reference (see [`OfflineReference::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.references.is_empty() {
            return Err("corpus needs references".to_string());
        }
        let mut names = std::collections::HashSet::new();
        for r in &self.references {
            r.validate()?;
            if !names.insert(r.name.as_str()) {
                return Err(format!("{}: duplicate reference name", r.name));
            }
        }
        Ok(())
    }
}

/// Builds a feature-selection dataset from the corpus: one aggregate
/// observation per reference run (resource means over the series, plan
/// means over the queries), labeled by workload.
fn corpus_dataset(corpus: &OfflineCorpus) -> LabeledDataset {
    let sets: Vec<ObservationSet> = corpus
        .references
        .iter()
        .map(|r| {
            let rows: Vec<Vec<f64>> = r.runs_from.iter().map(aggregate_run).collect();
            ObservationSet {
                workload: r.name.clone(),
                features: wp_linalg::Matrix::from_rows(&rows),
                throughput: r.runs_from.iter().map(|run| run.throughput).collect(),
            }
        })
        .collect();
    LabeledDataset::from_observation_sets(&sets)
}

/// Stage 1 on offline telemetry: one ranking per run index (aggregated),
/// falling back to a single pooled ranking when runs are too few.
///
/// Returns `Err` when the corpus fails [`OfflineCorpus::validate`].
pub fn select_features_offline(
    corpus: &OfflineCorpus,
    config: &PipelineConfig,
) -> Result<Vec<FeatureId>, String> {
    corpus.validate()?;
    let ds = corpus_dataset(corpus);
    let universe = FeatureId::all();
    assert_eq!(ds.features.cols(), N_FEATURES);
    let ranking: Ranking =
        config
            .selection
            .rank(&ds.features, &ds.labels, &universe, &config.wrapper);
    Ok(aggregate_rankings(&[ranking]).top_k(config.top_k))
}

/// Runs the full offline pipeline: select features on the corpus, find
/// the reference most similar to `target_runs_from`, fit that reference's
/// pairwise scaling model from its aligned run pairs, and transfer the
/// factor to the target's observed throughput.
///
/// `from_cpus` / `to_cpus` label the SKU pair for the scaling model.
/// The returned outcome's `actual_throughput` is `NaN` (unknown until the
/// workload actually migrates) and `mape` is `NaN` accordingly.
///
/// Returns `Err` for an invalid corpus or an empty target-run set —
/// request-sized problems a serving layer reports to the client rather
/// than panicking over.
pub fn run_offline(
    corpus: &OfflineCorpus,
    target_runs_from: &[ExperimentRun],
    from_cpus: f64,
    to_cpus: f64,
    config: &PipelineConfig,
) -> Result<PipelineOutcome, String> {
    corpus.validate()?;
    if target_runs_from.is_empty() {
        return Err("need target runs".to_string());
    }

    // Stage 1
    let selected = select_features_offline(corpus, config)?;

    // Stage 2
    let reference_runs: Vec<(String, Vec<ExperimentRun>)> = corpus
        .references
        .iter()
        .map(|r| (r.name.clone(), r.runs_from.clone()))
        .collect();
    let similarity: Vec<SimilarityVerdict> =
        find_most_similar(target_runs_from, &reference_runs, &selected, config)?;
    let most_similar = similarity[0].workload.clone();
    let reference = corpus
        .references
        .iter()
        .find(|r| r.name == most_similar)
        .expect("verdict names come from the corpus");

    // Stage 3: pairwise model from the aligned run pairs
    let from_values: Vec<f64> = reference.runs_from.iter().map(|r| r.throughput).collect();
    let to_values: Vec<f64> = reference.runs_to.iter().map(|r| r.throughput).collect();
    let groups: Vec<usize> = reference
        .runs_from
        .iter()
        .map(|r| r.key.data_group)
        .collect();
    let model = PairwiseScalingModel::fit(
        config.model,
        &[from_cpus, to_cpus],
        &[from_values, to_values],
        Some(&groups),
    );
    let observed = wp_linalg::stats::mean(
        &target_runs_from
            .iter()
            .map(|r| r.throughput)
            .collect::<Vec<_>>(),
    );
    let predicted = model
        .predict_transfer(from_cpus, to_cpus, observed)
        .expect("pair model exists by construction");

    Ok(PipelineOutcome {
        selected_features: selected,
        similarity,
        most_similar,
        observed_throughput: observed,
        predicted_throughput: predicted,
        actual_throughput: f64::NAN,
        mape: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_featsel::Strategy;
    use wp_workloads::engine::Simulator;
    use wp_workloads::{benchmarks, Sku};

    /// Builds an offline corpus by simulating, serializing through the
    /// JSON interchange, and deserializing — proving the external path.
    fn corpus_via_interchange(sim: &Simulator, from: &Sku, to: &Sku) -> OfflineCorpus {
        let mut corpus = OfflineCorpus::default();
        for spec in [
            benchmarks::tpcc(),
            benchmarks::tpch(),
            benchmarks::twitter(),
        ] {
            let terminals = if spec.name == "TPC-H" { 1 } else { 8 };
            let runs_from: Vec<ExperimentRun> = (0..3)
                .map(|r| sim.simulate(&spec, from, terminals, r, r % 3))
                .collect();
            let runs_to: Vec<ExperimentRun> = (0..3)
                .map(|r| sim.simulate(&spec, to, terminals, r, r % 3))
                .collect();
            // round-trip through the interchange format
            let json = wp_telemetry::io::runs_to_json(&runs_from);
            let runs_from = wp_telemetry::io::runs_from_json(&json).unwrap();
            corpus.references.push(OfflineReference {
                name: spec.name.clone(),
                runs_from,
                runs_to,
            });
        }
        corpus
    }

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            selection: Strategy::FAnova,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn offline_pipeline_matches_simulator_pipeline_findings() {
        let mut sim = Simulator::new(0xEDB7_2025);
        sim.config.samples = 60;
        let from = Sku::new("cpu2", 2, 64.0);
        let to = Sku::new("cpu8", 8, 64.0);
        let corpus = corpus_via_interchange(&sim, &from, &to);

        let target_runs: Vec<ExperimentRun> = (0..3)
            .map(|r| sim.simulate(&benchmarks::ycsb(), &from, 8, r, r % 3))
            .collect();
        let outcome = run_offline(&corpus, &target_runs, 2.0, 8.0, &fast_config()).unwrap();

        assert_eq!(outcome.most_similar, "TPC-C", "{:?}", outcome.similarity);
        assert_eq!(outcome.selected_features.len(), 7);
        assert!(outcome.predicted_throughput > outcome.observed_throughput);
        assert!(outcome.actual_throughput.is_nan());

        // sanity: the prediction lands near the simulator's ground truth
        let actual = wp_linalg::stats::mean(
            &(0..3)
                .map(|r| {
                    sim.simulate(&benchmarks::ycsb(), &to, 8, r, r % 3)
                        .throughput
                })
                .collect::<Vec<_>>(),
        );
        let err = (outcome.predicted_throughput - actual).abs() / actual;
        assert!(err < 0.5, "err {err}");
    }

    #[test]
    fn select_features_offline_returns_k_features() {
        let mut sim = Simulator::new(3);
        sim.config.samples = 40;
        let from = Sku::new("cpu4", 4, 64.0);
        let corpus = corpus_via_interchange(&sim, &from, &Sku::new("cpu8", 8, 64.0));
        let features = select_features_offline(&corpus, &fast_config()).unwrap();
        assert_eq!(features.len(), 7);
    }

    #[test]
    fn misaligned_reference_rejected() {
        let mut sim = Simulator::new(3);
        sim.config.samples = 40;
        let from = Sku::new("cpu4", 4, 64.0);
        let mut corpus = corpus_via_interchange(&sim, &from, &Sku::new("cpu8", 8, 64.0));
        corpus.references[0].runs_to.pop();
        let err = corpus.validate().unwrap_err();
        assert!(err.contains("from/to runs must be aligned"), "{err}");
        // the pipeline entry points surface the same error instead of
        // panicking
        let target = vec![sim.simulate(&benchmarks::ycsb(), &from, 8, 0, 0)];
        assert!(run_offline(&corpus, &target, 4.0, 8.0, &fast_config()).is_err());
        assert!(select_features_offline(&corpus, &fast_config()).is_err());
    }

    #[test]
    fn empty_and_duplicate_corpora_rejected() {
        assert!(OfflineCorpus::default().validate().is_err());
        let mut sim = Simulator::new(3);
        sim.config.samples = 40;
        let from = Sku::new("cpu4", 4, 64.0);
        let mut corpus = corpus_via_interchange(&sim, &from, &Sku::new("cpu8", 8, 64.0));
        let dup = corpus.references[0].clone();
        corpus.references.push(dup);
        let err = corpus.validate().unwrap_err();
        assert!(err.contains("duplicate reference name"), "{err}");
        // an empty run list on one reference is also rejected
        corpus.references.pop();
        corpus.references[1].runs_from.clear();
        corpus.references[1].runs_to.clear();
        assert!(corpus.validate().is_err());
    }
}

//! `wp-index` — exact top-k nearest-neighbor retrieval over workload
//! fingerprints with a cheap-to-expensive lower-bound pruning cascade.
//!
//! Brute-force similarity scoring (the paper's §5 workflow, and what
//! `/similar` shipped with) computes the exact measure against *every*
//! corpus fingerprint — O(n) exact distances per query, each O(T²) for
//! the elastic measures. This crate keeps the *results* of brute force
//! and removes most of its *work*: every candidate first has to survive
//! a cascade of provable lower bounds, ordered by cost, and only the
//! survivors pay for the exact measure.
//!
//! ```text
//!             query
//!               │
//!   ┌───────────▼───────────┐
//!   │ 1. pivot bound  O(P)  │  metric norms (L1,1 L2,1 Fro Canberra)
//!   │    |d(q,p) − d(x,p)|  │  triangle inequality over P pivots
//!   ├───────────────────────┤
//!   │ 2. PAA bound    O(S·K)│  L1,1 / L2,1 / Frobenius
//!   │    segment means      │  Jensen / Cauchy-Schwarz per segment
//!   ├───────────────────────┤
//!   │ 3. LB_Kim       O(K)  │  DTW: endpoint distances
//!   ├───────────────────────┤
//!   │ 4. LB_Keogh     O(T·K)│  DTW: Sakoe-Chiba band envelopes
//!   ├───────────────────────┤
//!   │ 5. ε-envelope   O(T·K)│  LCSS: matchable-point count
//!   ├───────────────────────┤
//!   │ 6. exact measure      │  only for survivors; DTW survivors run
//!   └───────────────────────┘  the early-abandoning kernel, which may
//!                              still bail mid-table (stage "ea")
//! ```
//!
//! **Exactness.** A candidate is pruned only when a lower bound on its
//! distance already reaches the current k-th best *exact* distance.
//! Candidates are scanned in corpus order and ranked by `(distance,
//! index)` under `f64::total_cmp`, the same order brute force sorts by,
//! so [`Index::search_k`] returns *bit-identical* indices and distances
//! to [`brute_force_k`] — for every measure, every seed, and every
//! `WP_THREADS` setting. Measures with no applicable bound (Chi²,
//! 1−correlation) degrade gracefully to a scan with zero pruning.
//!
//! **Banding.** LB_Keogh tightens with a Sakoe-Chiba band, but a banded
//! envelope only lower-bounds the *banded* DTW — so the band lives in
//! [`IndexConfig`] and the index's exact fallback is
//! [`Measure::apply_banded`] under that same window. The default
//! (`band: None`) reproduces the unconstrained measures bit-for-bit.

#![warn(missing_docs)]

mod bounds;

use std::cmp::Ordering;

use wp_linalg::Matrix;
use wp_obs::LazyCounter;
use wp_similarity::measure::validate_fingerprints;
use wp_similarity::Measure;

use bounds::Envelope;

/// Searches answered through the cascade.
static OBS_SEARCHES: LazyCounter = LazyCounter::new("wp_index_searches_total");
/// Candidates considered across all searches.
static OBS_CANDIDATES: LazyCounter = LazyCounter::new("wp_index_candidates_total");
/// Candidates that survived every bound and paid for an exact distance.
static OBS_EXACT: LazyCounter = LazyCounter::new("wp_index_exact_total");
/// Candidates discarded, by the cascade stage whose bound fired.
static OBS_PRUNED: [LazyCounter; 6] = [
    LazyCounter::new("wp_index_pruned_total{stage=\"pivot\"}"),
    LazyCounter::new("wp_index_pruned_total{stage=\"paa\"}"),
    LazyCounter::new("wp_index_pruned_total{stage=\"kim\"}"),
    LazyCounter::new("wp_index_pruned_total{stage=\"keogh\"}"),
    LazyCounter::new("wp_index_pruned_total{stage=\"lcss\"}"),
    LazyCounter::new("wp_index_pruned_total{stage=\"ea\"}"),
];

/// Tuning knobs for [`Index::build`]. The defaults are safe for every
/// measure; none of them affect *which* results a search returns, only
/// how much work it takes to find them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexConfig {
    /// Optional Sakoe-Chiba half-width for the DTW measures. When set,
    /// the index computes (and exactly matches brute force on) the
    /// *banded* distance — see [`Measure::apply_banded`].
    pub band: Option<usize>,
    /// Target number of PAA segments per fingerprint column.
    pub paa_segments: usize,
    /// Number of triangle-inequality pivots for metric norms.
    pub pivots: usize,
    /// Run the early-abandoning DTW kernel for cascade survivors,
    /// passing the current k-th best distance as the abandon threshold.
    /// Never changes results (the kernel abandons only when the distance
    /// provably exceeds the threshold *strictly*, and a threshold tie
    /// loses to the smaller corpus index already in the top-k); on by
    /// default, switchable off for A/B benchmarking.
    pub early_abandon: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            band: None,
            paa_segments: 8,
            pivots: 4,
            early_abandon: true,
        }
    }
}

/// One search result: the corpus position of a fingerprint and its exact
/// distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Position in the corpus (build order, then insertion order).
    pub index: usize,
    /// Exact (banded, if configured) distance to the query.
    pub distance: f64,
}

/// Per-search accounting of how far each candidate got through the
/// cascade. `candidates == pruned() + exact` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Corpus fingerprints considered.
    pub candidates: usize,
    /// Discarded by the pivot (triangle-inequality) bound.
    pub pruned_pivot: usize,
    /// Discarded by the PAA segment-mean bound.
    pub pruned_paa: usize,
    /// Discarded by LB_Kim (DTW endpoints).
    pub pruned_kim: usize,
    /// Discarded by LB_Keogh (DTW band envelopes).
    pub pruned_keogh: usize,
    /// Discarded by the LCSS ε-envelope match-count bound.
    pub pruned_lcss: usize,
    /// Discarded mid-table by the early-abandoning DTW kernel: the
    /// partial warping table already proved the distance exceeds the
    /// k-th best, so the evaluation stopped without a full exact
    /// computation.
    pub pruned_ea: usize,
    /// Completed exact distance computations (including the
    /// query-to-pivot distances, which double as exact candidate
    /// distances).
    pub exact: usize,
}

impl SearchStats {
    /// Total candidates discarded without a *completed* exact
    /// computation (early-abandoned evaluations count as pruned).
    pub fn pruned(&self) -> usize {
        self.pruned_pivot
            + self.pruned_paa
            + self.pruned_kim
            + self.pruned_keogh
            + self.pruned_lcss
            + self.pruned_ea
    }

    /// Fraction of candidates discarded without an exact computation,
    /// in `[0, 1]` (`0` for an empty corpus).
    pub fn pruned_fraction(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.candidates as f64
        }
    }

    /// Flushes this search's counters into the global `wp-obs` registry
    /// (no-op while observability is disabled). Called once per search,
    /// so the serve path surfaces pruning behavior without threading the
    /// stats through every caller.
    fn record_obs(&self) {
        if !wp_obs::is_enabled() {
            return;
        }
        OBS_SEARCHES.add(1);
        OBS_CANDIDATES.add(self.candidates as u64);
        OBS_EXACT.add(self.exact as u64);
        for (counter, pruned) in OBS_PRUNED.iter().zip([
            self.pruned_pivot,
            self.pruned_paa,
            self.pruned_kim,
            self.pruned_keogh,
            self.pruned_lcss,
            self.pruned_ea,
        ]) {
            counter.add(pruned as u64);
        }
    }

    /// Accumulates another search's counters into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.candidates += other.candidates;
        self.pruned_pivot += other.pruned_pivot;
        self.pruned_paa += other.pruned_paa;
        self.pruned_kim += other.pruned_kim;
        self.pruned_keogh += other.pruned_keogh;
        self.pruned_lcss += other.pruned_lcss;
        self.pruned_ea += other.pruned_ea;
        self.exact += other.exact;
    }
}

/// Precomputed per-fingerprint pruning state.
struct Entry {
    fp: Matrix,
    /// PAA segment means (norm measures with a PAA bound).
    paa: Option<Matrix>,
    /// Sakoe-Chiba band envelope (DTW measures).
    env: Option<Envelope>,
    /// Per-column global min/max (LCSS measures).
    minmax: Option<Vec<(f64, f64)>>,
    /// Exact distance to each pivot (metric norms).
    pivot_d: Vec<f64>,
}

/// An exact top-k nearest-neighbor index over a fingerprint corpus for
/// one fixed [`Measure`]. See the crate docs for the cascade and the
/// exactness argument.
pub struct Index {
    measure: Measure,
    config: IndexConfig,
    entries: Vec<Entry>,
    /// Corpus positions serving as pivots (metric norms only).
    pivots: Vec<usize>,
    /// PAA segment length (norm measures; fixed row count).
    paa_seg: usize,
    /// Number of PAA segments actually used.
    paa_nseg: usize,
}

impl Index {
    /// Builds an index over `fingerprints` for `measure`. Per-entry
    /// summaries (PAA, envelopes, ε-ranges) are computed in parallel on
    /// the [`wp_runtime`] pool; pivot selection is a deterministic
    /// farthest-first sweep, so the index is bit-identical regardless of
    /// `WP_THREADS`.
    ///
    /// Fingerprint requirements match
    /// [`wp_similarity::measure::try_distance_matrix`]: identical shapes
    /// for norms, a shared column count for the elastic measures. An
    /// empty corpus is allowed (searches return nothing).
    pub fn build(
        fingerprints: Vec<Matrix>,
        measure: Measure,
        config: IndexConfig,
    ) -> Result<Index, String> {
        if !fingerprints.is_empty() {
            validate_fingerprints(&fingerprints, measure)?;
        }
        let (paa_seg, paa_nseg) = match fingerprints.first() {
            Some(fp) => paa_layout(measure, fp.rows(), config.paa_segments),
            None => (1, 0),
        };
        let summaries = wp_runtime::par_map_indexed(fingerprints.len(), |i| {
            summarize(&fingerprints[i], measure, &config, paa_seg, paa_nseg)
        });
        let mut entries: Vec<Entry> = fingerprints
            .into_iter()
            .zip(summaries)
            .map(|(fp, (paa, env, minmax))| Entry {
                fp,
                paa,
                env,
                minmax,
                pivot_d: Vec::new(),
            })
            .collect();

        let mut index = Index {
            measure,
            config,
            entries: Vec::new(),
            pivots: Vec::new(),
            paa_seg,
            paa_nseg,
        };
        index.choose_pivots(&mut entries);
        index.entries = entries;
        Ok(index)
    }

    /// Deterministic farthest-first pivot selection with the full
    /// pivot-distance table. Pivots only help measures with a triangle
    /// inequality; for the rest this is a no-op.
    fn choose_pivots(&mut self, entries: &mut [Entry]) {
        let p_want = match self.measure {
            Measure::Norm(n) if bounds::is_metric(n) => self.config.pivots.min(entries.len()),
            _ => 0,
        };
        if p_want == 0 {
            return;
        }
        let n = entries.len();
        let mut min_dist = vec![f64::INFINITY; n];
        let mut next = 0usize; // farthest-first, seeded at corpus position 0
        for _ in 0..p_want {
            self.pivots.push(next);
            let d = wp_runtime::par_map_indexed(n, |i| {
                self.measure
                    .apply_banded(&entries[next].fp, &entries[i].fp, self.config.band)
            });
            for (i, (e, &di)) in entries.iter_mut().zip(&d).enumerate() {
                e.pivot_d.push(di);
                if di < min_dist[i] {
                    min_dist[i] = di;
                }
            }
            // next pivot: the entry farthest from every chosen pivot
            // (ties break to the lowest index; argmax via total_cmp so a
            // NaN-producing measure still picks deterministically)
            next = (0..n)
                .max_by(|&a, &b| {
                    min_dist[a].total_cmp(&min_dist[b]).then(b.cmp(&a)) // prefer the smaller index on ties
                })
                .unwrap_or(0);
            if min_dist[next] <= 0.0 {
                break; // every remaining entry duplicates a pivot
            }
        }
    }

    /// Appends one fingerprint to the corpus, returning its position.
    /// Summaries and pivot distances are computed immediately; pivots
    /// themselves are fixed at build time, so insertion is O(P) exact
    /// distances plus one summary pass — no rebuild.
    pub fn insert(&mut self, fingerprint: Matrix) -> Result<usize, String> {
        if let Some(first) = self.entries.first() {
            match self.measure {
                Measure::Norm(_) => {
                    if fingerprint.shape() != first.fp.shape() {
                        return Err(format!(
                            "fingerprint has shape {:?} but the index holds {:?}; \
                             norms need identical shapes",
                            fingerprint.shape(),
                            first.fp.shape()
                        ));
                    }
                }
                _ => {
                    if fingerprint.cols() != first.fp.cols() {
                        return Err(format!(
                            "fingerprint has {} features but the index holds {}; \
                             elastic measures need a shared feature count",
                            fingerprint.cols(),
                            first.fp.cols()
                        ));
                    }
                }
            }
        } else {
            let (seg, nseg) =
                paa_layout(self.measure, fingerprint.rows(), self.config.paa_segments);
            self.paa_seg = seg;
            self.paa_nseg = nseg;
        }
        let (paa, env, minmax) = summarize(
            &fingerprint,
            self.measure,
            &self.config,
            self.paa_seg,
            self.paa_nseg,
        );
        let pivot_d = self
            .pivots
            .iter()
            .map(|&p| {
                self.measure
                    .apply_banded(&fingerprint, &self.entries[p].fp, self.config.band)
            })
            .collect();
        self.entries.push(Entry {
            fp: fingerprint,
            paa,
            env,
            minmax,
            pivot_d,
        });
        Ok(self.entries.len() - 1)
    }

    /// Number of indexed fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The measure this index answers queries for.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// The fingerprint stored at corpus position `i`.
    pub fn fingerprint(&self, i: usize) -> &Matrix {
        &self.entries[i].fp
    }

    /// Exact top-k search. See [`Index::search_k_with_stats`].
    pub fn search_k(&self, query: &Matrix, k: usize) -> Result<Vec<Hit>, String> {
        self.search_k_with_stats(query, k).map(|(hits, _)| hits)
    }

    /// Exact top-k search with cascade accounting: returns the `k`
    /// nearest fingerprints, sorted ascending by `(distance, index)` —
    /// bit-identical to [`brute_force_k`] over the same corpus.
    pub fn search_k_with_stats(
        &self,
        query: &Matrix,
        k: usize,
    ) -> Result<(Vec<Hit>, SearchStats), String> {
        let mut stats = SearchStats::default();
        if k == 0 || self.entries.is_empty() {
            return Ok((Vec::new(), stats));
        }
        self.validate_query(query)?;
        stats.candidates = self.entries.len();

        // Query-side summaries.
        let qpaa = match self.measure {
            Measure::Norm(n) if bounds::has_paa(n) && self.paa_nseg > 0 => {
                Some(bounds::paa(query, self.paa_seg, self.paa_nseg))
            }
            _ => None,
        };
        // Exact query-to-pivot distances; reused verbatim when the scan
        // reaches the pivot's own corpus position.
        let mut exact_at: Vec<Option<f64>> = vec![None; self.entries.len()];
        let mut q_pivot = Vec::with_capacity(self.pivots.len());
        for &p in &self.pivots {
            let d = self.exact(query, &self.entries[p].fp);
            stats.exact += 1;
            exact_at[p] = Some(d);
            q_pivot.push(d);
        }

        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        for (i, entry) in self.entries.iter().enumerate() {
            if let Some(d) = exact_at[i] {
                push_best(&mut best, k, d, i);
                continue;
            }
            // Pruning is sound against the k-th best *exact* distance:
            // every entry already in `best` has a smaller corpus index,
            // so a candidate whose lower bound reaches the threshold can
            // at best tie — and ties lose to smaller indices.
            let threshold = if best.len() == k {
                best[k - 1].0
            } else {
                f64::INFINITY
            };
            if self.prune(entry, query, &q_pivot, qpaa.as_ref(), threshold, &mut stats) {
                continue;
            }
            // Survivors pay for the exact measure — through the
            // early-abandoning kernel when the measure supports it, with
            // the same k-th best as the abandon threshold. Abandoning is
            // tie-safe: it only fires when the distance *strictly*
            // exceeds the threshold, and a candidate that merely ties
            // completes and then loses to the smaller corpus index
            // already in the top-k.
            match self.exact_or_abandon(query, &entry.fp, threshold) {
                Some(d) => {
                    stats.exact += 1;
                    push_best(&mut best, k, d, i);
                }
                None => stats.pruned_ea += 1,
            }
        }
        let hits = best
            .into_iter()
            .map(|(distance, index)| Hit { index, distance })
            .collect();
        stats.record_obs();
        Ok((hits, stats))
    }

    /// Runs the cascade for one candidate. Returns `true` when some
    /// lower bound reaches `threshold` (the candidate cannot enter the
    /// top-k) and records which stage fired.
    fn prune(
        &self,
        entry: &Entry,
        query: &Matrix,
        q_pivot: &[f64],
        qpaa: Option<&Matrix>,
        threshold: f64,
        stats: &mut SearchStats,
    ) -> bool {
        // 1. pivot bound: |d(q,p) − d(x,p)| ≤ d(q,x) for metrics.
        if !q_pivot.is_empty() {
            let lb = q_pivot
                .iter()
                .zip(&entry.pivot_d)
                .map(|(qd, xd)| (qd - xd).abs())
                .fold(0.0f64, f64::max);
            if lb >= threshold {
                stats.pruned_pivot += 1;
                return true;
            }
        }
        // 2. PAA bound.
        if let (Some(qp), Some(ep), Measure::Norm(n)) = (qpaa, entry.paa.as_ref(), self.measure) {
            if bounds::paa_lower_bound(n, qp, ep, self.paa_seg) >= threshold {
                stats.pruned_paa += 1;
                return true;
            }
        }
        match self.measure {
            // 3 + 4. DTW bounds.
            Measure::DtwDependent | Measure::DtwIndependent => {
                let independent = self.measure == Measure::DtwIndependent;
                let kim = if independent {
                    bounds::lb_kim_independent(query, &entry.fp)
                } else {
                    bounds::lb_kim_dependent(query, &entry.fp)
                };
                if kim >= threshold {
                    stats.pruned_kim += 1;
                    return true;
                }
                // LB_Keogh envelopes are aligned per row: equal lengths only.
                if let Some(env) = entry
                    .env
                    .as_ref()
                    .filter(|_| query.rows() == entry.fp.rows())
                {
                    let keogh = if independent {
                        bounds::lb_keogh_independent(query, env)
                    } else {
                        bounds::lb_keogh_dependent(query, env)
                    };
                    if keogh >= threshold {
                        stats.pruned_keogh += 1;
                        return true;
                    }
                }
            }
            // 5. LCSS ε-envelope bound.
            Measure::LcssDependent { epsilon } | Measure::LcssIndependent { epsilon } => {
                if let Some(mm) = entry.minmax.as_ref() {
                    let independent = matches!(self.measure, Measure::LcssIndependent { .. });
                    let lb = if independent {
                        bounds::lb_lcss_independent(query, mm, epsilon, entry.fp.rows())
                    } else {
                        bounds::lb_lcss_dependent(query, mm, epsilon, entry.fp.rows())
                    };
                    if lb >= threshold {
                        stats.pruned_lcss += 1;
                        return true;
                    }
                }
            }
            Measure::Norm(_) => {}
        }
        false
    }

    /// The exact (banded, if configured) measure the index serves.
    fn exact(&self, query: &Matrix, fp: &Matrix) -> f64 {
        self.measure.apply_banded(query, fp, self.config.band)
    }

    /// Exact distance through the early-abandoning DTW kernel when
    /// enabled and applicable; `None` when the kernel proved the
    /// distance strictly exceeds `threshold`. Completed evaluations are
    /// bit-identical to [`Index::exact`]. An infinite threshold (top-k
    /// not yet full) never abandons; the EA kernel is still preferred
    /// there because it evaluates dimensions sequentially — one
    /// candidate is a poor unit of nested parallelism inside the
    /// already-sequential scan loop.
    fn exact_or_abandon(&self, query: &Matrix, fp: &Matrix, threshold: f64) -> Option<f64> {
        use wp_similarity::dtw;
        if self.config.early_abandon {
            match self.measure {
                Measure::DtwDependent => {
                    return dtw::dtw_dependent_banded_ea(query, fp, self.config.band, threshold)
                        .exact();
                }
                Measure::DtwIndependent => {
                    return dtw::dtw_independent_banded_ea(query, fp, self.config.band, threshold)
                        .exact();
                }
                _ => {}
            }
        }
        Some(self.exact(query, fp))
    }

    fn validate_query(&self, query: &Matrix) -> Result<(), String> {
        let first = &self.entries[0].fp;
        match self.measure {
            Measure::Norm(_) => {
                if query.shape() != first.shape() {
                    return Err(format!(
                        "query has shape {:?} but the index holds {:?}; \
                         norms need identical shapes",
                        query.shape(),
                        first.shape()
                    ));
                }
            }
            _ => {
                if query.cols() != first.cols() {
                    return Err(format!(
                        "query has {} features but the index holds {}; \
                         elastic measures need a shared feature count",
                        query.cols(),
                        first.cols()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// PAA layout for a fingerprint with `rows` rows: segment length and
/// segment count (`0` segments disables the bound). Only norm measures
/// with a PAA bound get a layout.
fn paa_layout(measure: Measure, rows: usize, target_segments: usize) -> (usize, usize) {
    match measure {
        Measure::Norm(n) if bounds::has_paa(n) && rows > 0 => {
            let seg = (rows / target_segments.max(1)).max(1);
            (seg, rows / seg)
        }
        _ => (1, 0),
    }
}

/// Computes the per-entry summaries the cascade needs for `measure`.
#[allow(clippy::type_complexity)]
fn summarize(
    fp: &Matrix,
    measure: Measure,
    config: &IndexConfig,
    paa_seg: usize,
    paa_nseg: usize,
) -> (Option<Matrix>, Option<Envelope>, Option<Vec<(f64, f64)>>) {
    match measure {
        Measure::Norm(n) if bounds::has_paa(n) && paa_nseg > 0 => {
            (Some(bounds::paa(fp, paa_seg, paa_nseg)), None, None)
        }
        Measure::Norm(_) => (None, None, None),
        Measure::DtwDependent | Measure::DtwIndependent => {
            let w = config.band.unwrap_or(fp.rows().max(1));
            (None, Some(bounds::envelope(fp, w)), None)
        }
        Measure::LcssDependent { .. } | Measure::LcssIndependent { .. } => {
            (None, None, Some(bounds::column_minmax(fp)))
        }
    }
}

/// Inserts `(d, i)` into the ascending `(distance, index)` top-k list,
/// dropping the worst entry when the list would exceed `k`.
fn push_best(best: &mut Vec<(f64, usize)>, k: usize, d: f64, i: usize) {
    let pos = best.partition_point(|&(bd, bi)| match bd.total_cmp(&d) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => bi < i,
    });
    if pos < k {
        best.insert(pos, (d, i));
        best.truncate(k);
    }
}

/// Reference implementation: exact distances to every fingerprint
/// (evaluated in parallel on the [`wp_runtime`] pool), sorted ascending
/// by `(distance, index)` under `f64::total_cmp`, truncated to `k`.
/// [`Index::search_k`] is bit-identical to this by construction.
pub fn brute_force_k(
    fingerprints: &[Matrix],
    measure: Measure,
    band: Option<usize>,
    query: &Matrix,
    k: usize,
) -> Vec<Hit> {
    let distances = wp_runtime::par_map_indexed(fingerprints.len(), |i| {
        measure.apply_banded(query, &fingerprints[i], band)
    });
    let mut all: Vec<(f64, usize)> = distances.into_iter().zip(0..).collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all.truncate(k);
    all.into_iter()
        .map(|(distance, index)| Hit { index, distance })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_similarity::measure::DEFAULT_LCSS_EPSILON;
    use wp_similarity::Norm;

    fn mat(seed: u64, rows: usize, cols: usize) -> Matrix {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
        let rows_v: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        (s % 2_000) as f64 / 1_000.0 - 1.0
                    })
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows_v)
    }

    fn corpus(n: usize, rows: usize, cols: usize) -> Vec<Matrix> {
        (0..n).map(|i| mat(i as u64, rows, cols)).collect()
    }

    fn assert_identical(hits: &[Hit], brute: &[Hit], ctx: &str) {
        assert_eq!(hits.len(), brute.len(), "{ctx}: result count");
        for (h, b) in hits.iter().zip(brute) {
            assert_eq!(h.index, b.index, "{ctx}: index");
            assert_eq!(
                h.distance.to_bits(),
                b.distance.to_bits(),
                "{ctx}: distance bits"
            );
        }
    }

    #[test]
    fn search_matches_brute_force_for_every_measure() {
        let fps = corpus(24, 16, 3);
        let query = mat(999, 16, 3);
        for measure in Measure::mts_suite() {
            let index = Index::build(fps.clone(), measure, IndexConfig::default()).unwrap();
            for k in [1, 3, 24, 30] {
                let hits = index.search_k(&query, k).unwrap();
                let brute = brute_force_k(&fps, measure, None, &query, k);
                assert_identical(&hits, &brute, &format!("{} k={k}", measure.label()));
            }
        }
    }

    #[test]
    fn banded_search_matches_banded_brute_force() {
        let fps = corpus(16, 20, 2);
        let query = mat(777, 20, 2);
        let config = IndexConfig {
            band: Some(3),
            ..IndexConfig::default()
        };
        for measure in [Measure::DtwDependent, Measure::DtwIndependent] {
            let index = Index::build(fps.clone(), measure, config).unwrap();
            let hits = index.search_k(&query, 4).unwrap();
            let brute = brute_force_k(&fps, measure, Some(3), &query, 4);
            assert_identical(&hits, &brute, &measure.label());
        }
    }

    #[test]
    fn insert_matches_a_fresh_scan() {
        let fps = corpus(20, 12, 2);
        let query = mat(555, 12, 2);
        for measure in [
            Measure::Norm(Norm::L21),
            Measure::DtwIndependent,
            Measure::LcssDependent {
                epsilon: DEFAULT_LCSS_EPSILON,
            },
        ] {
            let mut index =
                Index::build(fps[..10].to_vec(), measure, IndexConfig::default()).unwrap();
            for fp in &fps[10..] {
                index.insert(fp.clone()).unwrap();
            }
            assert_eq!(index.len(), 20);
            let hits = index.search_k(&query, 5).unwrap();
            let brute = brute_force_k(&fps, measure, None, &query, 5);
            assert_identical(&hits, &brute, &measure.label());
        }
    }

    #[test]
    fn build_from_empty_then_insert() {
        let mut index =
            Index::build(Vec::new(), Measure::Norm(Norm::L11), IndexConfig::default()).unwrap();
        assert!(index.is_empty());
        assert!(index.search_k(&mat(1, 4, 2), 3).unwrap().is_empty());
        for i in 0..6 {
            index.insert(mat(i, 4, 2)).unwrap();
        }
        let query = mat(42, 4, 2);
        let fps: Vec<Matrix> = (0..6).map(|i| mat(i, 4, 2)).collect();
        let hits = index.search_k(&query, 2).unwrap();
        let brute = brute_force_k(&fps, Measure::Norm(Norm::L11), None, &query, 2);
        assert_identical(&hits, &brute, "grown from empty");
    }

    #[test]
    fn duplicate_fingerprints_tie_break_by_index() {
        let fp = mat(3, 8, 2);
        let fps = vec![fp.clone(), fp.clone(), fp.clone(), mat(9, 8, 2)];
        let index = Index::build(
            fps.clone(),
            Measure::Norm(Norm::Frobenius),
            IndexConfig::default(),
        )
        .unwrap();
        let hits = index.search_k(&fp, 2).unwrap();
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 1);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn unequal_length_corpus_works_for_elastic_measures() {
        let fps = vec![mat(0, 10, 2), mat(1, 14, 2), mat(2, 7, 2), mat(3, 10, 2)];
        let query = mat(50, 10, 2);
        for measure in [
            Measure::DtwDependent,
            Measure::LcssIndependent {
                epsilon: DEFAULT_LCSS_EPSILON,
            },
        ] {
            let index = Index::build(fps.clone(), measure, IndexConfig::default()).unwrap();
            let hits = index.search_k(&query, 3).unwrap();
            let brute = brute_force_k(&fps, measure, None, &query, 3);
            assert_identical(&hits, &brute, &measure.label());
        }
    }

    #[test]
    fn near_duplicate_corpus_prunes_most_candidates() {
        // clusters around two centers: searching near one center should
        // prune most of the other cluster via the cascade
        let base_a = mat(1, 16, 3);
        let base_b = mat(2, 16, 3);
        let mut fps = Vec::new();
        for i in 0..64 {
            let noise = mat(100 + i, 16, 3);
            let base = if i % 4 == 0 { &base_a } else { &base_b };
            let rows: Vec<Vec<f64>> = (0..16)
                .map(|r| {
                    (0..3)
                        .map(|c| base[(r, c)] + 0.01 * noise[(r, c)])
                        .collect()
                })
                .collect();
            fps.push(Matrix::from_rows(&rows));
        }
        let index = Index::build(fps, Measure::Norm(Norm::L21), IndexConfig::default()).unwrap();
        let (hits, stats) = index.search_k_with_stats(&base_a, 3).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(stats.candidates, stats.pruned() + stats.exact);
        assert!(
            stats.pruned() > stats.candidates / 2,
            "expected >50% pruning, got {stats:?}"
        );
    }

    #[test]
    fn rejects_mismatched_queries() {
        let index = Index::build(
            corpus(4, 8, 2),
            Measure::Norm(Norm::L21),
            IndexConfig::default(),
        )
        .unwrap();
        let err = index.search_k(&mat(0, 9, 2), 1).unwrap_err();
        assert!(err.contains("identical shapes"), "{err}");
        let elastic = Index::build(
            corpus(4, 8, 2),
            Measure::DtwDependent,
            IndexConfig::default(),
        )
        .unwrap();
        let err = elastic.search_k(&mat(0, 8, 3), 1).unwrap_err();
        assert!(err.contains("shared feature count"), "{err}");
    }

    #[test]
    fn rejects_mismatched_inserts() {
        let mut index = Index::build(
            corpus(4, 8, 2),
            Measure::Norm(Norm::L21),
            IndexConfig::default(),
        )
        .unwrap();
        assert!(index.insert(mat(0, 9, 2)).is_err());
    }

    #[test]
    fn search_is_thread_count_invariant() {
        let fps = corpus(20, 16, 3);
        let query = mat(321, 16, 3);
        for measure in Measure::mts_suite() {
            let h1 = wp_runtime::with_thread_count(1, || {
                let index = Index::build(fps.clone(), measure, IndexConfig::default()).unwrap();
                index.search_k(&query, 5).unwrap()
            });
            let h8 = wp_runtime::with_thread_count(8, || {
                let index = Index::build(fps.clone(), measure, IndexConfig::default()).unwrap();
                index.search_k(&query, 5).unwrap()
            });
            assert_identical(&h1, &h8, &measure.label());
        }
    }

    #[test]
    fn stats_account_for_every_candidate() {
        let fps = corpus(30, 16, 3);
        let query = mat(888, 16, 3);
        for measure in Measure::mts_suite() {
            let index = Index::build(fps.clone(), measure, IndexConfig::default()).unwrap();
            let (_, stats) = index.search_k_with_stats(&query, 3).unwrap();
            assert_eq!(
                stats.candidates,
                stats.pruned() + stats.exact,
                "{}: {stats:?}",
                measure.label()
            );
        }
    }

    /// Embedding-style fingerprints — single-row 1×k vectors like the
    /// Plan-Embed bottleneck — must flow through the metric-norm
    /// pivot/PAA cascade byte-identically to brute force.
    #[test]
    fn embedding_vectors_flow_through_the_metric_cascade() {
        let fps = corpus(40, 1, 4);
        let query = mat(4242, 1, 4);
        let mut pruned_somewhere = false;
        for norm in [Norm::L11, Norm::L21, Norm::Frobenius, Norm::Canberra] {
            let measure = Measure::Norm(norm);
            let index = Index::build(fps.clone(), measure, IndexConfig::default()).unwrap();
            let (hits, stats) = index.search_k_with_stats(&query, 5).unwrap();
            let brute = brute_force_k(&fps, measure, None, &query, 5);
            assert_identical(&hits, &brute, &format!("embed {}", measure.label()));
            assert_eq!(
                stats.candidates,
                stats.pruned() + stats.exact,
                "embed {}: {stats:?}",
                measure.label()
            );
            pruned_somewhere |= stats.pruned_pivot > 0 || stats.pruned_paa > 0;
        }
        assert!(
            pruned_somewhere,
            "the cascade never pruned a 1×k candidate — bounds inactive for embeddings"
        );
    }
}

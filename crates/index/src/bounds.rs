//! The lower bounds behind the pruning cascade.
//!
//! Every function here returns a value that provably never exceeds the
//! exact distance it stands in for — that is the whole exactness
//! argument of [`crate::Index`]: a candidate is discarded only when a
//! *lower bound* on its distance already reaches the current k-th best
//! exact distance.
//!
//! | bound | measure | cost | idea |
//! |---|---|---|---|
//! | pivot | metric norms | O(P) | triangle inequality via reference points |
//! | PAA | L1,1 / L2,1 / Frobenius | O(S·K) | Jensen / Cauchy-Schwarz per segment |
//! | LB_Kim | DTW | O(K) | endpoints are always on the warping path |
//! | LB_Keogh | DTW | O(T·K) | per-point distance to the band envelope |
//! | match-count | LCSS | O(T·K) | points outside the ε-envelope never match |

use wp_linalg::Matrix;
use wp_similarity::Norm;

/// Piecewise aggregate approximation: `nseg` segment means of length
/// `seg` per column. Rows beyond `nseg * seg` are ignored — dropping
/// terms from the (non-negative) per-row sums keeps every bound below
/// a lower bound of the full distance.
pub(crate) fn paa(fp: &Matrix, seg: usize, nseg: usize) -> Matrix {
    let cols = fp.cols();
    let mut out = Matrix::zeros(nseg, cols);
    for s in 0..nseg {
        for k in 0..cols {
            let mut acc = 0.0;
            for i in s * seg..(s + 1) * seg {
                acc += fp[(i, k)];
            }
            out[(s, k)] = acc / seg as f64;
        }
    }
    out
}

/// Lower-bounds `norm(A, B)` from the PAA summaries of `A` and `B`.
///
/// Per segment of length `s` and column `k`:
/// * L1,1: `Σ_i |a_i − b_i| ≥ |Σ_i (a_i − b_i)| = s·|ā − b̄|` (Jensen),
/// * Frobenius / L2,1: `Σ_i (a_i − b_i)² ≥ (Σ_i (a_i − b_i))² / s
///   = s·(ā − b̄)²` (Cauchy-Schwarz).
///
/// Only these three norms have a PAA bound; the caller never asks for
/// the others.
pub(crate) fn paa_lower_bound(norm: Norm, qp: &Matrix, ep: &Matrix, seg: usize) -> f64 {
    let s = seg as f64;
    match norm {
        Norm::L11 => {
            let mut acc = 0.0;
            for i in 0..qp.rows() {
                for k in 0..qp.cols() {
                    acc += (qp[(i, k)] - ep[(i, k)]).abs();
                }
            }
            s * acc
        }
        Norm::Frobenius => {
            let mut acc = 0.0;
            for i in 0..qp.rows() {
                for k in 0..qp.cols() {
                    let d = qp[(i, k)] - ep[(i, k)];
                    acc += d * d;
                }
            }
            (s * acc).sqrt()
        }
        Norm::L21 => {
            let mut total = 0.0;
            for k in 0..qp.cols() {
                let mut acc = 0.0;
                for i in 0..qp.rows() {
                    let d = qp[(i, k)] - ep[(i, k)];
                    acc += d * d;
                }
                total += (s * acc).sqrt();
            }
            total
        }
        _ => 0.0,
    }
}

/// True when the norm satisfies the triangle inequality (pivot pruning
/// is sound). Chi² and 1−correlation do not.
pub(crate) fn is_metric(norm: Norm) -> bool {
    matches!(
        norm,
        Norm::L11 | Norm::L21 | Norm::Frobenius | Norm::Canberra
    )
}

/// True when the norm has a PAA lower bound.
pub(crate) fn has_paa(norm: Norm) -> bool {
    matches!(norm, Norm::L11 | Norm::L21 | Norm::Frobenius)
}

/// LB_Kim for dependent DTW: every warping path matches the first points
/// and the last points, so their squared distances (distinct path cells
/// unless both series have length 1) lower-bound the accumulated cost.
pub(crate) fn lb_kim_dependent(q: &Matrix, e: &Matrix) -> f64 {
    let (m, n) = (q.rows(), e.rows());
    if m == 0 || n == 0 {
        return 0.0;
    }
    let mut acc = wp_linalg::ops::sq_dist(q.row(0), e.row(0));
    if (m, n) != (1, 1) {
        acc += wp_linalg::ops::sq_dist(q.row(m - 1), e.row(n - 1));
    }
    acc.sqrt()
}

/// LB_Kim for independent DTW: the per-dimension endpoint bound, summed
/// after the square root exactly like the exact measure sums the
/// per-dimension distances.
pub(crate) fn lb_kim_independent(q: &Matrix, e: &Matrix) -> f64 {
    let (m, n) = (q.rows(), e.rows());
    if m == 0 || n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for k in 0..q.cols() {
        let d0 = q[(0, k)] - e[(0, k)];
        let mut acc = d0 * d0;
        if (m, n) != (1, 1) {
            let d1 = q[(m - 1, k)] - e[(n - 1, k)];
            acc += d1 * d1;
        }
        total += acc.sqrt();
    }
    total
}

/// Per-column running min/max envelope of a series under a Sakoe-Chiba
/// half-width `w`: `lower[i][k] = min_{|j−i|≤w} e[j][k]` and the
/// symmetric max. `w >= rows` degenerates to the global min/max, which
/// is the correct envelope for unbanded DTW.
pub(crate) struct Envelope {
    pub(crate) lower: Matrix,
    pub(crate) upper: Matrix,
}

/// Streaming (Lemire) envelope: one monotonic deque per extremum keeps
/// the window minimum/maximum as the window slides, so each element is
/// pushed and popped at most once — O(rows) per column instead of the
/// O(rows·w) rescans of [`naive_envelope`]. Element-wise identical to
/// the naive scan (both report the exact window extremum; no arithmetic
/// is involved, only comparisons).
pub(crate) fn envelope(fp: &Matrix, w: usize) -> Envelope {
    let (rows, cols) = fp.shape();
    let mut lower = Matrix::zeros(rows, cols);
    let mut upper = Matrix::zeros(rows, cols);
    // deques hold row indices; values at minq indices are increasing,
    // at maxq indices decreasing — the front is the window extremum
    let mut minq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut maxq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for k in 0..cols {
        minq.clear();
        maxq.clear();
        let mut arrived = 0usize; // rows pushed into the deques so far
        for i in 0..rows {
            let hi = (i + w).min(rows - 1);
            while arrived <= hi {
                let v = fp[(arrived, k)];
                while matches!(minq.back(), Some(&b) if fp[(b, k)] > v) {
                    minq.pop_back();
                }
                minq.push_back(arrived);
                while matches!(maxq.back(), Some(&b) if fp[(b, k)] < v) {
                    maxq.pop_back();
                }
                maxq.push_back(arrived);
                arrived += 1;
            }
            let lo = i.saturating_sub(w);
            while matches!(minq.front(), Some(&f) if f < lo) {
                minq.pop_front();
            }
            while matches!(maxq.front(), Some(&f) if f < lo) {
                maxq.pop_front();
            }
            lower[(i, k)] = fp[(minq[0], k)];
            upper[(i, k)] = fp[(maxq[0], k)];
        }
    }
    Envelope { lower, upper }
}

/// Reference O(rows·w) envelope: rescans the full window per row. Kept
/// as the oracle the streaming implementation is property-tested
/// against.
#[cfg(test)]
pub(crate) fn naive_envelope(fp: &Matrix, w: usize) -> Envelope {
    let (rows, cols) = fp.shape();
    let mut lower = Matrix::zeros(rows, cols);
    let mut upper = Matrix::zeros(rows, cols);
    for i in 0..rows {
        let lo = i.saturating_sub(w);
        let hi = (i + w).min(rows.saturating_sub(1));
        for k in 0..cols {
            let mut mn = f64::INFINITY;
            let mut mx = f64::NEG_INFINITY;
            for j in lo..=hi {
                mn = mn.min(fp[(j, k)]);
                mx = mx.max(fp[(j, k)]);
            }
            lower[(i, k)] = mn;
            upper[(i, k)] = mx;
        }
    }
    Envelope { lower, upper }
}

/// LB_Keogh for dependent DTW (equal lengths only — the caller guards):
/// a query point `q_i` is matched, on any path inside the band, to some
/// candidate point within the envelope window of `i`, so its squared
/// distance to that point is at least its squared distance to the
/// envelope. Summing over all `i` and all dimensions lower-bounds the
/// accumulated squared cost of the *banded* DTW.
pub(crate) fn lb_keogh_dependent(q: &Matrix, env: &Envelope) -> f64 {
    let mut acc = 0.0;
    for i in 0..q.rows() {
        for k in 0..q.cols() {
            let v = q[(i, k)];
            let u = env.upper[(i, k)];
            let l = env.lower[(i, k)];
            if v > u {
                acc += (v - u) * (v - u);
            } else if v < l {
                acc += (l - v) * (l - v);
            }
        }
    }
    acc.sqrt()
}

/// LB_Keogh for independent DTW: the per-dimension envelope bound,
/// summed after the square root.
pub(crate) fn lb_keogh_independent(q: &Matrix, env: &Envelope) -> f64 {
    let mut total = 0.0;
    for k in 0..q.cols() {
        let mut acc = 0.0;
        for i in 0..q.rows() {
            let v = q[(i, k)];
            let u = env.upper[(i, k)];
            let l = env.lower[(i, k)];
            if v > u {
                acc += (v - u) * (v - u);
            } else if v < l {
                acc += (l - v) * (l - v);
            }
        }
        total += acc.sqrt();
    }
    total
}

/// LCSS match-count bound, dependent variant: a query row can only ever
/// match a candidate row if every dimension lies within `ε` of the
/// candidate's global per-dimension range, and matched query rows are
/// distinct — so the match length is at most the count of matchable
/// rows, and `1 − min(cnt, denom)/denom` lower-bounds the distance.
pub(crate) fn lb_lcss_dependent(q: &Matrix, minmax: &[(f64, f64)], epsilon: f64, n: usize) -> f64 {
    let m = q.rows();
    let denom = m.min(n);
    if denom == 0 {
        return 0.0;
    }
    let mut cnt = 0usize;
    for i in 0..m {
        let matchable = (0..q.cols()).all(|k| {
            let v = q[(i, k)];
            v >= minmax[k].0 - epsilon && v <= minmax[k].1 + epsilon
        });
        if matchable {
            cnt += 1;
        }
    }
    1.0 - cnt.min(denom) as f64 / denom as f64
}

/// LCSS match-count bound, independent variant: the per-dimension bound
/// averaged over dimensions, mirroring the exact measure.
pub(crate) fn lb_lcss_independent(
    q: &Matrix,
    minmax: &[(f64, f64)],
    epsilon: f64,
    n: usize,
) -> f64 {
    let m = q.rows();
    let denom = m.min(n);
    let cols = q.cols();
    if denom == 0 || cols == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for (k, &(lo, hi)) in minmax.iter().enumerate() {
        let mut cnt = 0usize;
        for i in 0..m {
            let v = q[(i, k)];
            if v >= lo - epsilon && v <= hi + epsilon {
                cnt += 1;
            }
        }
        total += 1.0 - cnt.min(denom) as f64 / denom as f64;
    }
    total / cols as f64
}

/// Per-column global `(min, max)` of a fingerprint — the ε-envelope
/// anchor for the LCSS bound.
pub(crate) fn column_minmax(fp: &Matrix) -> Vec<(f64, f64)> {
    (0..fp.cols())
        .map(|k| {
            let mut mn = f64::INFINITY;
            let mut mx = f64::NEG_INFINITY;
            for i in 0..fp.rows() {
                mn = mn.min(fp[(i, k)]);
                mx = mx.max(fp[(i, k)]);
            }
            (mn, mx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_similarity::measure::Measure;

    fn mat(seed: u64, rows: usize, cols: usize) -> Matrix {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7);
        let rows_v: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        (s % 2_000) as f64 / 1_000.0 - 1.0
                    })
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows_v)
    }

    #[test]
    fn paa_bounds_never_exceed_exact_norms() {
        for seed in 0..20u64 {
            let a = mat(seed, 17, 3);
            let b = mat(seed + 1000, 17, 3);
            let seg = 4;
            let nseg = 4; // 16 of 17 rows covered
            let pa = paa(&a, seg, nseg);
            let pb = paa(&b, seg, nseg);
            for norm in [Norm::L11, Norm::L21, Norm::Frobenius] {
                let lb = paa_lower_bound(norm, &pa, &pb, seg);
                let exact = norm.apply(&a, &b);
                assert!(lb <= exact + 1e-9, "{norm:?}: lb {lb} > exact {exact}");
            }
        }
    }

    #[test]
    fn kim_and_keogh_bound_banded_dtw() {
        for seed in 0..20u64 {
            let a = mat(seed, 25, 2);
            let b = mat(seed + 500, 25, 2);
            for band in [Some(3), Some(10), None] {
                let w = band.unwrap_or(a.rows());
                let env = envelope(&b, w);
                let dep = Measure::DtwDependent.apply_banded(&a, &b, band);
                let ind = Measure::DtwIndependent.apply_banded(&a, &b, band);
                assert!(lb_kim_dependent(&a, &b) <= dep + 1e-9);
                assert!(lb_keogh_dependent(&a, &env) <= dep + 1e-9);
                assert!(lb_kim_independent(&a, &b) <= ind + 1e-9);
                assert!(lb_keogh_independent(&a, &env) <= ind + 1e-9);
            }
        }
    }

    #[test]
    fn keogh_is_exactly_zero_for_points_inside_the_envelope() {
        let b = mat(3, 12, 2);
        let env = envelope(&b, 12);
        // b itself lies inside its own envelope
        assert_eq!(lb_keogh_dependent(&b, &env), 0.0);
    }

    #[test]
    fn lcss_bounds_never_exceed_exact() {
        for seed in 0..20u64 {
            let a = mat(seed, 14, 3);
            let b = mat(seed + 77, 19, 3);
            let eps = 0.1;
            let mm = column_minmax(&b);
            let dep = Measure::LcssDependent { epsilon: eps }.apply(&a, &b);
            let ind = Measure::LcssIndependent { epsilon: eps }.apply(&a, &b);
            assert!(lb_lcss_dependent(&a, &mm, eps, b.rows()) <= dep + 1e-9);
            assert!(lb_lcss_independent(&a, &mm, eps, b.rows()) <= ind + 1e-9);
        }
    }

    #[test]
    fn streaming_envelope_matches_naive_elementwise() {
        // the Lemire deque envelope must agree with the O(rows·w)
        // rescan on every element, for random series, shapes, and band
        // widths (including w = 0, w >= rows, and single-row series)
        for seed in 0..30u64 {
            for &(rows, cols) in &[(1usize, 1usize), (2, 3), (13, 2), (40, 4), (64, 1)] {
                let fp = mat(seed.wrapping_add(rows as u64 * 101), rows, cols);
                for w in [0usize, 1, 2, 5, rows / 2, rows, rows + 7] {
                    let fast = envelope(&fp, w);
                    let slow = naive_envelope(&fp, w);
                    for i in 0..rows {
                        for k in 0..cols {
                            assert_eq!(
                                fast.lower[(i, k)].to_bits(),
                                slow.lower[(i, k)].to_bits(),
                                "lower seed={seed} {rows}x{cols} w={w} at ({i},{k})"
                            );
                            assert_eq!(
                                fast.upper[(i, k)].to_bits(),
                                slow.upper[(i, k)].to_bits(),
                                "upper seed={seed} {rows}x{cols} w={w} at ({i},{k})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn envelope_full_width_is_global_minmax() {
        let b = mat(9, 10, 2);
        let env = envelope(&b, b.rows());
        let mm = column_minmax(&b);
        for i in 0..b.rows() {
            for (k, &(lo, hi)) in mm.iter().enumerate() {
                assert_eq!(env.lower[(i, k)], lo);
                assert_eq!(env.upper[(i, k)], hi);
            }
        }
    }
}

//! `wp-obs` — a global, gated metrics and tracing registry.
//!
//! Every stage of the prediction pipeline reports into one process-wide
//! registry of named series: monotone **counters**, last-write **gauges**,
//! and **span timers** (count / total ns / max ns per name). The registry
//! follows the `wp-faults` invariant exactly: observability is **off by
//! default**, and while it is off every instrumentation site costs a
//! single relaxed atomic load — no allocation, no lock, no `Instant`
//! syscall — and the instrumented code produces byte-identical outputs
//! to an uninstrumented build.
//!
//! # Hot paths vs. cold paths
//!
//! Hot sites (a distance call, a pool batch) use [`LazyCounter`] /
//! [`LazySpan`] statics: the series name is a `const` string, the
//! registry is consulted once ever (cached through a [`OnceLock`]), and
//! recording is a couple of relaxed `fetch_add`s. Cold sites with
//! runtime-labeled series (a feature-selection strategy name) use
//! [`add_labeled`] / [`time_labeled`], which allocate the series name —
//! but only after the enabled check passes.
//!
//! # Exposition
//!
//! [`snapshot`] freezes every registered series (sorted by name, so a
//! snapshot of deterministic counters is itself deterministic) and
//! renders as Prometheus text ([`Snapshot::render_prometheus`], served
//! by `GET /metrics`), a human table ([`Snapshot::render_summary`],
//! printed by `wp trace`), or JSON ([`Snapshot::to_json`], embedded in
//! chaos/loadgen reports). [`parse_prometheus`] is the matching reader
//! used by load generators to validate a scrape.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use wp_json::Json;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the registry on or off. Off is the default; see the crate docs
/// for what "off" guarantees.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Shorthand for `set_enabled(true)`.
pub fn enable() {
    set_enabled(true);
}

/// Whether instrumentation currently records. The single load every
/// disabled hot-path site pays.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotone counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Aggregate of one span timer: how often it ran, total and worst time.
#[derive(Default)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    /// Records one timed interval.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Span(&'static SpanStat),
}

fn registry() -> &'static Mutex<BTreeMap<String, Slot>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Slot>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Slot>> {
    registry().lock().expect("obs registry poisoned")
}

/// Returns the counter registered under `name`, creating it on first
/// use. Registered series live for the process lifetime (they are
/// leaked), which is what lets hot paths hold `&'static` handles.
///
/// # Panics
///
/// Panics if `name` is already registered as a different series kind.
pub fn register_counter(name: &str) -> &'static Counter {
    let mut map = lock_registry();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Slot::Counter(Box::leak(Box::default())))
    {
        Slot::Counter(c) => c,
        _ => panic!("series '{name}' is registered as a non-counter"),
    }
}

/// Counter-style registration for a [`Gauge`]; see [`register_counter`].
pub fn register_gauge(name: &str) -> &'static Gauge {
    let mut map = lock_registry();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Slot::Gauge(Box::leak(Box::default())))
    {
        Slot::Gauge(g) => g,
        _ => panic!("series '{name}' is registered as a non-gauge"),
    }
}

/// Counter-style registration for a [`SpanStat`]; see [`register_counter`].
pub fn register_span(name: &str) -> &'static SpanStat {
    let mut map = lock_registry();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Slot::Span(Box::leak(Box::default())))
    {
        Slot::Span(s) => s,
        _ => panic!("series '{name}' is registered as a non-span"),
    }
}

/// A statically-named counter whose registry lookup happens at most once.
///
/// ```
/// static DISTANCE_CALLS: wp_obs::LazyCounter =
///     wp_obs::LazyCounter::new("wp_similarity_distance_calls_total");
/// DISTANCE_CALLS.add(1); // no-op unless wp_obs::enable() was called
/// ```
pub struct LazyCounter {
    name: &'static str,
    slot: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A counter that will register under `name` on first enabled use.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Adds `n` when the registry is enabled; otherwise a relaxed load.
    #[inline]
    pub fn add(&self, n: u64) {
        if !is_enabled() {
            return;
        }
        self.slot.get_or_init(|| register_counter(self.name)).add(n);
    }
}

/// [`LazyCounter`]'s gauge twin.
pub struct LazyGauge {
    name: &'static str,
    slot: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// A gauge that will register under `name` on first enabled use.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Sets the gauge when the registry is enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if !is_enabled() {
            return;
        }
        self.slot.get_or_init(|| register_gauge(self.name)).set(v);
    }
}

/// [`LazyCounter`]'s span-timer twin.
pub struct LazySpan {
    name: &'static str,
    slot: OnceLock<&'static SpanStat>,
}

impl LazySpan {
    /// A span timer that will register under `name` on first enabled use.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Starts timing; the returned guard records on drop. Disabled, the
    /// guard is inert and no clock is read.
    #[inline]
    pub fn start(&self) -> SpanGuard {
        if !is_enabled() {
            return SpanGuard(None);
        }
        SpanGuard(Some((
            self.slot.get_or_init(|| register_span(self.name)),
            Instant::now(),
        )))
    }

    /// Records an externally-measured interval (for sites that already
    /// hold an elapsed time, like the server's request timer).
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        if !is_enabled() {
            return;
        }
        self.slot
            .get_or_init(|| register_span(self.name))
            .observe_ns(ns);
    }
}

/// Records the elapsed time into its span when dropped.
pub struct SpanGuard(Option<(&'static SpanStat, Instant)>);

impl SpanGuard {
    /// A guard that records nothing — for call sites that must skip even
    /// building a labeled series name while disabled.
    pub const fn inert() -> Self {
        Self(None)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((stat, started)) = self.0.take() {
            stat.observe_ns(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }
}

/// `family{label="value"}` — the one label shape the suite uses.
pub fn series(family: &str, label: &str, value: &str) -> String {
    format!("{family}{{{label}=\"{value}\"}}")
}

/// Adds `n` to the counter `family{label="value"}`. The name is only
/// built (and the registry only touched) when enabled.
pub fn add_labeled(family: &str, label: &str, value: &str, n: u64) {
    if !is_enabled() {
        return;
    }
    register_counter(&series(family, label, value)).add(n);
}

/// Starts a span guard on `family{label="value"}`; inert when disabled.
pub fn time_labeled(family: &str, label: &str, value: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some((
        register_span(&series(family, label, value)),
        Instant::now(),
    )))
}

/// Zeroes every registered series (names stay registered). Used between
/// chaos replays so a second run's numbers are not contaminated by the
/// first's.
pub fn reset() {
    for slot in lock_registry().values() {
        match slot {
            Slot::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Slot::Gauge(g) => g.value.store(0, Ordering::Relaxed),
            Slot::Span(s) => {
                s.count.store(0, Ordering::Relaxed);
                s.total_ns.store(0, Ordering::Relaxed);
                s.max_ns.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Frozen values of one span timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed intervals.
    pub count: u64,
    /// Sum of interval lengths.
    pub total_ns: u64,
    /// Longest interval.
    pub max_ns: u64,
}

/// A point-in-time copy of the registry, sorted by series name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter series.
    pub counters: Vec<(String, u64)>,
    /// Gauge series.
    pub gauges: Vec<(String, u64)>,
    /// Span-timer series.
    pub spans: Vec<(String, SpanSnapshot)>,
}

/// Copies every registered series out of the registry.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for (name, slot) in lock_registry().iter() {
        match slot {
            Slot::Counter(c) => snap.counters.push((name.clone(), c.get())),
            Slot::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
            Slot::Span(s) => snap.spans.push((
                name.clone(),
                SpanSnapshot {
                    count: s.count.load(Ordering::Relaxed),
                    total_ns: s.total_ns.load(Ordering::Relaxed),
                    max_ns: s.max_ns.load(Ordering::Relaxed),
                },
            )),
        }
    }
    snap
}

/// `("family", "{labels}")` — the name split at the label block.
fn split_family(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => name.split_at(i),
        None => (name, ""),
    }
}

impl Snapshot {
    /// Prometheus text exposition (version 0.0.4): one `# TYPE` line per
    /// family, then `name value` samples. Span timers expand into three
    /// series per name: `<family>_count`, `<family>_ns_total` (both
    /// counters) and `<family>_ns_max` (a gauge), each keeping the
    /// original label block.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut sample = |out: &mut String, name: &str, kind: &str, value: u64| {
            let (family, _) = split_family(name);
            if typed.insert(family.to_string()) {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
            }
            out.push_str(&format!("{name} {value}\n"));
        };
        for (name, v) in &self.counters {
            sample(&mut out, name, "counter", *v);
        }
        for (name, v) in &self.gauges {
            sample(&mut out, name, "gauge", *v);
        }
        for (name, s) in &self.spans {
            let (family, labels) = split_family(name);
            sample(
                &mut out,
                &format!("{family}_count{labels}"),
                "counter",
                s.count,
            );
            sample(
                &mut out,
                &format!("{family}_ns_total{labels}"),
                "counter",
                s.total_ns,
            );
            sample(
                &mut out,
                &format!("{family}_ns_max{labels}"),
                "gauge",
                s.max_ns,
            );
        }
        out
    }

    /// A human-readable table for `wp trace`.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<64} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<64} {v}\n"));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans: (count | mean µs | max µs)\n");
            for (name, s) in &self.spans {
                let mean_us = if s.count == 0 {
                    0.0
                } else {
                    s.total_ns as f64 / s.count as f64 / 1e3
                };
                out.push_str(&format!(
                    "  {name:<64} {:>8} | {:>12.1} | {:>12.1}\n",
                    s.count,
                    mean_us,
                    s.max_ns as f64 / 1e3,
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no series registered)\n");
        }
        out
    }

    /// JSON document mirroring the registry, for embedding in reports.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::from(*v as f64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Json::from(*v as f64)))
                .collect(),
        );
        let spans = Json::Obj(
            self.spans
                .iter()
                .map(|(n, s)| {
                    (
                        n.clone(),
                        wp_json::obj! {
                            "count" => s.count as f64,
                            "total_ns" => s.total_ns as f64,
                            "max_ns" => s.max_ns as f64,
                        },
                    )
                })
                .collect(),
        );
        wp_json::obj! {
            "counters" => counters,
            "gauges" => gauges,
            "spans" => spans,
        }
    }
}

/// Parses Prometheus text exposition back into `(series, value)` pairs.
/// Comment (`#`) and blank lines are skipped; any other line must be
/// `name value` with a parseable number. The inverse of
/// [`Snapshot::render_prometheus`], used by scrape validation.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no sample value in '{line}'", lineno + 1))?;
        let v: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad sample value '{value}'", lineno + 1))?;
        if name.is_empty() {
            return Err(format!("line {}: empty series name", lineno + 1));
        }
        out.push((name.trim().to_string(), v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that flip the enable gate
    /// must not interleave.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = guard();
        set_enabled(false);
        static C: LazyCounter = LazyCounter::new("test_disabled_total");
        static S: LazySpan = LazySpan::new("test_disabled_span");
        C.add(5);
        drop(S.start());
        let snap = snapshot();
        assert!(!snap
            .counters
            .iter()
            .any(|(n, _)| n == "test_disabled_total"));
        assert!(!snap.spans.iter().any(|(n, _)| n == "test_disabled_span"));
    }

    #[test]
    fn enabled_counters_spans_and_gauges_accumulate() {
        let _g = guard();
        set_enabled(true);
        static C: LazyCounter = LazyCounter::new("test_enabled_total");
        static G: LazyGauge = LazyGauge::new("test_enabled_gauge");
        static S: LazySpan = LazySpan::new("test_enabled_span");
        reset();
        C.add(2);
        C.add(3);
        G.set(7);
        drop(S.start());
        S.observe_ns(1_000);
        let snap = snapshot();
        let c = snap
            .counters
            .iter()
            .find(|(n, _)| n == "test_enabled_total")
            .expect("counter registered");
        assert_eq!(c.1, 5);
        let g = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "test_enabled_gauge")
            .expect("gauge registered");
        assert_eq!(g.1, 7);
        let s = snap
            .spans
            .iter()
            .find(|(n, _)| n == "test_enabled_span")
            .expect("span registered");
        assert_eq!(s.1.count, 2);
        assert!(s.1.total_ns >= 1_000);
        set_enabled(false);
    }

    #[test]
    fn labeled_series_register_per_value() {
        let _g = guard();
        set_enabled(true);
        reset();
        add_labeled("test_labeled_total", "kind", "a", 1);
        add_labeled("test_labeled_total", "kind", "a", 1);
        add_labeled("test_labeled_total", "kind", "b", 1);
        drop(time_labeled("test_labeled_span", "kind", "a"));
        let snap = snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("test_labeled_total{kind=\"a\"}"), Some(2));
        assert_eq!(get("test_labeled_total{kind=\"b\"}"), Some(1));
        assert!(snap
            .spans
            .iter()
            .any(|(n, _)| n == "test_labeled_span{kind=\"a\"}"));
        set_enabled(false);
    }

    #[test]
    fn prometheus_text_round_trips_through_the_parser() {
        let _g = guard();
        set_enabled(true);
        reset();
        add_labeled("test_rt_total", "stage", "pivot", 4);
        register_gauge("test_rt_gauge").set(9);
        register_span("test_rt_span{op=\"x\"}").observe_ns(250);
        let snap = snapshot();
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE test_rt_total counter"), "{text}");
        assert!(
            text.contains("test_rt_total{stage=\"pivot\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("test_rt_span_count{op=\"x\"} 1\n"), "{text}");
        assert!(
            text.contains("test_rt_span_ns_total{op=\"x\"} 250\n"),
            "{text}"
        );
        let parsed = parse_prometheus(&text).expect("own exposition must parse");
        assert!(parsed
            .iter()
            .any(|(n, v)| n == "test_rt_total{stage=\"pivot\"}" && *v == 4.0));
        assert!(parsed
            .iter()
            .any(|(n, v)| n == "test_rt_gauge" && *v == 9.0));
        // a TYPE line is emitted at most once per family
        assert_eq!(text.matches("# TYPE test_rt_total ").count(), 1);
        set_enabled(false);
    }

    #[test]
    fn parse_rejects_malformed_samples() {
        assert!(parse_prometheus("name_only\n").is_err());
        assert!(parse_prometheus("series nope\n").is_err());
        assert!(parse_prometheus("# comment\n\n").unwrap().is_empty());
        let ok = parse_prometheus("a 1\nb{l=\"v\"} 2.5\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[1], ("b{l=\"v\"}".to_string(), 2.5));
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _g = guard();
        set_enabled(true);
        register_counter("test_reset_total").add(3);
        reset();
        let snap = snapshot();
        let c = snap
            .counters
            .iter()
            .find(|(n, _)| n == "test_reset_total")
            .expect("still registered");
        assert_eq!(c.1, 0);
        set_enabled(false);
    }

    #[test]
    fn snapshot_is_sorted_and_json_mirrors_it() {
        let _g = guard();
        set_enabled(true);
        reset();
        register_counter("test_sort_b_total").add(1);
        register_counter("test_sort_a_total").add(1);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let doc = snap.to_json();
        assert!(doc.get("counters").is_some());
        assert!(doc.get("spans").is_some());
        set_enabled(false);
    }
}

//! Minimal `--flag value` argument parsing (no external dependency).

/// Parsed flags: `--name value` pairs plus standalone `--switch`es.
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parses everything after the subcommand. Flags must start with
    /// `--`; a flag followed by another flag (or nothing) is a switch.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let flag = &argv[i];
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got '{flag}'"))?;
            if name.is_empty() {
                return Err("empty flag name".into());
            }
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    args.pairs.push((name.to_string(), v.clone()));
                    i += 2;
                }
                _ => {
                    args.switches.push(name.to_string());
                    i += 1;
                }
            }
        }
        Ok(args)
    }

    /// The value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `--name`, or an error naming the missing flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    /// True when `--name` appears as a bare switch.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parses `--name` as the given type, with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
            None => Ok(default),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = Args::parse(&sv(&["--workload", "TPC-C", "--json", "--runs", "3"])).unwrap();
        assert_eq!(a.get("workload"), Some("TPC-C"));
        assert!(a.switch("json"));
        assert_eq!(a.parsed_or::<usize>("runs", 1).unwrap(), 3);
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = Args::parse(&sv(&["--x", "1"])).unwrap();
        assert!(a.required("workload").is_err());
    }

    #[test]
    fn default_used_when_absent() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.parsed_or::<u64>("seed", 7).unwrap(), 7);
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(&sv(&["--runs", "many"])).unwrap();
        assert!(a.parsed_or::<usize>("runs", 1).is_err());
    }

    #[test]
    fn non_flag_token_rejected() {
        assert!(Args::parse(&sv(&["workload"])).is_err());
    }

    #[test]
    fn trailing_switch() {
        let a = Args::parse(&sv(&["--verbose"])).unwrap();
        assert!(a.switch("verbose"));
        assert!(!a.switch("json"));
    }
}

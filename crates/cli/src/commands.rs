//! Subcommand implementations.

use wp_core::pipeline::{Pipeline, PipelineConfig};
use wp_featsel::wrapper::{Estimator, WrapperConfig};
use wp_featsel::Strategy;
use wp_json::{obj, Json};
use wp_similarity::Representation;
use wp_telemetry::FeatureId;
use wp_workloads::dataset::LabeledDataset;
use wp_workloads::engine::{paper_terminals, Simulator};
use wp_workloads::spec::WorkloadSpec;
use wp_workloads::{benchmarks, Sku};

use crate::args::Args;

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage:
  wp workloads
  wp simulate --workload <name> --sku <sku> [--terminals N] [--run N] [--json] [--seed S]
  wp select   [--strategy <name>] [--top K] [--sku <sku>] [--seed S]
  wp similar  --target <name> [--sku <sku>] [--top K] [--seed S]
              [--representation mts|hist|phase|embed]
  wp predict  --target <name> --from <sku> --to <sku> [--terminals N] [--seed S]
  wp recommend --slo REQS (--target <name> | --scenario <zoo> [--step N])
              [--samples N] [--seed S] [--json]
  wp export   --workload <name> --sku <sku> [--terminals N] [--runs N] [--seed S]
  wp serve    [--addr HOST:PORT] [--threads N] [--backend workers|reactor]
              [--corpus FILE] [--samples N] [--seed S] [--faults SPEC] [--obs]
  wp chaos    [--plan SPEC] [--requests N] [--connections N] [--seed S] [--samples N]
              [--timeout SECONDS] [--retries N] [--out FILE] [--verify-determinism]
              [--backend workers|reactor] [--obs]
  wp stream   [--rate HZ] [--tenants N] [--batches N] [--runs-per-batch N]
              [--shift-after N] [--zoo] [--samples N] [--seed S] [--timeout SECONDS]
              [--faults SPEC] [--out FILE] [--verify-determinism]
              [--backend workers|reactor] [--obs]
  wp trace    [--samples N] [--seed S] [--json]
  wp index-bench [--size N] [--queries N] [--k K] [--samples N] [--json] [--seed S]

fault SPEC: seed=7,reset=0.05,latency=0.2,latency_ms=1..5,error=0.15,
            error:/similar=0.3,slow=0.1,truncate=0.05 (also read from WP_FAULTS)

skus: cpu2 | cpu4 | cpu8 | cpu16 | s1 | s2 | vcore80 | <cpus>x<gib> (e.g. 12x96)
zoo scenarios: {tpcc,twitter,ycsb}-{recurring,shifting} (time-evolving mixes)
strategies: variance | pearson | fanova | migain | lasso | elasticnet |
            randomforest | rfe-linear | rfe-dectree | rfe-logreg | baseline";

const DEFAULT_SEED: u64 = 0xEDB7_2025;

/// Parses the `--backend` flag shared by `serve`, `chaos`, and
/// `stream`: `workers` (the default blocking pool) or `reactor` (the
/// event-driven tier).
fn backend_from(args: &Args) -> Result<wp_server::Backend, String> {
    match args.get("backend") {
        None => Ok(wp_server::Backend::default()),
        Some(name) => wp_server::Backend::parse(name)
            .ok_or_else(|| format!("unknown backend '{name}' (expected workers|reactor)")),
    }
}

/// True when the `WP_OBS` environment variable asks for observability
/// (set to anything but `""` or `"0"`), mirroring how `WP_FAULTS` arms
/// fault injection without touching the command line.
fn obs_from_env() -> bool {
    std::env::var("WP_OBS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Dispatches a full command line (without the program name).
pub fn run(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv.split_first().ok_or("no subcommand given")?;
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "workloads" => cmd_workloads(),
        "simulate" => cmd_simulate(&args),
        "select" => cmd_select(&args),
        "similar" => cmd_similar(&args),
        "predict" => cmd_predict(&args),
        "recommend" => cmd_recommend(&args),
        "export" => cmd_export(&args),
        "serve" => cmd_serve(&args),
        "chaos" => cmd_chaos(&args),
        "stream" => cmd_stream(&args),
        "trace" => cmd_trace(&args),
        "index-bench" => cmd_index_bench(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Parses a SKU name: the named catalog entries or `<cpus>x<gib>`.
pub fn parse_sku(s: &str) -> Result<Sku, String> {
    match s {
        "cpu2" | "cpu4" | "cpu8" | "cpu16" => {
            let cpus: usize = s[3..].parse().unwrap();
            Ok(Sku::new(s, cpus, 64.0))
        }
        "s1" | "S1" => Ok(Sku::s1()),
        "s2" | "S2" => Ok(Sku::s2()),
        "vcore80" => Ok(Sku::vcore80()),
        custom => {
            let (c, m) = custom
                .split_once('x')
                .ok_or_else(|| format!("unknown SKU '{custom}'"))?;
            let cpus: usize = c
                .parse()
                .map_err(|_| format!("bad CPU count in '{custom}'"))?;
            let mem: f64 = m.parse().map_err(|_| format!("bad memory in '{custom}'"))?;
            Ok(Sku::new(format!("cpu{cpus}m{mem}"), cpus, mem))
        }
    }
}

/// Parses a strategy name.
pub fn parse_strategy(s: &str) -> Result<Strategy, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "variance" => Strategy::Variance,
        "pearson" => Strategy::Pearson,
        "fanova" => Strategy::FAnova,
        "migain" => Strategy::MiGain,
        "lasso" => Strategy::Lasso,
        "elasticnet" | "elastic-net" => Strategy::ElasticNet,
        "randomforest" | "random-forest" => Strategy::RandomForest,
        "rfe-linear" => Strategy::Rfe(Estimator::Linear),
        "rfe-dectree" => Strategy::Rfe(Estimator::DecisionTree),
        "rfe-logreg" => Strategy::Rfe(Estimator::LogisticRegression),
        "baseline" => Strategy::Baseline,
        other => return Err(format!("unknown strategy '{other}'")),
    })
}

fn workload_by_name(name: &str) -> Result<WorkloadSpec, String> {
    benchmarks::by_name(name).ok_or_else(|| {
        let names: Vec<String> = benchmarks::all().iter().map(|w| w.name.clone()).collect();
        format!(
            "unknown workload '{name}' (available: {})",
            names.join(", ")
        )
    })
}

fn sim_with_seed(args: &Args) -> Result<Simulator, String> {
    Ok(Simulator::new(args.parsed_or("seed", DEFAULT_SEED)?))
}

fn cmd_workloads() -> Result<(), String> {
    print!("{}", wp_workloads::catalog::render_table1());
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let spec = workload_by_name(args.required("workload")?)?;
    let sku = parse_sku(args.required("sku")?)?;
    let default_terminals = *paper_terminals(&spec).first().unwrap();
    let terminals: usize = args.parsed_or("terminals", default_terminals)?;
    let run_index: usize = args.parsed_or("run", 0)?;
    let sim = sim_with_seed(args)?;
    let run = sim.simulate(&spec, &sku, terminals, run_index, run_index % 3);

    if args.switch("json") {
        let resource_means: Vec<Json> = wp_telemetry::ResourceFeature::ALL
            .iter()
            .map(|f| {
                obj! {
                    "feature" => f.name(),
                    "mean" => wp_linalg::stats::mean(&run.resources.feature(*f)),
                }
            })
            .collect();
        let doc = obj! {
            "workload" => run.key.workload.clone(),
            "sku" => obj! {
                "name" => sku.name.clone(),
                "cpus" => sku.cpus,
                "memory_gb" => sku.memory_gb,
            },
            "terminals" => terminals,
            "run_index" => run_index,
            "throughput_tps" => run.throughput,
            "latency_ms" => run.latency_ms,
            "samples" => run.resources.len(),
            "queries" => run.plans.len(),
            "resource_means" => resource_means,
        };
        println!("{}", doc.pretty());
        return Ok(());
    }

    println!(
        "{} on {} with {terminals} terminals (run {run_index})",
        run.key.workload, sku
    );
    println!("  throughput: {:>10.1} req/s", run.throughput);
    println!("  latency:    {:>10.2} ms", run.latency_ms);
    println!(
        "  telemetry:  {} resource samples x 7 features, {} query plans x 22 features",
        run.resources.len(),
        run.plans.len()
    );
    println!("  resource means:");
    for f in wp_telemetry::ResourceFeature::ALL {
        println!(
            "    {:<18} {:>12.3}",
            f.name(),
            wp_linalg::stats::mean(&run.resources.feature(f))
        );
    }
    Ok(())
}

fn cmd_select(args: &Args) -> Result<(), String> {
    let strategy = parse_strategy(args.get("strategy").unwrap_or("fanova"))?;
    let top: usize = args.parsed_or("top", 7)?;
    let sku = parse_sku(args.get("sku").unwrap_or("cpu16"))?;
    let sim = sim_with_seed(args)?;

    let specs = benchmarks::standardized();
    let mut sets = Vec::new();
    for spec in &specs {
        for &t in &paper_terminals(spec) {
            for r in 0..3 {
                sets.push(sim.observations(spec, &sku, t, r, r % 3, 10));
            }
        }
    }
    let ds = LabeledDataset::from_observation_sets(&sets);
    let ranking = strategy.rank(
        &ds.features,
        &ds.labels,
        &FeatureId::all(),
        &WrapperConfig::default(),
    );
    println!(
        "top-{top} features by {} over {} observations on {}:",
        strategy.label(),
        ds.len(),
        sku
    );
    for (i, f) in ranking.top_k(top).iter().enumerate() {
        println!("  {:>2}. {}", i + 1, f.name());
    }
    Ok(())
}

fn cmd_similar(args: &Args) -> Result<(), String> {
    let target = workload_by_name(args.required("target")?)?;
    let sku = parse_sku(args.get("sku").unwrap_or("cpu16"))?;
    let top: usize = args.parsed_or("top", 7)?;
    let representation = match args.get("representation") {
        None => Representation::HistFp,
        Some(s) => Representation::parse(s).ok_or_else(|| {
            format!("unknown representation '{s}' (use 'mts', 'hist', 'phase', or 'embed')")
        })?,
    };
    let mut pipeline = Pipeline::new(args.parsed_or("seed", DEFAULT_SEED)?);
    pipeline.config = PipelineConfig {
        selection: Strategy::FAnova,
        top_k: top,
        representation,
        ..PipelineConfig::default()
    };

    let references: Vec<WorkloadSpec> = benchmarks::standardized()
        .into_iter()
        .filter(|w| w.name != target.name)
        .collect();
    let terminals = *paper_terminals(&target).first().unwrap();

    let selected = wp_core::pipeline::select_features(
        &pipeline.sim,
        &references,
        &sku,
        |s| *paper_terminals(s).first().unwrap(),
        &pipeline.config,
    );
    let target_runs: Vec<_> = (0..3)
        .map(|r| pipeline.sim.simulate(&target, &sku, terminals, r, r % 3))
        .collect();
    let reference_runs: Vec<_> = references
        .iter()
        .map(|spec| {
            let t = *paper_terminals(spec).first().unwrap();
            let runs = (0..3)
                .map(|r| pipeline.sim.simulate(spec, &sku, t, r, r % 3))
                .collect();
            (spec.name.clone(), runs)
        })
        .collect();
    let verdicts = wp_core::pipeline::find_most_similar(
        &target_runs,
        &reference_runs,
        &selected,
        &pipeline.config,
    )?;
    println!(
        "similarity of {} on {} (top-{top} features, {} + L2,1):",
        target.name,
        sku,
        representation.label()
    );
    for v in &verdicts {
        println!("  vs {:<8} {:.3}", v.workload, v.distance);
    }
    println!("most similar: {}", verdicts[0].workload);
    Ok(())
}

/// Dumps simulated runs as interchange JSON (the `wp_telemetry::io`
/// schema), so external tooling can consume or imitate the format.
fn cmd_export(args: &Args) -> Result<(), String> {
    let spec = workload_by_name(args.required("workload")?)?;
    let sku = parse_sku(args.required("sku")?)?;
    let terminals: usize = args.parsed_or("terminals", *paper_terminals(&spec).first().unwrap())?;
    let runs: usize = args.parsed_or("runs", 3)?;
    let sim = sim_with_seed(args)?;
    let records: Vec<_> = (0..runs)
        .map(|r| sim.simulate(&spec, &sku, terminals, r, r % 3))
        .collect();
    println!("{}", wp_telemetry::io::runs_to_json(&records));
    Ok(())
}

/// Serves the prediction pipeline over HTTP. Loads a corpus file in the
/// `wp-server` interchange schema when `--corpus` is given, otherwise
/// simulates the default TPC-C/TPC-H/Twitter reference corpus. Prints
/// the bound address (so `--addr host:0` callers learn the OS-chosen
/// port) and serves until the process is killed.
///
/// `--faults SPEC` (or the `WP_FAULTS` environment variable) arms the
/// seeded fault-injection layer — see `wp chaos` for the spec format.
///
/// `--obs` (or a non-empty, non-`"0"` `WP_OBS` environment variable)
/// enables the `wp-obs` registry and routes `GET /metrics`. Without it
/// the server's responses are byte-identical to a build without the
/// observability layer.
///
/// `--backend reactor` swaps the blocking worker pool for the
/// `wp-reactor` event loop: the same endpoints, byte-identical
/// responses, but thousands of keep-alive connections multiplexed over
/// `--threads` event-loop threads instead of one thread per connection.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080").to_string();
    let threads: usize = args.parsed_or("threads", 4)?;
    let samples: usize = args.parsed_or("samples", 120)?;
    let seed: u64 = args.parsed_or("seed", DEFAULT_SEED)?;
    let obs = args.switch("obs") || obs_from_env();
    let backend = backend_from(args)?;
    let faults = match args.get("faults") {
        Some(spec) => wp_faults::FaultPlan::parse(spec)?,
        None => wp_faults::FaultPlan::from_env()?.unwrap_or_default(),
    };

    let (corpus, source) = match args.get("corpus") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read corpus file '{path}': {e}"))?;
            (
                wp_server::corpus::corpus_from_json(&text)?,
                format!("corpus file '{path}'"),
            )
        }
        None => (
            wp_server::corpus::simulated_corpus(seed, samples),
            format!("simulated default corpus (seed {seed}, {samples} samples/run)"),
        ),
    };
    let names: Vec<String> = corpus.references.iter().map(|r| r.name.clone()).collect();

    if faults.is_enabled() {
        println!("fault injection armed: {}", faults.render());
    }
    if obs {
        println!("observability on: GET /metrics serves the Prometheus text exposition");
    }
    let config = wp_server::ServerConfig {
        addr,
        workers: threads.max(1),
        backend,
        faults,
        obs,
        ..wp_server::ServerConfig::default()
    };
    let handle = wp_server::Server::start(corpus, config)?;
    println!(
        "serving {} reference workloads ({}) from {source}",
        names.len(),
        names.join(", ")
    );
    // Keep this line's exact shape: the CI smoke jobs poll for it and
    // strip the prefix to learn the OS-assigned port.
    println!("listening on http://{}", handle.addr());
    println!("backend: {}", handle.backend());
    // Piped stdout is block-buffered; the smoke script polls for the
    // address line, so push it out before blocking in wait().
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
    Ok(())
}

/// Runs the serving pipeline once, in process, with observability
/// enabled, and prints the recorded trace: every counter, gauge, and
/// span (count / total time / mean / max) the instrumented crates
/// emitted. The same simulated corpus and request mix that back
/// `wp serve` and `wp-loadgen` drive the handlers, plus one repeated
/// `POST` so the response cache registers a hit. `--json` prints the
/// snapshot as a JSON document instead of the table.
fn cmd_trace(args: &Args) -> Result<(), String> {
    let samples: usize = args.parsed_or("samples", 60)?;
    let seed: u64 = args.parsed_or("seed", DEFAULT_SEED)?;

    wp_obs::enable();
    wp_obs::reset();

    let corpus = wp_server::corpus::simulated_corpus(seed, samples);
    let defaults = wp_server::ServerConfig::default();
    let state = wp_server::service::ServiceState::new(
        corpus,
        defaults.pipeline,
        None,
        defaults.cache_capacity,
        defaults.stream,
    )?;

    let mut mix = wp_loadgen::default_mix(seed, samples);
    // Replay the first POST verbatim so the response cache shows a hit.
    if let Some(repeat) = mix.iter().find(|e| e.method == "POST").cloned() {
        mix.push(repeat);
    }
    // The default mix ranks exhaustively; add one indexed retrieval so
    // the pruning-cascade counters show up in the trace.
    if let Some(similar) = mix.iter().find(|e| e.path == "/similar").cloned() {
        mix.push(wp_loadgen::MixEntry {
            body: similar
                .body
                .replacen('{', "{\"mode\":\"indexed\",\"k\":3,", 1),
            ..similar
        });
    }
    let driven = mix.len();
    for entry in &mix {
        let req = wp_server::http::Request {
            method: entry.method.to_string(),
            path: entry.path.to_string(),
            body: entry.body.clone(),
            keep_alive: false,
        };
        let started = std::time::Instant::now();
        let (status, body) = wp_server::service::handle(&state, &req);
        // Same accounting the live server does around each request, so
        // the per-endpoint span series show up in the trace.
        state.stats.record(
            &req.path,
            started.elapsed().as_nanos() as u64,
            status >= 400,
        );
        if status >= 400 {
            return Err(format!(
                "trace request {} {} failed with {status}: {body}",
                entry.method, entry.path
            ));
        }
    }

    let snap = wp_obs::snapshot();
    if args.switch("json") {
        println!("{}", snap.to_json().pretty());
        return Ok(());
    }
    println!("trace of {driven} requests over the simulated corpus (seed {seed}, {samples} samples/run):");
    print!("{}", snap.render_summary());
    Ok(())
}

/// The fault plan `wp chaos` runs when neither `--plan` nor `WP_FAULTS`
/// says otherwise: a moderate storm of resets, injected latency, `503`s,
/// slow writes, and truncated responses. No stalls — the default run
/// should finish in seconds, not wait out client timeouts.
const DEFAULT_CHAOS_PLAN: &str =
    "seed=7,reset=0.05,latency=0.2,latency_ms=1..5,error=0.15,slow=0.1,truncate=0.08";

/// Repeats a standalone request until a 2xx lands (the server under
/// chaos may reset, stall, or 503 any individual attempt).
fn fetch_until_ok(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: std::time::Duration,
    attempts: u32,
) -> Result<String, String> {
    let mut last = String::new();
    for _ in 0..attempts {
        match wp_loadgen::fetch(addr, method, path, body, timeout) {
            Ok((status, b)) if (200..300).contains(&status) => return Ok(b),
            Ok((status, _)) => last = format!("status {status}"),
            Err(class) => last = class.label().to_string(),
        }
    }
    Err(format!(
        "no 2xx from {method} {path} in {attempts} attempts (last: {last})"
    ))
}

/// Runs a seeded chaos experiment: a fault-injected `wp-server` is
/// hammered by the resilient closed loop in fixed-request mode, and the
/// run's invariants are asserted:
///
/// 1. every logical request resolves to a classification — successes
///    plus errors add up to the configured request count, nothing hangs;
/// 2. the response cache stays correct under faults — two retried
///    `POST /similar` with the same body return byte-identical bodies;
/// 3. the server survives the storm — `/healthz` still answers 200.
///
/// The error taxonomy (never the timings) goes to `--out`
/// (`BENCH_chaos.json`). With the default single connection the
/// taxonomy is a pure function of `(plan, seed)`; `--verify-determinism`
/// replays the whole experiment against a fresh server and asserts the
/// two taxonomies are byte-identical.
///
/// `--obs` additionally enables the `wp-obs` registry (reset before
/// each run) and appends the span/counter snapshot of the last run as
/// an `"obs"` section of the output document. The section carries
/// timings, so it is deliberately excluded from the determinism
/// comparison — only the taxonomy is replay-compared.
///
/// `--backend reactor` runs the storm against the event-driven serving
/// tier instead of the worker pool; the invariants and the determinism
/// contract are identical.
fn cmd_chaos(args: &Args) -> Result<(), String> {
    use std::time::Duration;
    use wp_faults::FaultPlan;

    let spec = match args.get("plan") {
        Some(s) => s.to_string(),
        None => match FaultPlan::from_env()? {
            Some(plan) => plan.render(),
            None => DEFAULT_CHAOS_PLAN.to_string(),
        },
    };
    let plan = FaultPlan::parse(&spec)?;
    if !plan.is_enabled() {
        return Err(format!("fault plan '{spec}' injects nothing"));
    }
    let requests: u64 = args.parsed_or("requests", 60)?;
    let connections: usize = args.parsed_or("connections", 1)?;
    let samples: usize = args.parsed_or("samples", 40)?;
    let seed: u64 = args.parsed_or("seed", DEFAULT_SEED)?;
    let retries: u32 = args.parsed_or("retries", 3)?;
    let timeout = Duration::from_secs_f64(args.parsed_or("timeout", 2.0)?);
    let out = args.get("out").unwrap_or("BENCH_chaos.json").to_string();
    let obs = args.switch("obs") || obs_from_env();
    let backend = backend_from(args)?;
    if requests == 0 {
        return Err("--requests must be positive".to_string());
    }
    if obs {
        wp_obs::enable();
    }

    let mix = wp_loadgen::default_mix(seed, samples);
    let similar_body = mix
        .iter()
        .find(|e| e.path == "/similar")
        .map(|e| e.body.clone())
        .expect("default mix serves /similar");

    let run_once = || -> Result<(wp_loadgen::Report, String), String> {
        if obs {
            // Each run starts from a zeroed registry, so the appended
            // snapshot describes exactly one experiment (the last one).
            wp_obs::reset();
        }
        let corpus = wp_server::corpus::simulated_corpus(seed, samples);
        let server = wp_server::Server::start(
            corpus,
            wp_server::ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                backend,
                faults: plan.clone(),
                ..wp_server::ServerConfig::default()
            },
        )?;
        let addr = server.addr().to_string();
        let config = wp_loadgen::LoadConfig {
            addr: addr.clone(),
            connections,
            seed,
            timeout,
            retries,
            requests_per_connection: Some(requests),
            ..wp_loadgen::LoadConfig::default()
        };
        let report = wp_loadgen::run_load(&config, &mix)?;

        // Invariant 1: nothing hangs, everything is classified.
        let total = connections.max(1) as u64 * requests;
        if report.requests + report.errors != total {
            server.shutdown();
            return Err(format!(
                "classification leak: {} ok + {} failed != {total} issued",
                report.requests, report.errors
            ));
        }
        // Invariant 2: cache hits stay byte-identical under faults.
        let a = fetch_until_ok(&addr, "POST", "/similar", &similar_body, timeout, 25)?;
        let b = fetch_until_ok(&addr, "POST", "/similar", &similar_body, timeout, 25)?;
        if a != b {
            server.shutdown();
            return Err(
                "cache divergence: identical /similar bodies got different responses".into(),
            );
        }
        // Invariant 3: the server outlives the storm.
        let health = fetch_until_ok(&addr, "GET", "/healthz", "", timeout, 25)?;
        if !health.contains("\"status\":\"ok\"") {
            server.shutdown();
            return Err(format!("unhealthy after chaos: {health}"));
        }
        server.shutdown();

        let mut doc = Json::parse(&report.taxonomy_json())
            .map_err(|e| format!("taxonomy JSON does not parse: {e}"))?;
        if let Json::Obj(pairs) = &mut doc {
            pairs.insert(1, ("plan".to_string(), Json::from(plan.render().as_str())));
        }
        Ok((report, doc.pretty()))
    };

    println!("chaos plan: {}", plan.render());
    println!(
        "{} connection(s) x {requests} requests, timeout {:.1}s, {retries} retries",
        connections.max(1),
        timeout.as_secs_f64()
    );
    let (report, taxonomy) = run_once()?;

    if args.switch("verify-determinism") {
        let (_, replay) = run_once()?;
        if taxonomy != replay {
            return Err(format!(
                "non-deterministic taxonomy:\nrun 1: {taxonomy}\nrun 2: {replay}"
            ));
        }
        println!("determinism verified: replay produced a byte-identical taxonomy");
    }

    // The obs snapshot rides along *after* the determinism comparison:
    // its span timings are wall-clock and may not replay byte-identical.
    let output = if obs {
        let mut doc =
            Json::parse(&taxonomy).map_err(|e| format!("taxonomy JSON does not parse: {e}"))?;
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("obs".to_string(), wp_obs::snapshot().to_json()));
        }
        doc.pretty()
    } else {
        taxonomy.clone()
    };
    std::fs::write(&out, format!("{output}\n")).map_err(|e| format!("cannot write {out}: {e}"))?;
    let t = &report.taxonomy;
    println!(
        "{} ok, {} failed; attempts: {} reset, {} timeout, {} 5xx, {} 4xx, {} malformed",
        report.requests,
        report.errors,
        t.resets,
        t.timeouts,
        t.server_errors,
        t.client_errors,
        t.malformed
    );
    println!(
        "{} retries recovered {} request(s); taxonomy -> {out}",
        t.retries, t.recovered
    );
    Ok(())
}

/// Runs the streaming-ingest experiment: an in-process `wp-server` is
/// fed seeded multi-tenant telemetry by the `wp-loadgen` streamer at a
/// target batch rate, with every tenant's stream shape-shifting at
/// `--shift-after` (default two-thirds through) so the drift detector
/// has a scripted change to find. Sustained ingest throughput, latency
/// percentiles, and the drift/eviction counters go to `--out`
/// (`BENCH_stream.json`).
///
/// Invariants asserted on every run: the server stays healthy, and the
/// generation counter equals the server's own accepted-batch ledger (a
/// rejected or faulted batch must never half-apply). On a fault-free
/// run the ledger must also match the client's accepted count exactly,
/// and with a shape-shift scheduled at least one drift event must fire.
///
/// `--verify-determinism` replays the whole experiment against a fresh
/// server and asserts the two `/drift` event logs — ordinals,
/// distances, thresholds, phase counts — are byte-identical, then
/// stamps `"deterministic": true` into the report.
///
/// `--faults SPEC` arms the server's fault plan while streaming (the
/// chaos-under-streaming mode): rejected batches are then expected, and
/// the ledger/liveness invariants are what the run is about. Scope the
/// plan to the ingest path (e.g. `error:/ingest=0.3`) to keep the
/// post-run probes clean.
///
/// `--backend reactor` streams into the event-driven serving tier; the
/// ledger invariants and the `/drift` determinism contract hold
/// unchanged because ingest ordering is serialized in both backends.
///
/// `--zoo` streams the scenario zoo instead of frozen benchmark mixes:
/// each tenant replays one `wp_workloads::zoo` scenario (recurring or
/// shifting transaction mixes), advancing one evolution step per batch.
fn cmd_stream(args: &Args) -> Result<(), String> {
    use std::time::Duration;
    use wp_faults::FaultPlan;

    let rate: f64 = args.parsed_or("rate", 40.0)?;
    let tenants: usize = args.parsed_or("tenants", 2)?;
    let batches: u64 = args.parsed_or("batches", 12)?;
    let runs_per_batch: usize = args.parsed_or("runs-per-batch", 2)?;
    let samples: usize = args.parsed_or("samples", 30)?;
    let seed: u64 = args.parsed_or("seed", DEFAULT_SEED)?;
    let shift_after: u64 = args.parsed_or("shift-after", (batches * 2 / 3).max(1))?;
    let zoo = args.switch("zoo");
    let timeout = Duration::from_secs_f64(args.parsed_or("timeout", 10.0)?);
    let out = args.get("out").unwrap_or("BENCH_stream.json").to_string();
    let obs = args.switch("obs") || obs_from_env();
    let backend = backend_from(args)?;
    if batches == 0 || tenants == 0 {
        return Err("--batches and --tenants must be positive".to_string());
    }
    let plan = match args.get("faults") {
        Some(s) => Some(FaultPlan::parse(s)?),
        None => FaultPlan::from_env()?,
    };
    let faulted = plan.as_ref().is_some_and(FaultPlan::is_enabled);
    if obs {
        wp_obs::enable();
    }

    // A shift scheduled past the end never fires: the stationary run.
    let shift = (shift_after < batches).then_some(shift_after);
    let run_once = || -> Result<(wp_loadgen::StreamReport, String), String> {
        if obs {
            wp_obs::reset();
        }
        let corpus = wp_server::corpus::simulated_corpus(seed, samples);
        let server = wp_server::Server::start(
            corpus,
            wp_server::ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                backend,
                faults: plan.clone().unwrap_or_default(),
                obs,
                ..wp_server::ServerConfig::default()
            },
        )?;
        let addr = server.addr().to_string();
        let config = wp_loadgen::StreamerConfig {
            addr: addr.clone(),
            rate_hz: rate,
            tenants,
            batches,
            runs_per_batch,
            samples,
            seed,
            shift_after: shift,
            zoo,
            timeout,
        };
        let report = wp_loadgen::run_stream(&config)?;

        // Liveness: the server outlives the stream.
        let health = fetch_until_ok(&addr, "GET", "/healthz", "", timeout, 25)?;
        if !health.contains("\"status\":\"ok\"") {
            server.shutdown();
            return Err(format!("unhealthy after streaming: {health}"));
        }
        // Ledger consistency: the corpus generation counts exactly the
        // batches the server accepted — a faulted batch either fully
        // applied or left no trace.
        let stats_body = fetch_until_ok(&addr, "GET", "/stats", "", timeout, 25)?;
        let stats = Json::parse(&stats_body).map_err(|e| format!("/stats does not parse: {e}"))?;
        let stream_counter = |key: &str| -> f64 {
            stats
                .get("stream")
                .and_then(|s| s.get(key))
                .and_then(Json::as_f64)
                .unwrap_or(-1.0)
        };
        let generation = stream_counter("generation");
        if generation != stream_counter("ingested_batches") {
            server.shutdown();
            return Err(format!(
                "ledger divergence: generation {generation} != accepted batches {}",
                stream_counter("ingested_batches")
            ));
        }
        if !faulted {
            if report.errors > 0 {
                server.shutdown();
                return Err(format!(
                    "{} batch(es) failed on a fault-free run",
                    report.errors
                ));
            }
            if generation != report.batches_accepted as f64 {
                server.shutdown();
                return Err(format!(
                    "ledger divergence: server generation {generation}, \
                     client accepted {}",
                    report.batches_accepted
                ));
            }
            if shift.is_some() && report.drift_events == 0 {
                server.shutdown();
                return Err("shape-shift scheduled but no drift event fired".to_string());
            }
        }
        let drift_log = fetch_until_ok(&addr, "GET", "/drift", "", timeout, 25)?;
        server.shutdown();
        Ok((report, drift_log))
    };

    println!(
        "streaming {tenants} tenant(s) x {batches} batches ({runs_per_batch} runs each) \
         at {rate} Hz{}",
        match shift {
            Some(s) => format!(", shape-shift at batch {s}"),
            None => ", stationary".to_string(),
        }
    );
    if let Some(p) = plan.as_ref().filter(|p| p.is_enabled()) {
        println!("fault plan: {}", p.render());
    }
    let (mut report, drift_log) = run_once()?;

    if args.switch("verify-determinism") {
        let (_, replay) = run_once()?;
        if drift_log != replay {
            return Err(format!(
                "non-deterministic drift log:\nrun 1: {drift_log}\nrun 2: {replay}"
            ));
        }
        println!("determinism verified: replay produced a byte-identical drift log");
        report.deterministic = Some(true);
    }

    std::fs::write(&out, format!("{}\n", report.to_json()))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{}/{} batches accepted at {:.1} batches/s; p50 {:.3} ms, p95 {:.3} ms, \
         p99 {:.3} ms; {} drift event(s), {} evicted run(s), generation {} -> {out}",
        report.batches_accepted,
        report.batches_sent,
        report.ingest_rps,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.drift_events,
        report.evicted_runs,
        report.generation
    );
    Ok(())
}

/// Benchmarks the `wp-index` pruning cascade against brute-force top-k
/// at one corpus size: the pipeline's Hist-FP/L2,1 setting and the
/// elastic MTS/Dependent-DTW (band 8) setting. Both runs verify that the
/// indexed top-k is byte-identical to brute force before reporting.
fn cmd_index_bench(args: &Args) -> Result<(), String> {
    use wp_bench::indexbench::{fingerprints, run_scenario};
    use wp_index::IndexConfig;
    use wp_similarity::Measure;
    use wp_similarity::Norm;

    let size: usize = args.parsed_or("size", 128)?;
    let queries: usize = args.parsed_or("queries", 8)?;
    let k: usize = args.parsed_or("k", 5)?;
    let samples: usize = args.parsed_or("samples", 60)?;
    if size == 0 || queries == 0 || k == 0 {
        return Err("--size, --queries, and --k must be positive".to_string());
    }
    let mut sim = sim_with_seed(args)?;
    sim.config.samples = samples;

    let scenarios: [(&str, Measure, IndexConfig); 2] = [
        ("Hist-FP", Measure::Norm(Norm::L21), IndexConfig::default()),
        (
            "MTS",
            Measure::DtwDependent,
            IndexConfig {
                band: Some(8),
                ..IndexConfig::default()
            },
        ),
    ];
    let results: Vec<_> = scenarios
        .iter()
        .map(|(scenario, measure, config)| {
            let (corpus, qs) = fingerprints(&sim, size, queries, scenario);
            run_scenario(scenario, *measure, *config, &corpus, &qs, k)
        })
        .collect();

    if args.switch("json") {
        let doc = obj! {
            "experiment" => "index_cascade",
            "corpus_size" => size,
            "queries" => queries,
            "k" => k,
            "exact_topk_verified" => true,
            "results" => Json::Arr(results.iter().map(|r| r.to_json()).collect()),
        };
        println!("{}", doc.pretty());
        return Ok(());
    }

    println!("index cascade vs brute force ({size} fingerprints, {queries} queries, k={k}):");
    for r in &results {
        println!(
            "  {:<8} {:<16} brute {:>8.3} ms  indexed {:>8.3} ms  speedup {:>5.2}x  pruned {:>5.1}%",
            r.scenario,
            r.measure,
            r.brute_ms,
            r.indexed_ms,
            r.speedup(),
            r.stats.pruned_fraction() * 100.0
        );
    }
    println!("top-k verified byte-identical to brute force for both scenarios");
    Ok(())
}

/// Runs the what-if SKU advisor end to end, in process: simulates
/// observed 2-CPU telemetry for a benchmark workload (`--target`) or a
/// scenario-zoo step (`--scenario` + `--step`), posts it to the
/// `POST /recommend` handler over the simulated reference corpus, and
/// prints the SKU ladder — per-SKU predicted throughput with its
/// CV-residual confidence interval and modeling context — plus the
/// recommendation. The pick is then graded against simulator ground
/// truth: the cheapest ladder SKU whose *actual* mean throughput meets
/// the SLO.
fn cmd_recommend(args: &Args) -> Result<(), String> {
    let slo: f64 = args
        .required("slo")?
        .parse()
        .map_err(|_| "--slo: cannot parse".to_string())?;
    if !(slo.is_finite() && slo > 0.0) {
        return Err("--slo must be a positive throughput (req/s)".to_string());
    }
    let samples: usize = args.parsed_or("samples", 60)?;
    let seed: u64 = args.parsed_or("seed", DEFAULT_SEED)?;
    let step: usize = args.parsed_or("step", 0)?;

    let (spec, label) = match (args.get("target"), args.get("scenario")) {
        (Some(_), Some(_)) => return Err("give --target or --scenario, not both".to_string()),
        (Some(name), None) => (workload_by_name(name)?, name.to_string()),
        (None, Some(name)) => {
            let scenario = wp_workloads::zoo::by_name(seed, name).ok_or_else(|| {
                let names: Vec<String> = wp_workloads::zoo::paper_zoo(seed)
                    .iter()
                    .map(|s| s.name.clone())
                    .collect();
                format!(
                    "unknown scenario '{name}' (available: {})",
                    names.join(", ")
                )
            })?;
            (scenario.spec_at(step), format!("{name} @ step {step}"))
        }
        (None, None) => return Err("missing --target or --scenario".to_string()),
    };
    let terminals = *paper_terminals(&spec).first().unwrap();

    // Observed telemetry: three runs on the 2-CPU SKU.
    let mut sim = Simulator::new(seed);
    sim.config.samples = samples;
    let observed_sku = Sku::new("cpu2", 2, 64.0);
    let observed: Vec<_> = (0..3)
        .map(|r| sim.simulate(&spec, &observed_sku, terminals, r, r % 3))
        .collect();
    let body = format!(
        "{{\"slo\":{slo},\"runs\":{}}}",
        wp_telemetry::io::runs_to_json(&observed)
    );

    let corpus = wp_server::corpus::simulated_corpus(seed, samples);
    let defaults = wp_server::ServerConfig::default();
    let state = wp_server::service::ServiceState::new(
        corpus,
        defaults.pipeline,
        None,
        defaults.cache_capacity,
        defaults.stream,
    )?;
    let req = wp_server::http::Request {
        method: "POST".to_string(),
        path: "/recommend".to_string(),
        body,
        keep_alive: false,
    };
    let (status, response) = wp_server::service::handle(&state, &req);
    if status != 200 {
        return Err(format!("/recommend failed with {status}: {response}"));
    }
    let doc = Json::parse(&response).map_err(|e| format!("response does not parse: {e}"))?;

    // Ground truth: the simulator's actual mean throughput on each
    // ladder SKU, and the cheapest SKU that really meets the SLO.
    let actuals: Vec<(String, f64)> = Sku::paper_grid()
        .iter()
        .map(|sku| {
            let mean = wp_linalg::stats::mean(
                &(0..3)
                    .map(|r| sim.simulate(&spec, sku, terminals, r, r % 3).throughput)
                    .collect::<Vec<_>>(),
            );
            (sku.name.clone(), mean)
        })
        .collect();
    let truth = actuals
        .iter()
        .find(|(_, t)| *t >= slo)
        .map(|(n, _)| n.clone());

    if args.switch("json") {
        let mut full = doc.clone();
        if let Json::Obj(pairs) = &mut full {
            pairs.push((
                "ground_truth".to_string(),
                obj! {
                    "cheapest_meeting_sku" => truth
                        .as_deref()
                        .map_or(Json::Null, Json::from),
                    "actual_throughput" => Json::Arr(
                        actuals
                            .iter()
                            .map(|(n, t)| obj! { "sku" => n.clone(), "throughput" => *t })
                            .collect(),
                    ),
                },
            ));
        }
        println!("{}", full.pretty());
        return Ok(());
    }

    let str_of = |d: &Json, key: &str| d.get(key).and_then(Json::as_str).map(str::to_string);
    let num_of = |d: &Json, key: &str| d.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
    println!(
        "what-if recommendation for {label} (observed on {}, {} terminals, SLO {slo} req/s):",
        observed_sku, terminals
    );
    println!(
        "  most similar reference: {} ({} context)",
        str_of(&doc, "most_similar").unwrap_or_default(),
        str_of(&doc, "context").unwrap_or_default()
    );
    println!(
        "  observed: {:>10.1} req/s @ {:.2} ms",
        num_of(&doc, "observed_throughput"),
        num_of(&doc, "observed_latency_ms")
    );
    if let Some(Json::Arr(candidates)) = doc.get("candidates") {
        for c in candidates {
            println!(
                "  {:<6} {:>10.1} req/s  [{:>9.1}, {:>9.1}]  {:>7.2} ms  {:<8} {}",
                str_of(c, "sku").unwrap_or_default(),
                num_of(c, "predicted_throughput"),
                num_of(c, "ci_lower"),
                num_of(c, "ci_upper"),
                num_of(c, "predicted_latency_ms"),
                str_of(c, "context").unwrap_or_default(),
                if c.get("meets_slo") == Some(&Json::Bool(true)) {
                    "meets SLO"
                } else {
                    "below SLO"
                }
            );
        }
    }
    let picked = str_of(&doc, "recommended");
    println!(
        "  recommended: {}",
        picked
            .as_deref()
            .unwrap_or("none (SLO unreachable on the ladder)")
    );
    println!(
        "  ground truth: {} (simulator actuals: {})",
        truth.as_deref().unwrap_or("none"),
        actuals
            .iter()
            .map(|(n, t)| format!("{n} {t:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if picked == truth {
        println!("  verdict: recommendation matches ground truth");
    } else {
        println!("  verdict: recommendation differs from ground truth");
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let target = workload_by_name(args.required("target")?)?;
    let from = parse_sku(args.required("from")?)?;
    let to = parse_sku(args.required("to")?)?;
    let terminals: usize =
        args.parsed_or("terminals", *paper_terminals(&target).first().unwrap())?;
    let mut pipeline = Pipeline::new(args.parsed_or("seed", DEFAULT_SEED)?);
    pipeline.config.selection = Strategy::FAnova;

    let references: Vec<WorkloadSpec> = benchmarks::standardized()
        .into_iter()
        .filter(|w| w.name != target.name)
        .collect();
    let outcome = pipeline.run(&references, &target, &from, &to, terminals);

    println!(
        "end-to-end prediction: {} from {} to {}",
        target.name, from, to
    );
    println!("  most similar reference: {}", outcome.most_similar);
    println!(
        "  observed  @{}: {:>10.1} req/s",
        from.name, outcome.observed_throughput
    );
    println!(
        "  predicted @{}: {:>10.1} req/s",
        to.name, outcome.predicted_throughput
    );
    println!(
        "  actual    @{}: {:>10.1} req/s (simulator ground truth)",
        to.name, outcome.actual_throughput
    );
    println!("  error: {:.1} %", outcome.mape * 100.0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sku_parsing() {
        assert_eq!(parse_sku("cpu8").unwrap().cpus, 8);
        assert_eq!(parse_sku("s1").unwrap().memory_gb, 32.0);
        let custom = parse_sku("12x96").unwrap();
        assert_eq!(custom.cpus, 12);
        assert_eq!(custom.memory_gb, 96.0);
        assert!(parse_sku("banana").is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(parse_strategy("fanova").unwrap().label(), "fANOVA");
        assert_eq!(parse_strategy("rfe-logreg").unwrap().label(), "RFE LogReg");
        assert!(parse_strategy("sfs-warp").is_err());
    }

    #[test]
    fn unknown_subcommand_is_error() {
        let argv: Vec<String> = vec!["frobnicate".into()];
        assert!(run(&argv).is_err());
    }

    #[test]
    fn unknown_workload_is_error() {
        assert!(workload_by_name("NoSuchBench").is_err());
        assert!(workload_by_name("TPC-C").is_ok());
    }

    #[test]
    fn workloads_subcommand_runs() {
        let argv: Vec<String> = vec!["workloads".into()];
        assert!(run(&argv).is_ok());
    }

    #[test]
    fn trace_subcommand_runs_and_reports_spans() {
        let argv: Vec<String> = ["trace", "--samples", "20", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&argv).is_ok());
        // The command left the registry populated: the endpoint series
        // it drove must be visible in a snapshot.
        let text = wp_obs::snapshot().render_prometheus();
        let parsed = wp_obs::parse_prometheus(&text).expect("exposition must parse");
        assert!(parsed
            .iter()
            .any(|(name, v)| name.starts_with("wp_server_requests_total{") && *v > 0.0));
        assert!(parsed
            .iter()
            .any(|(name, v)| name.starts_with("wp_server_request_count{") && *v > 0.0));
    }

    #[test]
    fn recommend_subcommand_runs_for_targets_and_scenarios() {
        let ok: Vec<String> = [
            "recommend",
            "--slo",
            "10",
            "--target",
            "YCSB",
            "--samples",
            "20",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run(&ok), Ok(()));

        let zoo: Vec<String> = [
            "recommend",
            "--slo",
            "10",
            "--scenario",
            "ycsb-shifting",
            "--step",
            "4",
            "--samples",
            "20",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run(&zoo), Ok(()));

        // Errors: missing SLO, bad SLO, unknown scenario, both sources.
        let cases: [&[&str]; 4] = [
            &["recommend", "--target", "YCSB"],
            &["recommend", "--slo", "-4", "--target", "YCSB"],
            &["recommend", "--slo", "10", "--scenario", "nope"],
            &[
                "recommend",
                "--slo",
                "10",
                "--target",
                "YCSB",
                "--scenario",
                "ycsb-shifting",
            ],
        ];
        for argv in cases {
            let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
            assert!(run(&argv).is_err(), "{argv:?} should fail");
        }
    }

    #[test]
    fn index_bench_subcommand_runs_and_validates() {
        let argv: Vec<String> = [
            "index-bench",
            "--size",
            "8",
            "--queries",
            "2",
            "--samples",
            "20",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run(&argv).is_ok());
        let bad: Vec<String> = ["index-bench", "--k", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&bad).is_err());
    }
}
